//! Hierarchical (cluster-aware) collectives for SMP clusters.
//!
//! The paper's Section 2.2 names clusters of SMPs (the SIMPLE methodology)
//! as a target of the framework — `map (map f)` instead of `map f`. On the
//! cost side, such machines have two message regimes: cheap intra-node,
//! expensive inter-node (see [`collopt_machine::clock::ClusterParams`]).
//! The classic two-level algorithms route as little as possible over the
//! network:
//!
//! * [`bcast_two_level`] — binomial broadcast among the *node leaders*
//!   (`⌈log₂ N⌉` inter-node rounds), then binomial broadcasts inside each
//!   node, all concurrent;
//! * [`allreduce_two_level`] — reduce to each leader locally, allreduce
//!   among leaders, broadcast locally.
//!
//! **A finding worth stating:** on this contention-free model with the
//! *block* layout (consecutive ranks per node), the flat binomial tree is
//! already locality-optimal — its low-stride edges stay on-node and its
//! critical path crosses the network exactly `⌈log₂ N⌉` times, so the
//! two-level versions tie rather than win (the tests pin this down). The
//! two-level algorithms genuinely win under *cyclic* rank placement with
//! a non-power-of-two node count, where **every** power-of-two stride of
//! the flat tree crosses nodes. Their further real-world advantage (NIC
//! contention: one network port per node) is deliberately outside this
//! model, which trades it for deterministic makespans.

use collopt_machine::Ctx;

use crate::comm::Comm;
use crate::op::Combine;

/// Group structure derived from a rank→node map: this rank's node
/// members (ascending) and the per-node leaders (ascending; the leader of
/// a node is its smallest rank, so rank 0 is always a leader).
fn groups(p: usize, my_rank: usize, node_of: &dyn Fn(usize) -> usize) -> (Vec<usize>, Vec<usize>) {
    let my_node = node_of(my_rank);
    let mut members = Vec::new();
    let mut leaders: Vec<usize> = Vec::new();
    let mut seen_nodes: Vec<(usize, usize)> = Vec::new(); // (node, min rank)
    for r in 0..p {
        let n = node_of(r);
        if n == my_node {
            members.push(r);
        }
        match seen_nodes.iter_mut().find(|(node, _)| *node == n) {
            Some(_) => {}
            None => seen_nodes.push((n, r)),
        }
    }
    leaders.extend(seen_nodes.iter().map(|&(_, min)| min));
    leaders.sort_unstable();
    (members, leaders)
}

/// Two-level broadcast from global rank 0 with an arbitrary rank→node map.
pub fn bcast_two_level<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Option<T>,
    words: u64,
    node_of: &dyn Fn(usize) -> usize,
) -> T {
    let p = ctx.size();
    let rank = ctx.rank();
    let (members, leaders) = groups(p, rank, node_of);
    let leader = members[0];

    // Phase 1: broadcast among leaders (global rank 0 is leaders[0]).
    let mut held: Option<T> = value;
    if rank == leader && leaders.len() > 1 {
        let mut comm = Comm::new(ctx, leaders);
        let v = comm.bcast(0, held.take(), words);
        held = Some(v);
    }

    // Phase 2: broadcast inside each node.
    if members.len() == 1 {
        return held.expect("single-member node holds the value after phase 1");
    }
    let mut comm = Comm::new(ctx, members);
    let root_value = if rank == leader { held.take() } else { None };
    comm.bcast(0, root_value, words)
}

/// Two-level allreduce with an arbitrary rank→node map. Combines in rank
/// order within nodes and leader order across nodes; with the block
/// layout this is global rank order, so any associative operator is safe
/// there (cyclic layouts permute operands — use a commutative operator).
pub fn allreduce_two_level<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
    node_of: &dyn Fn(usize) -> usize,
) -> T {
    let p = ctx.size();
    let rank = ctx.rank();
    let (members, leaders) = groups(p, rank, node_of);
    let leader = members[0];
    let single_member = members.len() == 1;

    // Phase 1: reduce within the node (group rank 0 = leader).
    let mut partial: Option<T> = if single_member {
        Some(value)
    } else {
        let mut comm = Comm::new(ctx, members.clone());
        comm.reduce(value, words, op)
    };

    // Phase 2: allreduce among leaders.
    if rank == leader && leaders.len() > 1 {
        let mut comm = Comm::new(ctx, leaders);
        let v = comm.allreduce(partial.take().expect("leader holds the partial"), words, op);
        partial = Some(v);
    }

    // Phase 3: broadcast inside the node.
    if single_member {
        partial.expect("value present")
    } else {
        let mut comm = Comm::new(ctx, members);
        let root_value = if rank == leader { partial.take() } else { None };
        comm.bcast(0, root_value, words)
    }
}

/// [`bcast_two_level`] with the block layout (`node = rank / node_size`).
pub fn bcast_hierarchical<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Option<T>,
    words: u64,
    node_size: usize,
) -> T {
    assert!(node_size >= 1);
    bcast_two_level(ctx, value, words, &move |r| r / node_size)
}

/// [`allreduce_two_level`] with the block layout.
pub fn allreduce_hierarchical<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
    node_size: usize,
) -> T {
    assert!(node_size >= 1);
    allreduce_two_level(ctx, value, words, op, &move |r| r / node_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcast::bcast_binomial;
    use crate::reduce::allreduce;
    use collopt_machine::{ClockParams, Machine};

    #[test]
    fn two_level_bcast_is_correct_for_any_shape() {
        for p in 1..=17usize {
            for node_size in [1usize, 2, 3, 4, 5, 16] {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let value = (ctx.rank() == 0).then(|| vec![7u64, 8, 9]);
                    bcast_hierarchical(ctx, value, 3, node_size)
                });
                for (rank, r) in run.results.iter().enumerate() {
                    assert_eq!(r, &vec![7, 8, 9], "p={p} node_size={node_size} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn two_level_bcast_is_correct_for_cyclic_maps() {
        for p in 1..=15usize {
            for nodes in [1usize, 2, 3, 5] {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let value = (ctx.rank() == 0).then_some(41i64);
                    bcast_two_level(ctx, value, 1, &move |r| r % nodes.min(p))
                });
                assert!(run.results.iter().all(|&v| v == 41), "p={p} nodes={nodes}");
            }
        }
    }

    #[test]
    fn two_level_allreduce_is_correct_for_any_shape() {
        for p in 1..=17usize {
            for node_size in [1usize, 3, 4, 8] {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let cat = |a: &String, b: &String| format!("{a}{b}");
                    allreduce_hierarchical(
                        ctx,
                        ctx.rank().to_string(),
                        1,
                        &Combine::new(&cat),
                        node_size,
                    )
                });
                // Block layout preserves global rank order.
                let expected: String = (0..p).map(|i| i.to_string()).collect();
                for (rank, r) in run.results.iter().enumerate() {
                    assert_eq!(r, &expected, "p={p} node_size={node_size} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn block_layout_flat_binomial_is_already_locality_optimal() {
        // The documented tie: with consecutive node blocks, the flat
        // binomial tree's low strides stay on-node, so the two-level
        // broadcast cannot beat it — both pay ⌈log₂ N⌉ network hops on
        // the critical path.
        let p = 16;
        let mw = 64u64;
        let clock = ClockParams::clustered(200.0, 2.0, 4, 2.0, 0.1);
        let m = Machine::new(p, clock);
        let flat = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw as usize]);
            bcast_binomial(ctx, 0, value, mw).len()
        });
        let hier = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw as usize]);
            bcast_hierarchical(ctx, value, mw, 4).len()
        });
        assert_eq!(flat.makespan, hier.makespan, "block layout: exact tie");
    }

    #[test]
    fn cyclic_layout_two_level_beats_flat() {
        // 12 ranks round-robin over 3 nodes: every power-of-two stride
        // crosses nodes, so the flat tree pays 4 network hops where the
        // two-level version pays ⌈log₂ 3⌉ = 2.
        let p = 12;
        let nodes = 3usize;
        let mw = 64u64;
        let clock = ClockParams::clustered_cyclic(200.0, 2.0, nodes, 2.0, 0.1);
        let m = Machine::new(p, clock);
        let flat = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw as usize]);
            bcast_binomial(ctx, 0, value, mw).len()
        });
        let hier = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw as usize]);
            bcast_two_level(ctx, value, mw, &move |r| r % nodes).len()
        });
        assert!(
            hier.makespan < flat.makespan,
            "cyclic layout: two-level {} must beat flat {}",
            hier.makespan,
            flat.makespan
        );
        assert!(
            hier.makespan < 0.85 * flat.makespan,
            "and by a clear margin"
        );
    }

    #[test]
    fn cyclic_layout_two_level_allreduce_beats_flat() {
        let p = 12;
        let nodes = 3usize;
        let mw = 32u64;
        let clock = ClockParams::clustered_cyclic(200.0, 2.0, nodes, 2.0, 0.1);
        let m = Machine::new(p, clock);
        let add =
            |a: &Vec<u64>, b: &Vec<u64>| a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>();
        let flat =
            m.run(move |ctx| allreduce(ctx, vec![1u64; mw as usize], mw, &Combine::new(&add)));
        let hier = m.run(move |ctx| {
            allreduce_two_level(
                ctx,
                vec![1u64; mw as usize],
                mw,
                &Combine::new(&add),
                &move |r| r % nodes,
            )
        });
        // `+` is commutative, so the cyclic permutation is harmless.
        assert_eq!(flat.results, hier.results);
        assert!(
            hier.makespan < flat.makespan,
            "cyclic layout: two-level {} must beat flat {}",
            hier.makespan,
            flat.makespan
        );
    }

    #[test]
    fn cluster_locality_is_visible_in_point_to_point() {
        let clock = ClockParams::clustered(100.0, 1.0, 4, 1.0, 0.0);
        let m = Machine::new(8, clock);
        let run = m.run(|ctx| match ctx.rank() {
            0 => {
                ctx.send(1, (), 10); // same node: cost 1
                ctx.send(4, (), 10); // other node: cost 110
                ctx.time()
            }
            1 => {
                ctx.recv::<()>(0);
                ctx.time()
            }
            4 => {
                ctx.recv::<()>(0);
                ctx.time()
            }
            _ => 0.0,
        });
        assert_eq!(run.results[1], 1.0); // local hop
        assert_eq!(run.results[4], 1.0 + 110.0); // queued behind, then remote hop
    }

    #[test]
    fn flat_machine_prefers_flat_algorithms_slightly() {
        // Without locality the two-level version only adds rounds.
        let p = 16;
        let m = Machine::new(p, ClockParams::parsytec_like());
        let flat = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(1u64);
            bcast_binomial(ctx, 0, value, 1)
        });
        let hier = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(1u64);
            bcast_hierarchical(ctx, value, 1, 4)
        });
        assert!(flat.makespan <= hier.makespan);
    }
}
