//! Sequential reference semantics of the collective operations —
//! direct transcriptions of the paper's equations (4)–(8) plus the
//! auxiliary `map#` of eq. (13).
//!
//! Every distributed algorithm in this crate is tested against these.

/// `map f [x1, …, xn] = [f x1, …, f xn]` (eq. 4).
pub fn ref_map<T, U>(f: impl Fn(&T) -> U, xs: &[T]) -> Vec<U> {
    xs.iter().map(f).collect()
}

/// `map# f [x0, …, x(n-1)] = [f 0 x0, …, f (n-1) x(n-1)]` (eq. 13) —
/// `map` extended with the processor number.
pub fn ref_map_indexed<T, U>(f: impl Fn(usize, &T) -> U, xs: &[T]) -> Vec<U> {
    xs.iter().enumerate().map(|(i, x)| f(i, x)).collect()
}

/// `reduce (⊕) [x1, …, xn] = [x1 ⊕ … ⊕ xn, x2, …, xn]` (eq. 5):
/// the combined value replaces the first element, the rest are unchanged.
pub fn ref_reduce<T: Clone>(op: impl Fn(&T, &T) -> T, xs: &[T]) -> Vec<T> {
    assert!(!xs.is_empty());
    let mut out = xs.to_vec();
    out[0] = ref_reduce_value(op, xs);
    out
}

/// Just the combined value `x1 ⊕ … ⊕ xn`, folded left to right (the order
/// an associative operator is entitled to).
pub fn ref_reduce_value<T: Clone>(op: impl Fn(&T, &T) -> T, xs: &[T]) -> T {
    assert!(!xs.is_empty());
    let mut acc = xs[0].clone();
    for x in &xs[1..] {
        acc = op(&acc, x);
    }
    acc
}

/// `allreduce (⊕) [x1, …, xn] = [y, …, y]` with `y = x1 ⊕ … ⊕ xn` (eq. 6).
pub fn ref_allreduce<T: Clone>(op: impl Fn(&T, &T) -> T, xs: &[T]) -> Vec<T> {
    let y = ref_reduce_value(op, xs);
    vec![y; xs.len()]
}

/// `scan (⊕) [x1, …, xn] = [x1, x1 ⊕ x2, …, x1 ⊕ … ⊕ xn]` (eq. 7) —
/// the *inclusive* prefix combination.
pub fn ref_scan<T: Clone>(op: impl Fn(&T, &T) -> T, xs: &[T]) -> Vec<T> {
    assert!(!xs.is_empty());
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = xs[0].clone();
    out.push(acc.clone());
    for x in &xs[1..] {
        acc = op(&acc, x);
        out.push(acc.clone());
    }
    out
}

/// Exclusive scan: element `i` is `x1 ⊕ … ⊕ x(i)` for `i ≥ 1`; element 0 is
/// `None` (no identity element is assumed).
pub fn ref_exscan<T: Clone>(op: impl Fn(&T, &T) -> T, xs: &[T]) -> Vec<Option<T>> {
    let inc = ref_scan(op, xs);
    let mut out = Vec::with_capacity(xs.len());
    out.push(None);
    out.extend(inc[..xs.len() - 1].iter().cloned().map(Some));
    out
}

/// `bcast [x1, _, …, _] = [x1, …, x1]` (eq. 8).
pub fn ref_bcast<T: Clone>(xs: &[T]) -> Vec<T> {
    assert!(!xs.is_empty());
    vec![xs[0].clone(); xs.len()]
}

/// The comcast pattern of Section 3.4: `[b, _, …, _] ↦ [b, g b, …, g^(n-1) b]`.
pub fn ref_comcast<T: Clone>(g: impl Fn(&T) -> T, xs: &[T]) -> Vec<T> {
    assert!(!xs.is_empty());
    let mut out = Vec::with_capacity(xs.len());
    let mut v = xs[0].clone();
    out.push(v.clone());
    for _ in 1..xs.len() {
        v = g(&v);
        out.push(v.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_applies_pointwise() {
        assert_eq!(ref_map(|x: &i32| x * 2, &[1, 2, 3]), vec![2, 4, 6]);
    }

    #[test]
    fn map_indexed_passes_rank() {
        assert_eq!(
            ref_map_indexed(|i, x: &i32| i as i32 * 10 + x, &[1, 2, 3]),
            vec![1, 12, 23]
        );
    }

    #[test]
    fn reduce_replaces_first_only() {
        let add = |a: &i32, b: &i32| a + b;
        assert_eq!(ref_reduce(add, &[1, 2, 3, 4]), vec![10, 2, 3, 4]);
    }

    #[test]
    fn reduce_folds_left_to_right() {
        // Subtraction is not associative; the reference pins the order so
        // tests can detect ordering bugs in the distributed algorithms.
        let sub = |a: &i32, b: &i32| a - b;
        assert_eq!(ref_reduce_value(sub, &[10, 1, 2, 3]), 4);
    }

    #[test]
    fn allreduce_fills_everywhere() {
        let add = |a: &i32, b: &i32| a + b;
        assert_eq!(ref_allreduce(add, &[1, 2, 3]), vec![6, 6, 6]);
    }

    #[test]
    fn scan_matches_paper_example() {
        // The running example of Figures 4/5: input [2,5,9,1,2,6].
        let add = |a: &i64, b: &i64| a + b;
        assert_eq!(
            ref_scan(add, &[2, 5, 9, 1, 2, 6]),
            vec![2, 7, 16, 17, 19, 25]
        );
        // scan ; scan — the SS-Scan left-hand side (Figure 5's result).
        let once = ref_scan(add, &[2, 5, 9, 1, 2, 6]);
        assert_eq!(ref_scan(add, &once), vec![2, 9, 25, 42, 61, 86]);
    }

    #[test]
    fn exscan_shifts_by_one() {
        let add = |a: &i32, b: &i32| a + b;
        assert_eq!(ref_exscan(add, &[1, 2, 3]), vec![None, Some(1), Some(3)]);
    }

    #[test]
    fn bcast_copies_first() {
        assert_eq!(ref_bcast(&[7, 0, 0]), vec![7, 7, 7]);
    }

    #[test]
    fn comcast_iterates_g() {
        let g = |x: &i32| x + 10;
        assert_eq!(ref_comcast(g, &[1, 0, 0, 0]), vec![1, 11, 21, 31]);
    }

    #[test]
    fn singleton_lists_work() {
        let add = |a: &i32, b: &i32| a + b;
        assert_eq!(ref_scan(add, &[5]), vec![5]);
        assert_eq!(ref_reduce(add, &[5]), vec![5]);
        assert_eq!(ref_bcast(&[5]), vec![5]);
        assert_eq!(ref_exscan(add, &[5]), vec![None]);
    }
}
