//! Property tests for communicators: random colorings, random group
//! sizes, every collective consistent with its per-group reference.
//! Random cases are drawn from a seeded [`Rng`] so runs are reproducible.

use collopt_collectives::{Combine, Comm};
use collopt_machine::{ClockParams, Machine, Rng};

/// Deterministic per-rank contribution used by the properties below.
fn ctx_rank_value(machine_rank: usize) -> i64 {
    (machine_rank as i64) * 3 + 1
}

/// Draw `cases` random `(p, colors)` instances and hand each to `check`.
fn for_random_colorings(
    seed: u64,
    cases: usize,
    max_p: usize,
    num_colors: u64,
    mut check: impl FnMut(usize, std::sync::Arc<Vec<u64>>),
) {
    let mut rng = Rng::new(seed);
    for _ in 0..cases {
        let p = rng.range_usize(1, max_p);
        let colors: Vec<u64> = (0..max_p).map(|_| rng.below(num_colors)).collect();
        check(p, std::sync::Arc::new(colors));
    }
}

#[test]
fn split_allreduce_matches_per_group_reference() {
    for_random_colorings(0xA11, 32, 14, 4, |p, colors| {
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            let add = |a: &i64, b: &i64| a + b;
            comm.allreduce(
                ctx_rank_value(comm.translate(comm.rank())),
                1,
                &Combine::new(&add),
            )
        });
        for rank in 0..p {
            let expected: i64 = (0..p)
                .filter(|&r| colors[r] == colors[rank])
                .map(ctx_rank_value)
                .sum();
            assert_eq!(run.results[rank], expected, "rank {}", rank);
        }
    });
}

#[test]
fn split_scan_matches_per_group_prefix() {
    for_random_colorings(0x5CA, 32, 12, 3, |p, colors| {
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            let add = |a: &i64, b: &i64| a + b;
            comm.scan(
                ctx_rank_value(comm.translate(comm.rank())),
                1,
                &Combine::new(&add),
            )
        });
        for rank in 0..p {
            let expected: i64 = (0..=rank)
                .filter(|&r| colors[r] == colors[rank])
                .map(ctx_rank_value)
                .sum();
            assert_eq!(run.results[rank], expected, "rank {}", rank);
        }
    });
}

#[test]
fn split_bcast_delivers_group_roots_value() {
    for_random_colorings(0xBCA, 32, 12, 3, |p, colors| {
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            let value = (comm.rank() == 0).then(|| comm.translate(0) as i64);
            comm.bcast(0, value, 1)
        });
        for rank in 0..p {
            // Group root = lowest machine rank with the same color.
            let root = (0..p).find(|&r| colors[r] == colors[rank]).unwrap() as i64;
            assert_eq!(run.results[rank], root, "rank {}", rank);
        }
    });
}

#[test]
fn split_gather_collects_in_group_order() {
    for_random_colorings(0x6A7, 32, 12, 3, |p, colors| {
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            comm.gather(comm.translate(comm.rank()), 1)
        });
        for rank in 0..p {
            let group: Vec<usize> = (0..p).filter(|&r| colors[r] == colors[rank]).collect();
            if group[0] == rank {
                assert_eq!(run.results[rank].as_ref(), Some(&group), "root {}", rank);
            } else {
                assert!(run.results[rank].is_none(), "non-root {}", rank);
            }
        }
    });
}
