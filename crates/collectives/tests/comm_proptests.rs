//! Property tests for communicators: random colorings, random group
//! sizes, every collective consistent with its per-group reference.

use collopt_collectives::{Combine, Comm};
use collopt_machine::{ClockParams, Machine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_allreduce_matches_per_group_reference(
        p in 1usize..14,
        colors in prop::collection::vec(0u64..4, 14),
    ) {
        let colors = std::sync::Arc::new(colors);
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            let add = |a: &i64, b: &i64| a + b;
            comm.allreduce(ctx_rank_value(comm.translate(comm.rank())), 1, &Combine::new(&add))
        });
        for rank in 0..p {
            let expected: i64 = (0..p)
                .filter(|&r| colors[r] == colors[rank])
                .map(ctx_rank_value)
                .sum();
            prop_assert_eq!(run.results[rank], expected, "rank {}", rank);
        }
    }

    #[test]
    fn split_scan_matches_per_group_prefix(
        p in 1usize..12,
        colors in prop::collection::vec(0u64..3, 12),
    ) {
        let colors = std::sync::Arc::new(colors);
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            let add = |a: &i64, b: &i64| a + b;
            comm.scan(ctx_rank_value(comm.translate(comm.rank())), 1, &Combine::new(&add))
        });
        for rank in 0..p {
            let expected: i64 = (0..=rank)
                .filter(|&r| colors[r] == colors[rank])
                .map(ctx_rank_value)
                .sum();
            prop_assert_eq!(run.results[rank], expected, "rank {}", rank);
        }
    }

    #[test]
    fn split_bcast_delivers_group_roots_value(
        p in 1usize..12,
        colors in prop::collection::vec(0u64..3, 12),
    ) {
        let colors = std::sync::Arc::new(colors);
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            let value = (comm.rank() == 0).then(|| comm.translate(0) as i64);
            comm.bcast(0, value, 1)
        });
        for rank in 0..p {
            // Group root = lowest machine rank with the same color.
            let root = (0..p).find(|&r| colors[r] == colors[rank]).unwrap() as i64;
            prop_assert_eq!(run.results[rank], root, "rank {}", rank);
        }
    }

    #[test]
    fn split_gather_collects_in_group_order(
        p in 1usize..12,
        colors in prop::collection::vec(0u64..3, 12),
    ) {
        let colors = std::sync::Arc::new(colors);
        let machine = Machine::new(p, ClockParams::free());
        let cs = colors.clone();
        let run = machine.run(move |ctx| {
            let cs = cs.clone();
            let mut comm = Comm::split(ctx, move |r| cs[r]);
            comm.gather(comm.translate(comm.rank()), 1)
        });
        for rank in 0..p {
            let group: Vec<usize> = (0..p).filter(|&r| colors[r] == colors[rank]).collect();
            if group[0] == rank {
                prop_assert_eq!(run.results[rank].as_ref(), Some(&group), "root {}", rank);
            } else {
                prop_assert!(run.results[rank].is_none(), "non-root {}", rank);
            }
        }
    }
}

/// Deterministic per-rank contribution used by the properties above.
fn ctx_rank_value(machine_rank: usize) -> i64 {
    (machine_rank as i64) * 3 + 1
}
