//! Property-style agreement tests for the reduction family.
//!
//! Random processor counts (powers of two and not), random block
//! lengths (including blocks shorter than `p`, whose tail segments are
//! empty) and random segment-wise operators, all drawn from a seeded
//! [`Rng`] so every run replays identical cases. The invariant under
//! test: `allreduce_rabenseifner`, `allreduce_butterfly` (where
//! defined), `allreduce_ring` and `allreduce_auto` all equal the
//! sequential left fold of the blocks in rank order — the defining
//! semantics of `allreduce` (eq. 6 of the paper).

use collopt_collectives::op::Combine;
use collopt_collectives::{
    allreduce_auto, allreduce_butterfly, allreduce_rabenseifner, allreduce_ring,
};
use collopt_machine::{ClockParams, Machine, Rng};
use std::sync::Arc;

type Block = Vec<i64>;

/// A small family of commutative, associative elementwise operators.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Add,
    Min,
    Max,
    Xor,
}

const OP_KINDS: [OpKind; 4] = [OpKind::Add, OpKind::Min, OpKind::Max, OpKind::Xor];

fn apply(kind: OpKind, a: &Block, b: &Block) -> Block {
    a.iter()
        .zip(b)
        .map(|(x, y)| match kind {
            OpKind::Add => x + y,
            OpKind::Min => *x.min(y),
            OpKind::Max => *x.max(y),
            OpKind::Xor => x ^ y,
        })
        .collect()
}

/// Sequential left fold in rank order — the reference semantics.
fn fold_blocks(op: impl Fn(&Block, &Block) -> Block, inputs: &[Block]) -> Block {
    let mut acc = inputs[0].clone();
    for b in &inputs[1..] {
        acc = op(&acc, b);
    }
    acc
}

fn random_inputs(rng: &mut Rng, p: usize, n: usize) -> Vec<Block> {
    (0..p)
        .map(|_| (0..n).map(|_| rng.range_i64(-100, 100)).collect())
        .collect()
}

#[test]
fn reduction_family_agrees_with_the_sequential_fold() {
    let mut rng = Rng::new(0x7A51);
    for case in 0..40 {
        let p = rng.range_usize(1, 18);
        let n = rng.range_usize(1, 33);
        let kind = OP_KINDS[rng.range_usize(0, OP_KINDS.len())];
        let inputs = random_inputs(&mut rng, p, n);
        let expected = fold_blocks(|a, b| apply(kind, a, b), &inputs);
        let machine = Machine::new(p, ClockParams::free());
        let shared = Arc::new(inputs);

        let raben = {
            let shared = Arc::clone(&shared);
            machine.run(move |ctx| {
                let f = move |a: &Block, b: &Block| apply(kind, a, b);
                let op = Combine::new(&f).assume_commutative();
                allreduce_rabenseifner(ctx, shared[ctx.rank()].clone(), 1, &op)
            })
        };
        assert!(
            raben.results.iter().all(|r| r == &expected),
            "case {case}: rabenseifner p={p} n={n} {kind:?}"
        );

        let ring = {
            let shared = Arc::clone(&shared);
            machine.run(move |ctx| {
                let f = move |a: &Block, b: &Block| apply(kind, a, b);
                let op = Combine::new(&f).assume_commutative();
                allreduce_ring(ctx, shared[ctx.rank()].clone(), 1, &op)
            })
        };
        assert!(
            ring.results.iter().all(|r| r == &expected),
            "case {case}: ring p={p} n={n} {kind:?}"
        );

        let auto = {
            let shared = Arc::clone(&shared);
            machine.run(move |ctx| {
                let f = move |a: &Block, b: &Block| apply(kind, a, b);
                let op = Combine::new(&f).assume_commutative();
                allreduce_auto(ctx, shared[ctx.rank()].clone(), 1, &op)
            })
        };
        assert!(
            auto.results.iter().all(|r| r == &expected),
            "case {case}: auto p={p} n={n} {kind:?}"
        );

        if p.is_power_of_two() {
            let butterfly = {
                let shared = Arc::clone(&shared);
                machine.run(move |ctx| {
                    let f = move |a: &Block, b: &Block| apply(kind, a, b);
                    let op = Combine::new(&f);
                    allreduce_butterfly(ctx, shared[ctx.rank()].clone(), n as u64, &op)
                })
            };
            assert_eq!(
                butterfly.results, raben.results,
                "case {case}: butterfly vs rabenseifner p={p} n={n} {kind:?}"
            );
        }
    }
}

#[test]
fn rabenseifner_matches_butterfly_for_nonabelian_ops_on_powers_of_two() {
    // Elementwise string concatenation: associative, NOT commutative.
    // The halving/doubling pair must still agree with the butterfly (and
    // with the rank-order fold) because both join complete aligned rank
    // groups in order.
    let mut rng = Rng::new(0x7A52);
    for case in 0..24 {
        let p = 1usize << rng.range_usize(0, 5);
        let n = rng.range_usize(1, 20);
        let inputs: Vec<Vec<String>> = (0..p)
            .map(|r| {
                (0..n)
                    .map(|_| format!("{}{}", char::from(b'a' + r as u8), rng.range_i64(0, 10)))
                    .collect()
            })
            .collect();
        let cat = |a: &Vec<String>, b: &Vec<String>| -> Vec<String> {
            a.iter().zip(b).map(|(x, y)| format!("{x}{y}")).collect()
        };
        let expected = {
            let mut acc = inputs[0].clone();
            for b in &inputs[1..] {
                acc = cat(&acc, b);
            }
            acc
        };
        let machine = Machine::new(p, ClockParams::free());
        let shared = Arc::new(inputs);

        let raben = {
            let shared = Arc::clone(&shared);
            machine.run(move |ctx| {
                let cat = |a: &Vec<String>, b: &Vec<String>| -> Vec<String> {
                    a.iter().zip(b).map(|(x, y)| format!("{x}{y}")).collect()
                };
                allreduce_rabenseifner(ctx, shared[ctx.rank()].clone(), 1, &Combine::new(&cat))
            })
        };
        let butterfly = {
            let shared = Arc::clone(&shared);
            machine.run(move |ctx| {
                let cat = |a: &Vec<String>, b: &Vec<String>| -> Vec<String> {
                    a.iter().zip(b).map(|(x, y)| format!("{x}{y}")).collect()
                };
                allreduce_butterfly(
                    ctx,
                    shared[ctx.rank()].clone(),
                    n as u64,
                    &Combine::new(&cat),
                )
            })
        };
        assert!(
            raben.results.iter().all(|r| r == &expected),
            "case {case}: p={p} n={n}"
        );
        assert_eq!(raben.results, butterfly.results, "case {case}: p={p} n={n}");
    }
}
