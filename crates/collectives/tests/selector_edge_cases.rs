//! Edge cases for the cost-model-driven algorithm selectors: machines
//! that are not a power of two, blocks smaller than the machine, and
//! empty blocks. For each case the test pins *which* algorithm the
//! selector must pick (so a cost-model regression is caught by name, not
//! by a silent performance cliff) and checks the executed result against
//! the sequential reference fold.

use collopt_collectives::{
    allreduce_auto, choose_allreduce, choose_reduce, reduce_auto, reference::ref_allreduce,
    AllreduceChoice, Combine, ReduceChoice,
};
use collopt_machine::{ClockParams, Machine};
use std::sync::Arc;

fn blocks(p: usize, m: usize) -> Vec<Vec<i64>> {
    (0..p)
        .map(|r| (0..m).map(|j| (r * 7 + j) as i64 % 11 - 5).collect())
        .collect()
}

// `Combine::new` wants exactly `Fn(&T, &T) -> T` with `T = Vec<i64>`.
#[allow(clippy::ptr_arg)]
fn vadd(a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// "Keep the left operand" — associative, *not* commutative, and
/// elementwise (so it is safe for segmenting algorithms). The rank-order
/// fold returns rank 0's block; any algorithm that reorders operands
/// returns something else.
#[allow(clippy::ptr_arg)]
fn vfirst(a: &Vec<i64>, _b: &Vec<i64>) -> Vec<i64> {
    a.clone()
}

/// Run `allreduce_auto` on real machine threads and compare every rank's
/// result against the sequential rank-order fold.
fn check_allreduce_auto(p: usize, m: usize, commutative: bool, clock: ClockParams) {
    let input = blocks(p, m);
    let expected = if commutative {
        ref_allreduce(vadd, &input)
    } else {
        ref_allreduce(vfirst, &input)
    };
    let shared = Arc::new(input);
    let run = Machine::new(p, clock).run(move |ctx| {
        let combine = if commutative {
            Combine::new(&vadd).assume_commutative()
        } else {
            Combine::new(&vfirst)
        };
        allreduce_auto(ctx, shared[ctx.rank()].clone(), 1, &combine)
    });
    assert_eq!(
        run.results, expected,
        "allreduce_auto p={p} m={m} commutative={commutative}"
    );
}

fn check_reduce_auto(p: usize, m: usize, clock: ClockParams) {
    let input = blocks(p, m);
    let mut expected = input.clone();
    expected[0] = input
        .iter()
        .skip(1)
        .fold(input[0].clone(), |acc, b| vadd(&acc, b));
    let shared = Arc::new(input);
    let run = Machine::new(p, clock).run(move |ctx| {
        let value = shared[ctx.rank()].clone();
        // Non-roots keep their block, matching the paper's reduce
        // semantics (eq. 5).
        reduce_auto(ctx, value.clone(), 1, &Combine::new(&vadd)).unwrap_or(value)
    });
    assert_eq!(run.results, expected, "reduce_auto p={p} m={m}");
}

#[test]
fn non_power_of_two_machines_never_get_butterfly_or_halving() {
    for p in [3usize, 5, 6, 7, 9, 12] {
        for words in [0u64, 1, 4, 1_000, 100_000] {
            for commutative in [false, true] {
                let choice = choose_allreduce(
                    p,
                    words.max(1),
                    1.0,
                    commutative,
                    &ClockParams::parsytec_like(),
                );
                assert!(
                    !matches!(
                        choice,
                        AllreduceChoice::Butterfly | AllreduceChoice::Rabenseifner
                    ),
                    "p={p} words={words}: {choice:?} needs a power of two"
                );
                if !commutative {
                    // The ring folds in cyclic order; without
                    // commutativity only reduce+bcast remains.
                    assert_eq!(choice, AllreduceChoice::ReduceBcast, "p={p} words={words}");
                }
            }
            assert_eq!(
                choose_reduce(p, words.max(1), 1.0, &ClockParams::parsytec_like()),
                ReduceChoice::Binomial,
                "scatter+gather needs a power of two (p={p})"
            );
        }
    }
}

#[test]
fn selector_pins_at_the_extremes() {
    let clock = ClockParams::parsytec_like();
    // Tiny blocks on a power of two: the single-phase butterfly's one
    // start-up per round wins.
    assert_eq!(
        choose_allreduce(8, 1, 1.0, true, &clock),
        AllreduceChoice::Butterfly
    );
    assert_eq!(choose_reduce(8, 1, 1.0, &clock), ReduceChoice::Binomial);
    // Huge blocks on a power of two: bandwidth-optimal reduce-scatter
    // routes win despite the doubled start-ups.
    assert_eq!(
        choose_allreduce(8, 1_000_000, 1.0, true, &clock),
        AllreduceChoice::Rabenseifner
    );
    assert_eq!(
        choose_reduce(8, 1_000_000, 1.0, &clock),
        ReduceChoice::ScatterGather
    );
    // Huge blocks on a non-power-of-two, commutative: the ring's
    // 2m(1−1/p) words on the wire beat reduce+bcast's 2m·log p.
    assert_eq!(
        choose_allreduce(7, 1_000_000, 1.0, true, &clock),
        AllreduceChoice::Ring
    );
    // Latency-bound non-power-of-two: reduce+bcast's 2⌈log p⌉ start-ups
    // beat the ring's 2(p−1).
    assert_eq!(
        choose_allreduce(7, 1, 1.0, true, &clock),
        AllreduceChoice::ReduceBcast
    );
}

#[test]
fn auto_allreduce_is_correct_at_awkward_shapes() {
    let clock = ClockParams::parsytec_like();
    for p in [2usize, 3, 5, 7, 8, 9] {
        // m = 0 (empty blocks), m < p, m = p, m unaligned, m large.
        for m in [0usize, 1, p.saturating_sub(1), p, 2 * p + 1, 64] {
            for commutative in [false, true] {
                check_allreduce_auto(p, m, commutative, clock);
            }
            check_reduce_auto(p, m, clock);
        }
    }
}

#[test]
fn auto_allreduce_is_correct_where_each_algorithm_is_chosen() {
    // Force each selector outcome via the design point, then verify the
    // executed result still matches the reference fold: the chosen
    // algorithm name is pinned so this keeps covering all four arms.
    let clock = ClockParams::parsytec_like();
    let cases: &[(usize, usize, bool, AllreduceChoice)] = &[
        (8, 1, true, AllreduceChoice::Butterfly),
        (8, 100_000, false, AllreduceChoice::Rabenseifner),
        (7, 100_000, true, AllreduceChoice::Ring),
        (7, 1, true, AllreduceChoice::ReduceBcast),
    ];
    for &(p, m, commutative, expect) in cases {
        let got = choose_allreduce(p, m.max(1) as u64, 1.0, commutative, &clock);
        assert_eq!(got, expect, "p={p} m={m}");
        check_allreduce_auto(p, m, commutative, clock);
    }
}
