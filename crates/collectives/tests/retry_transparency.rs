//! Message loss must be invisible to the collectives' *values*.
//!
//! The ack/retry protocol lives entirely in `Ctx::send`/`exchange`: a
//! dropped transmission costs the sender time (transfer + ack timeout)
//! and is retransmitted, but the payload that eventually lands — and the
//! order packets enter each FIFO lane — is untouched. So every collective
//! algorithm, written with no knowledge of faults, must produce
//! bit-identical results under any recoverable drop plan. This test pins
//! that transparency for a representative of each communication pattern
//! (tree, butterfly, ring) under both probabilistic and surgical drops.

use collopt_collectives::{
    allgather_ring, allreduce, bcast_binomial, reduce_binomial, scan_butterfly, Combine,
};
use collopt_machine::{ClockParams, Ctx, FaultPlan, Machine};

/// Run `f` clean and under `plan`; results must match bit for bit.
/// Returns the number of retries the faulted run performed so callers
/// can assert the sweep as a whole actually exercised the retry path
/// (a single small run may draw no drops).
fn check_transparent<T, F>(label: &str, p: usize, plan: &FaultPlan, f: F) -> u64
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut Ctx) -> T + Sync,
{
    let clock = ClockParams::new(100.0, 2.0);
    let clean = Machine::new(p, clock).run(&f);
    let faulted = Machine::new(p, clock).with_faults(plan.clone()).run(&f);
    let tag = format!("{label} p={p} plan={}", plan.describe());
    assert_eq!(clean.results, faulted.results, "{tag}: results drifted");
    assert!(
        faulted.makespan >= clean.makespan,
        "{tag}: retries sped the run up"
    );
    faulted.total_retries()
}

fn block(rank: usize, m: usize) -> Vec<i64> {
    (0..m).map(|j| (rank * 17 + j) as i64 % 11 - 5).collect()
}

const M: usize = 8;

#[test]
fn collectives_survive_probabilistic_drops_bit_identically() {
    let add =
        |a: &Vec<i64>, b: &Vec<i64>| -> Vec<i64> { a.iter().zip(b).map(|(x, y)| x + y).collect() };
    // Aggressive but recoverable: up to 2 consecutive drops, 5 attempts.
    let mut retries = 0u64;
    for seed in [1u64, 23, 77] {
        let plan = FaultPlan::new(seed).with_drops(0.35, 2).with_retry(5, 80.0);
        for p in [2usize, 5, 8] {
            retries += check_transparent("bcast_binomial", p, &plan, |ctx| {
                let v = (ctx.rank() == 0).then(|| block(0, M));
                bcast_binomial(ctx, 0, v, M as u64)
            });
            retries += check_transparent("reduce_binomial", p, &plan, |ctx| {
                reduce_binomial(ctx, 0, block(ctx.rank(), M), M as u64, &Combine::new(&add))
            });
            retries += check_transparent("allreduce_butterfly", p, &plan, |ctx| {
                allreduce(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
            });
            retries += check_transparent("scan_butterfly", p, &plan, |ctx| {
                scan_butterfly(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
            });
            retries += check_transparent("allgather_ring", p, &plan, |ctx| {
                allgather_ring(ctx, block(ctx.rank(), 2), 2)
            });
        }
    }
    assert!(retries > 0, "sweep never exercised the retry path");
}

#[test]
fn collectives_survive_surgical_drops_bit_identically() {
    let add =
        |a: &Vec<i64>, b: &Vec<i64>| -> Vec<i64> { a.iter().zip(b).map(|(x, y)| x + y).collect() };
    // Kill specific early messages on specific lanes — the first tree
    // hop, a butterfly exchange leg, a ring step — twice in a row each.
    let plan = FaultPlan::new(5)
        .with_drop_exact(0, 1, 0, 2)
        .with_drop_exact(1, 0, 0, 2)
        .with_drop_exact(1, 2, 1, 1);
    for p in [3usize, 4, 6] {
        let r = check_transparent("bcast under surgical drops", p, &plan, |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_binomial(ctx, 0, v, M as u64)
        });
        assert!(r >= 2, "p={p}: the first tree hop is always dropped twice");
        check_transparent("allreduce under surgical drops", p, &plan, |ctx| {
            allreduce(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check_transparent("allgather_ring under surgical drops", p, &plan, |ctx| {
            allgather_ring(ctx, block(ctx.rank(), 2), 2)
        });
    }
}
