//! A small concrete syntax for collective pipelines.
//!
//! The paper writes programs as `map f ; scan (⊗) ; reduce (⊕) ; map g ;
//! bcast`; this module parses exactly that shape so pipelines can come
//! from the command line (see the `collopt` binary) or config files:
//!
//! ```text
//! pipeline := stage (';' stage)*
//! stage    := 'bcast' | 'gather' | 'scatter' | 'allgather'
//!           | 'scan' '(' op ')'
//!           | 'reduce' '(' op ')'
//!           | 'allreduce' '(' op ')'
//!           | 'map' ident ('@' number)?      -- opaque local stage,
//!                                               optional ops/element
//! op       := 'add' | 'mul' | 'max' | 'min' | 'and' | 'or'
//!           | 'fadd' | 'fmul' | 'maxplus'    -- add distributing over max
//! ```
//!
//! `map` stages parse to identity functions carrying the given label and
//! cost — sufficient for cost analysis and rule matching, which never look
//! inside local stages. Whitespace is free. Parse errors carry a byte
//! [`Span`], 1-based line/column, and a description; [`ParseError::render`]
//! produces a caret-underlined report. [`parse_pipeline_spanned`]
//! additionally returns the byte span of every parsed stage, which the
//! `collopt-analysis` linter reuses to anchor its diagnostics in the
//! source text.

use crate::op::{lib, BinOp};
use crate::term::Program;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// A new span; `end < start` is clamped to the empty span at `start`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The spanned slice of `src` (empty if out of bounds).
    pub fn slice<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input the error was detected at (`span.start`).
    pub at: usize,
    /// Byte span of the offending token (empty when the error is at a
    /// position rather than a token, e.g. unexpected end of input).
    pub span: Span,
    /// 1-based line of `at`.
    pub line: usize,
    /// 1-based column of `at`, in characters.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(src: &str, span: Span, message: String) -> Self {
        let at = span.start;
        let prefix = &src[..at.min(src.len())];
        let line = prefix.matches('\n').count() + 1;
        let line_start = prefix.rfind('\n').map_or(0, |i| i + 1);
        let col = prefix[line_start..].chars().count() + 1;
        ParseError {
            at,
            span,
            line,
            col,
            message,
        }
    }

    /// Render the error against its source with a caret underline:
    ///
    /// ```text
    /// error: unknown operator 'xor' (…)
    ///  --> line 1, column 6
    ///   |
    ///   | scan(xor)
    ///   |      ^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let line_src = src.lines().nth(self.line - 1).unwrap_or("");
        let pad = " ".repeat(self.col - 1);
        let carets = "^".repeat(self.span.slice(src).chars().count().max(1));
        format!(
            "error: {}\n --> line {}, column {}\n  |\n  | {}\n  | {}{}",
            self.message, self.line, self.col, line_src, pad, carets
        )
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at line {}, column {} (byte {}): {}",
            self.line, self.col, self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    /// Byte span of each parsed stage, in order.
    spans: Vec<Span>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            spans: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        // Span the next character if there is one, else the end position.
        let end = self.src[self.pos..]
            .chars()
            .next()
            .map_or(self.pos, |c| self.pos + c.len_utf8());
        ParseError::new(self.src, Span::new(self.pos, end), message.into())
    }

    fn error_span(&self, span: Span, message: impl Into<String>) -> ParseError {
        ParseError::new(self.src, span, message.into())
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.src[self.pos..].chars().next().unwrap().len_utf8();
        }
    }

    fn eat(&mut self, token: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected '{token}'")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = &self.src[start..];
        let len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return Err(self.error("expected an identifier"));
        }
        self.pos += len;
        Ok(&rest[..len])
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = &self.src[start..];
        let len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_digit() || *c == '.')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return Err(self.error("expected a number"));
        }
        self.pos += len;
        rest[..len]
            .parse()
            .map_err(|e| self.error(format!("bad number: {e}")))
    }

    fn operator(&mut self) -> Result<BinOp, ParseError> {
        self.skip_ws();
        let name_pos = self.pos;
        let name = self.ident()?;
        match name {
            "add" => Ok(lib::add()),
            "mul" => Ok(lib::mul()),
            "max" => Ok(lib::max()),
            "min" => Ok(lib::min()),
            "and" => Ok(lib::and()),
            "or" => Ok(lib::or()),
            "fadd" => Ok(lib::fadd()),
            "fmul" => Ok(lib::fmul()),
            "maxplus" => Ok(lib::add_tropical()),
            other => Err(self.error_span(
                Span::new(name_pos, name_pos + other.len()),
                format!(
                    "unknown operator '{other}' (expected add, mul, max, min, and, or, fadd, fmul, maxplus)"
                ),
            )),
        }
    }

    fn stage(&mut self, prog: Program) -> Result<Program, ParseError> {
        self.skip_ws();
        let kw_pos = self.pos;
        let kw = self.ident()?;
        match kw {
            "bcast" => Ok(prog.bcast()),
            "gather" => Ok(prog.gather()),
            "scatter" => Ok(prog.scatter()),
            "allgather" => Ok(prog.allgather()),
            "scan" | "reduce" | "allreduce" => {
                self.eat('(')?;
                let op = self.operator()?;
                self.eat(')')?;
                Ok(match kw {
                    "scan" => prog.scan(op),
                    "reduce" => prog.reduce(op),
                    _ => prog.allreduce(op),
                })
            }
            "map" => {
                let label = self.ident()?.to_string();
                let ops = if self.peek() == Some('@') {
                    self.eat('@')?;
                    self.number()?
                } else {
                    1.0
                };
                Ok(prog.map(label, ops, |v| v.clone()))
            }
            other => Err(self.error_span(
                Span::new(kw_pos, kw_pos + other.len()),
                format!(
                    "unknown stage '{other}' (expected bcast, gather, scatter, allgather, \
                     scan, reduce, allreduce, map)"
                ),
            )),
        }
    }

    /// Parse one stage and record its byte span. `stage` appends exactly
    /// one [`crate::term::Stage`], so `spans[i]` covers `stages()[i]`.
    fn spanned_stage(&mut self, prog: Program) -> Result<Program, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let prog = self.stage(prog)?;
        // `stage` may have skipped trailing whitespace while peeking for
        // an optional token; don't let the span cover it.
        let end = start + self.src[start..self.pos].trim_end().len();
        self.spans.push(Span::new(start, end));
        Ok(prog)
    }

    fn pipeline(&mut self) -> Result<Program, ParseError> {
        let mut prog = self.spanned_stage(Program::new())?;
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(prog);
            }
            self.eat(';')?;
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(prog); // tolerate a trailing semicolon
            }
            prog = self.spanned_stage(prog)?;
        }
    }
}

/// Parse a pipeline string into a [`Program`].
pub fn parse_pipeline(src: &str) -> Result<Program, ParseError> {
    parse_pipeline_spanned(src).map(|(prog, _)| prog)
}

/// Parse a pipeline string into a [`Program`] together with the byte span
/// of each stage: `spans[i]` covers `program.stages()[i]` in `src`. The
/// linter uses these to anchor diagnostics on the offending stages.
pub fn parse_pipeline_spanned(src: &str) -> Result<(Program, Vec<Span>), ParseError> {
    let mut p = Parser::new(src);
    p.skip_ws();
    if p.pos >= src.len() {
        return Err(p.error("empty pipeline"));
    }
    let prog = p.pipeline()?;
    debug_assert_eq!(prog.len(), p.spans.len());
    Ok((prog, p.spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let prog = parse_pipeline("map f ; scan(mul) ; reduce(add) ; map g ; bcast").unwrap();
        assert_eq!(
            prog.to_string(),
            "map f ; scan(mul) ; reduce(add) ; map g ; bcast"
        );
        assert_eq!(prog.collective_count(), 3);
    }

    #[test]
    fn parses_without_spaces() {
        let prog = parse_pipeline("bcast;scan(add);scan(add)").unwrap();
        assert_eq!(prog.to_string(), "bcast ; scan(add) ; scan(add)");
    }

    #[test]
    fn parses_map_with_cost_annotation() {
        let prog = parse_pipeline("map heavy@12.5 ; allreduce(max)").unwrap();
        assert_eq!(prog.to_string(), "map heavy ; allreduce(max)");
        // Cost shows up in the estimate: 12.5 ops x m.
        let params = collopt_cost::MachineParams::new(1, 0.0, 0.0);
        assert_eq!(crate::rewrite::program_cost(&prog, &params, 2.0), 25.0);
    }

    #[test]
    fn parsed_operators_carry_their_algebra() {
        let prog = parse_pipeline("scan(maxplus) ; allreduce(max)").unwrap();
        // maxplus distributes over max: SR2 must fire.
        let res = crate::rewrite::Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert_eq!(res.steps[0].rule, crate::rules::Rule::Sr2Reduction);
    }

    #[test]
    fn tolerates_trailing_semicolon_and_whitespace() {
        let prog = parse_pipeline("  bcast ;  reduce( add ) ;  ").unwrap();
        assert_eq!(prog.to_string(), "bcast ; reduce(add)");
    }

    #[test]
    fn rejects_unknown_stage() {
        let err = parse_pipeline("shuffle(add)").unwrap_err();
        assert!(err.message.contains("unknown stage"));
        assert_eq!(err.at, 0);
    }

    #[test]
    fn parses_gather_family() {
        let prog = parse_pipeline("gather ; scatter ; allgather").unwrap();
        assert_eq!(prog.to_string(), "gather ; scatter ; allgather");
    }

    #[test]
    fn rejects_unknown_operator_with_position() {
        let err = parse_pipeline("scan(xor)").unwrap_err();
        assert!(err.message.contains("unknown operator 'xor'"));
        assert_eq!(err.at, 5);
    }

    #[test]
    fn rejects_missing_parenthesis() {
        let err = parse_pipeline("scan add").unwrap_err();
        assert!(err.message.contains("expected '('"));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_pipeline("   ").is_err());
        assert!(parse_pipeline("").is_err());
    }

    #[test]
    fn rejects_garbage_between_stages() {
        let err = parse_pipeline("bcast scan(add)").unwrap_err();
        assert!(err.message.contains("expected ';'"));
    }

    #[test]
    fn spanned_parse_covers_every_stage() {
        let src = "map f ; scan(mul) ; reduce(add) ; bcast";
        let (prog, spans) = parse_pipeline_spanned(src).unwrap();
        assert_eq!(spans.len(), prog.len());
        assert_eq!(spans[0].slice(src), "map f");
        assert_eq!(spans[1].slice(src), "scan(mul)");
        assert_eq!(spans[2].slice(src), "reduce(add)");
        assert_eq!(spans[3].slice(src), "bcast");
    }

    #[test]
    fn spans_ignore_surrounding_whitespace() {
        let src = "  bcast ;  reduce( add ) ;  ";
        let (_, spans) = parse_pipeline_spanned(src).unwrap();
        assert_eq!(spans[0].slice(src), "bcast");
        assert_eq!(spans[1].slice(src), "reduce( add )");
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse_pipeline("scan(xor)").unwrap_err();
        assert_eq!((err.line, err.col), (1, 6));
        assert_eq!(err.span.slice("scan(xor)"), "xor");
        let err = parse_pipeline("bcast ;\nscan(add) ;\nshuffle").unwrap_err();
        assert_eq!((err.line, err.col), (3, 1));
        assert!(err.to_string().contains("line 3, column 1"));
    }

    #[test]
    fn render_underlines_the_offending_token() {
        let src = "scan(mul) ; reduce(bogus)";
        let err = parse_pipeline(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("  | scan(mul) ; reduce(bogus)"));
        assert!(rendered.contains("  |                    ^^^^^"));
        assert!(rendered.contains("line 1, column 20"));
    }

    #[test]
    fn parsed_pipeline_round_trips_through_display() {
        for src in [
            "bcast",
            "scan(add) ; reduce(add)",
            "map f ; bcast ; scan(mul) ; scan(add)",
            "scan(fmul) ; allreduce(fadd)",
        ] {
            let prog = parse_pipeline(src).unwrap();
            let reparsed = parse_pipeline(&prog.to_string()).unwrap();
            assert_eq!(prog.to_string(), reparsed.to_string(), "{src}");
        }
    }
}
