//! A small concrete syntax for collective pipelines.
//!
//! The paper writes programs as `map f ; scan (⊗) ; reduce (⊕) ; map g ;
//! bcast`; this module parses exactly that shape so pipelines can come
//! from the command line (see the `collopt` binary) or config files:
//!
//! ```text
//! pipeline := stage (';' stage)*
//! stage    := 'bcast' | 'gather' | 'scatter' | 'allgather'
//!           | 'scan' '(' op ')'
//!           | 'reduce' '(' op ')'
//!           | 'allreduce' '(' op ')'
//!           | 'map' ident ('@' number)?      -- opaque local stage,
//!                                               optional ops/element
//! op       := 'add' | 'mul' | 'max' | 'min' | 'and' | 'or'
//!           | 'fadd' | 'fmul' | 'maxplus'    -- add distributing over max
//! ```
//!
//! `map` stages parse to identity functions carrying the given label and
//! cost — sufficient for cost analysis and rule matching, which never look
//! inside local stages. Whitespace is free. Parse errors carry the byte
//! offset and a description.

use crate::op::{lib, BinOp};
use crate::term::Program;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input the error was detected at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.src[self.pos..].chars().next().unwrap().len_utf8();
        }
    }

    fn eat(&mut self, token: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected '{token}'")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = &self.src[start..];
        let len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return Err(self.error("expected an identifier"));
        }
        self.pos += len;
        Ok(&rest[..len])
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = &self.src[start..];
        let len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_digit() || *c == '.')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return Err(self.error("expected a number"));
        }
        self.pos += len;
        rest[..len]
            .parse()
            .map_err(|e| self.error(format!("bad number: {e}")))
    }

    fn operator(&mut self) -> Result<BinOp, ParseError> {
        let name_pos = self.pos;
        let name = self.ident()?;
        match name {
            "add" => Ok(lib::add()),
            "mul" => Ok(lib::mul()),
            "max" => Ok(lib::max()),
            "min" => Ok(lib::min()),
            "and" => Ok(lib::and()),
            "or" => Ok(lib::or()),
            "fadd" => Ok(lib::fadd()),
            "fmul" => Ok(lib::fmul()),
            "maxplus" => Ok(lib::add_tropical()),
            other => Err(ParseError {
                at: name_pos,
                message: format!(
                    "unknown operator '{other}' (expected add, mul, max, min, and, or, fadd, fmul, maxplus)"
                ),
            }),
        }
    }

    fn stage(&mut self, prog: Program) -> Result<Program, ParseError> {
        let kw_pos = self.pos;
        let kw = self.ident()?;
        match kw {
            "bcast" => Ok(prog.bcast()),
            "gather" => Ok(prog.gather()),
            "scatter" => Ok(prog.scatter()),
            "allgather" => Ok(prog.allgather()),
            "scan" | "reduce" | "allreduce" => {
                self.eat('(')?;
                let op = self.operator()?;
                self.eat(')')?;
                Ok(match kw {
                    "scan" => prog.scan(op),
                    "reduce" => prog.reduce(op),
                    _ => prog.allreduce(op),
                })
            }
            "map" => {
                let label = self.ident()?.to_string();
                let ops = if self.peek() == Some('@') {
                    self.eat('@')?;
                    self.number()?
                } else {
                    1.0
                };
                Ok(prog.map(label, ops, |v| v.clone()))
            }
            other => Err(ParseError {
                at: kw_pos,
                message: format!(
                    "unknown stage '{other}' (expected bcast, gather, scatter, allgather, \
                     scan, reduce, allreduce, map)"
                ),
            }),
        }
    }

    fn pipeline(&mut self) -> Result<Program, ParseError> {
        let mut prog = self.stage(Program::new())?;
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(prog);
            }
            self.eat(';')?;
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(prog); // tolerate a trailing semicolon
            }
            prog = self.stage(prog)?;
        }
    }
}

/// Parse a pipeline string into a [`Program`].
pub fn parse_pipeline(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src);
    p.skip_ws();
    if p.pos >= src.len() {
        return Err(p.error("empty pipeline"));
    }
    p.pipeline()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let prog = parse_pipeline("map f ; scan(mul) ; reduce(add) ; map g ; bcast").unwrap();
        assert_eq!(
            prog.to_string(),
            "map f ; scan(mul) ; reduce(add) ; map g ; bcast"
        );
        assert_eq!(prog.collective_count(), 3);
    }

    #[test]
    fn parses_without_spaces() {
        let prog = parse_pipeline("bcast;scan(add);scan(add)").unwrap();
        assert_eq!(prog.to_string(), "bcast ; scan(add) ; scan(add)");
    }

    #[test]
    fn parses_map_with_cost_annotation() {
        let prog = parse_pipeline("map heavy@12.5 ; allreduce(max)").unwrap();
        assert_eq!(prog.to_string(), "map heavy ; allreduce(max)");
        // Cost shows up in the estimate: 12.5 ops x m.
        let params = collopt_cost::MachineParams::new(1, 0.0, 0.0);
        assert_eq!(crate::rewrite::program_cost(&prog, &params, 2.0), 25.0);
    }

    #[test]
    fn parsed_operators_carry_their_algebra() {
        let prog = parse_pipeline("scan(maxplus) ; allreduce(max)").unwrap();
        // maxplus distributes over max: SR2 must fire.
        let res = crate::rewrite::Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert_eq!(res.steps[0].rule, crate::rules::Rule::Sr2Reduction);
    }

    #[test]
    fn tolerates_trailing_semicolon_and_whitespace() {
        let prog = parse_pipeline("  bcast ;  reduce( add ) ;  ").unwrap();
        assert_eq!(prog.to_string(), "bcast ; reduce(add)");
    }

    #[test]
    fn rejects_unknown_stage() {
        let err = parse_pipeline("shuffle(add)").unwrap_err();
        assert!(err.message.contains("unknown stage"));
        assert_eq!(err.at, 0);
    }

    #[test]
    fn parses_gather_family() {
        let prog = parse_pipeline("gather ; scatter ; allgather").unwrap();
        assert_eq!(prog.to_string(), "gather ; scatter ; allgather");
    }

    #[test]
    fn rejects_unknown_operator_with_position() {
        let err = parse_pipeline("scan(xor)").unwrap_err();
        assert!(err.message.contains("unknown operator 'xor'"));
        assert_eq!(err.at, 5);
    }

    #[test]
    fn rejects_missing_parenthesis() {
        let err = parse_pipeline("scan add").unwrap_err();
        assert!(err.message.contains("expected '('"));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_pipeline("   ").is_err());
        assert!(parse_pipeline("").is_err());
    }

    #[test]
    fn rejects_garbage_between_stages() {
        let err = parse_pipeline("bcast scan(add)").unwrap_err();
        assert!(err.message.contains("expected ';'"));
    }

    #[test]
    fn parsed_pipeline_round_trips_through_display() {
        for src in [
            "bcast",
            "scan(add) ; reduce(add)",
            "map f ; bcast ; scan(mul) ; scan(add)",
            "scan(fmul) ; allreduce(fadd)",
        ] {
            let prog = parse_pipeline(src).unwrap();
            let reparsed = parse_pipeline(&prog.to_string()).unwrap();
            assert_eq!(prog.to_string(), reparsed.to_string(), "{src}");
        }
    }
}
