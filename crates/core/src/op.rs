//! Base operators and their algebraic properties.
//!
//! The side conditions of the optimization rules are algebraic:
//! associativity (every collective needs it), commutativity (SR-Reduction,
//! SS-Scan, BSS-Comcast, BSR-Local), and distributivity of one operator
//! over another (the `2`-rules: SR2, SS2, BSS2, BSR2). A [`BinOp`] bundles
//! the combine function with *declared* properties; the declarations are
//! what the rewrite engine trusts, and [`BinOp::check_associative`] /
//! [`check_commutative`](BinOp::check_commutative) /
//! [`check_distributes_over`](BinOp::check_distributes_over) give
//! randomized verification used by the test-suite (and available to users
//! who declare properties of their own operators).

use std::sync::Arc;

use crate::value::Value;

/// A binary function over [`Value`]s.
pub type ValueFn2 = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;

/// A binary base operator with declared algebraic properties and a
/// declared cost (base operations per block word per application).
#[derive(Clone)]
pub struct BinOp {
    name: String,
    f: ValueFn2,
    associative: bool,
    commutative: bool,
    distributes_over: Vec<String>,
    ops_per_word: f64,
    width: f64,
}

impl BinOp {
    /// A new operator. `associative` must hold for the operator to be used
    /// in any collective; it is asserted here as documentation of intent
    /// and verified by the randomized checkers in tests.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        BinOp {
            name: name.into(),
            f: Arc::new(f),
            associative: true,
            commutative: false,
            distributes_over: Vec::new(),
            ops_per_word: 1.0,
            width: 1.0,
        }
    }

    /// Declare the operator commutative.
    pub fn commutative(mut self) -> Self {
        self.commutative = true;
        self
    }

    /// Declare that `self` distributes over the operator named `other`:
    /// `a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)`.
    pub fn distributes_over_op(mut self, other: &str) -> Self {
        self.distributes_over.push(other.to_string());
        self
    }

    /// Override the per-word cost (default 1).
    pub fn with_cost(mut self, ops_per_word: f64) -> Self {
        assert!(ops_per_word >= 0.0);
        self.ops_per_word = ops_per_word;
        self
    }

    /// Mark the operator as non-associative (only used by fused operators
    /// that must never be fed to a standard collective).
    pub fn non_associative(mut self) -> Self {
        self.associative = false;
        self
    }

    /// Declare the value width in machine words per block element
    /// (2 for operators on pairs, etc.; default 1). Used by the cost
    /// estimator to size messages.
    pub fn with_width(mut self, width: f64) -> Self {
        assert!(width >= 1.0);
        self.width = width;
        self
    }

    /// Declared width in words per block element.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Operator name (identity for property lookups).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Is the operator declared associative?
    pub fn is_associative(&self) -> bool {
        self.associative
    }

    /// Is the operator declared commutative?
    pub fn is_commutative(&self) -> bool {
        self.commutative
    }

    /// Does `self` distribute over `other` (by declaration)?
    pub fn distributes_over(&self, other: &BinOp) -> bool {
        self.distributes_over.iter().any(|n| n == other.name())
    }

    /// Declared cost in base operations per block word.
    pub fn ops_per_word(&self) -> f64 {
        self.ops_per_word
    }

    /// Apply to scalars or tuples directly; lifts elementwise over
    /// [`Value::List`] blocks.
    pub fn apply(&self, a: &Value, b: &Value) -> Value {
        let f = &self.f;
        a.zip_block(b, &|x, y| f(x, y))
    }

    /// The raw scalar function (no block lifting).
    pub fn raw(&self) -> ValueFn2 {
        self.f.clone()
    }

    /// Randomized associativity check over the given sample values:
    /// verifies `(a⊕b)⊕c = a⊕(b⊕c)` for all triples.
    pub fn check_associative(&self, samples: &[Value]) -> bool {
        RequiredLaw::Associative(self.clone())
            .counterexample(samples)
            .is_none()
    }

    /// Randomized commutativity check: `a⊕b = b⊕a` for all pairs.
    pub fn check_commutative(&self, samples: &[Value]) -> bool {
        RequiredLaw::Commutative(self.clone())
            .counterexample(samples)
            .is_none()
    }

    /// Randomized distributivity check:
    /// `a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)` and the right-handed law
    /// `(b ⊕ c) ⊗ a = (b ⊗ a) ⊕ (c ⊗ a)` for all triples. The rules need
    /// both orientations (the fused operators multiply on either side).
    pub fn check_distributes_over(&self, other: &BinOp, samples: &[Value]) -> bool {
        RequiredLaw::DistributesOver(self.clone(), other.clone())
            .counterexample(samples)
            .is_none()
    }
}

impl std::fmt::Debug for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinOp")
            .field("name", &self.name)
            .field("associative", &self.associative)
            .field("commutative", &self.commutative)
            .field("distributes_over", &self.distributes_over)
            .field("ops_per_word", &self.ops_per_word)
            .finish()
    }
}

/// The relative tolerance used by [`value_close`] for floating-point
/// comparisons — the **single** place the epsilon is defined.
///
/// Tolerance semantics: two floats `x`, `y` are close when
/// `|x − y| ≤ FLOAT_RTOL · max(|x|, |y|, 1)` — relative for large
/// magnitudes, absolute (`FLOAT_RTOL`) near zero. Consequently every
/// algebraic law the checkers report for a floating-point operator is
/// *tolerance-approximate*: it holds up to rounding at this epsilon, not
/// exactly. Integer and boolean comparisons are always exact. Callers
/// needing a different epsilon use [`value_close_with`].
pub const FLOAT_RTOL: f64 = 1e-9;

/// Structural equality with a small tolerance on floats (the randomized
/// checkers must not fail on benign rounding). Uses [`FLOAT_RTOL`]; see
/// its docs for the exact comparison semantics.
pub fn value_close(a: &Value, b: &Value) -> bool {
    value_close_with(a, b, FLOAT_RTOL)
}

/// [`value_close`] with an explicit relative tolerance for floats.
pub fn value_close_with(a: &Value, b: &Value, rtol: f64) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= rtol * scale
        }
        (Value::Tuple(xs), Value::Tuple(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(x, y)| value_close_with(x, y, rtol))
        }
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(x, y)| value_close_with(x, y, rtol))
        }
        _ => false,
    }
}

/// A concrete refutation of an algebraic law: the assignment of sample
/// values to the law's variables, and the two sides that disagree.
///
/// Produced by [`RequiredLaw::counterexample`] after greedy shrinking:
/// each variable is minimized (towards fewer distinct values, then
/// smaller magnitudes) while the violation is preserved, so the reported
/// witness is as readable as the sample pool allows.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated law, e.g. `"commutativity of sub"`.
    pub law: String,
    /// The shrunk variable assignment, in the law's variable order
    /// (`a`, `b`, `c`).
    pub values: Vec<Value>,
    /// The equation instance that fails, e.g. `"a⊕b = b⊕a"`.
    pub equation: String,
    /// Left-hand side under the assignment.
    pub left: Value,
    /// Right-hand side under the assignment.
    pub right: Value,
}

impl Counterexample {
    /// Number of distinct values in the assignment (shrinking drives this
    /// down; a law over three variables needs at most three).
    pub fn distinct_values(&self) -> usize {
        let mut seen: Vec<String> = self.values.iter().map(|v| format!("{v:?}")).collect();
        seen.sort();
        seen.dedup();
        seen.len()
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = ["a", "b", "c"];
        let binds: Vec<String> = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{}={}", names.get(i).copied().unwrap_or("?"), v))
            .collect();
        write!(
            f,
            "{} fails at {}: {} gives {} vs {}",
            self.law,
            binds.join(", "),
            self.equation,
            self.left,
            self.right
        )
    }
}

/// An algebraic side condition over concrete operators — the unit a
/// rewrite certificate is made of, and the unit the operator auditor
/// checks. Unlike the boolean `check_*` methods this type can *search*
/// for counterexamples, shrink them, and describe itself.
#[derive(Debug, Clone)]
pub enum RequiredLaw {
    /// `(a⊕b)⊕c = a⊕(b⊕c)`.
    Associative(BinOp),
    /// `a⊕b = b⊕a`.
    Commutative(BinOp),
    /// `a ⊗ (b⊕c) = (a⊗b) ⊕ (a⊗c)` and its mirrored form (the fused
    /// operators multiply on either side).
    DistributesOver(BinOp, BinOp),
}

impl RequiredLaw {
    /// Number of variables the law quantifies over.
    pub fn arity(&self) -> usize {
        match self {
            RequiredLaw::Commutative(_) => 2,
            RequiredLaw::Associative(_) | RequiredLaw::DistributesOver(..) => 3,
        }
    }

    /// Human-readable statement, e.g. `"mul distributes over add"`.
    pub fn describe(&self) -> String {
        match self {
            RequiredLaw::Associative(op) => format!("associativity of {}", op.name()),
            RequiredLaw::Commutative(op) => format!("commutativity of {}", op.name()),
            RequiredLaw::DistributesOver(ot, op) => {
                format!("{} distributes over {}", ot.name(), op.name())
            }
        }
    }

    /// Name(s) of the operator(s) the law constrains.
    pub fn op_names(&self) -> Vec<&str> {
        match self {
            RequiredLaw::Associative(op) | RequiredLaw::Commutative(op) => vec![op.name()],
            RequiredLaw::DistributesOver(ot, op) => vec![ot.name(), op.name()],
        }
    }

    /// The operator(s) the law constrains.
    pub fn ops(&self) -> Vec<&BinOp> {
        match self {
            RequiredLaw::Associative(op) | RequiredLaw::Commutative(op) => vec![op],
            RequiredLaw::DistributesOver(ot, op) => vec![ot, op],
        }
    }

    /// Check the law at one concrete assignment. Returns the first failing
    /// equation instance as `(equation, left, right)`, or `None` when the
    /// law holds there (within `rtol` on floats).
    pub fn violation(&self, vs: &[Value], rtol: f64) -> Option<(String, Value, Value)> {
        debug_assert_eq!(vs.len(), self.arity());
        let differ = |l: &Value, r: &Value| !value_close_with(l, r, rtol);
        match self {
            RequiredLaw::Associative(op) => {
                let (a, b, c) = (&vs[0], &vs[1], &vs[2]);
                let left = op.apply(&op.apply(a, b), c);
                let right = op.apply(a, &op.apply(b, c));
                differ(&left, &right).then(|| ("(a⊕b)⊕c = a⊕(b⊕c)".to_string(), left, right))
            }
            RequiredLaw::Commutative(op) => {
                let (a, b) = (&vs[0], &vs[1]);
                let left = op.apply(a, b);
                let right = op.apply(b, a);
                differ(&left, &right).then(|| ("a⊕b = b⊕a".to_string(), left, right))
            }
            RequiredLaw::DistributesOver(ot, op) => {
                let (a, b, c) = (&vs[0], &vs[1], &vs[2]);
                let l1 = ot.apply(a, &op.apply(b, c));
                let r1 = op.apply(&ot.apply(a, b), &ot.apply(a, c));
                if differ(&l1, &r1) {
                    return Some(("a⊗(b⊕c) = (a⊗b)⊕(a⊗c)".to_string(), l1, r1));
                }
                let l2 = ot.apply(&op.apply(b, c), a);
                let r2 = op.apply(&ot.apply(b, a), &ot.apply(c, a));
                differ(&l2, &r2).then(|| ("(b⊕c)⊗a = (b⊗a)⊕(c⊗a)".to_string(), l2, r2))
            }
        }
    }

    /// Does the law hold on every assignment drawn from `samples`?
    pub fn holds_on(&self, samples: &[Value]) -> bool {
        self.counterexample(samples).is_none()
    }

    /// Exhaustive search over all assignments from `samples` (default
    /// float tolerance); the first violation found is shrunk before being
    /// returned.
    pub fn counterexample(&self, samples: &[Value]) -> Option<Counterexample> {
        self.counterexample_with(samples, FLOAT_RTOL)
    }

    /// [`counterexample`](Self::counterexample) with an explicit float
    /// tolerance.
    pub fn counterexample_with(&self, samples: &[Value], rtol: f64) -> Option<Counterexample> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let arity = self.arity();
        let mut idx = vec![0usize; arity];
        loop {
            let vs: Vec<Value> = idx.iter().map(|&i| samples[i].clone()).collect();
            if self.violation(&vs, rtol).is_some() {
                return Some(self.shrink(samples, vs, rtol));
            }
            // Odometer over `arity` digits base `n`.
            let mut carry = true;
            for d in idx.iter_mut() {
                if carry {
                    *d += 1;
                    carry = *d == n;
                    if carry {
                        *d = 0;
                    }
                }
            }
            if carry {
                return None;
            }
        }
    }

    /// Greedily shrink a known-violating assignment: repeatedly replace a
    /// variable with a simpler sample value, or with another variable's
    /// value (reducing the distinct count), as long as the violation
    /// survives. Deterministic; terminates because every accepted step
    /// strictly decreases the `(distinct count, total magnitude)` score.
    pub fn shrink(&self, samples: &[Value], witness: Vec<Value>, rtol: f64) -> Counterexample {
        fn magnitude(v: &Value) -> f64 {
            match v {
                Value::Int(x) => x.abs() as f64 + if *x < 0 { 0.5 } else { 0.0 },
                Value::Float(x) => x.abs() + if *x < 0.0 { 0.5 } else { 0.0 },
                Value::Bool(b) => f64::from(*b),
                Value::Tuple(xs) => xs.iter().map(magnitude).sum(),
                Value::List(xs) => xs.iter().map(magnitude).sum(),
            }
        }
        fn score(vs: &[Value]) -> (usize, f64) {
            let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
            keys.sort();
            keys.dedup();
            (keys.len(), vs.iter().map(magnitude).sum())
        }
        fn better(a: (usize, f64), b: (usize, f64)) -> bool {
            a.0 < b.0 || (a.0 == b.0 && a.1 < b.1 - 1e-12)
        }

        debug_assert!(self.violation(&witness, rtol).is_some());
        let mut pool: Vec<Value> = samples.to_vec();
        pool.sort_by(|a, b| magnitude(a).total_cmp(&magnitude(b)));
        let mut best = witness;
        loop {
            let mut improved = false;
            // Move 1: replace one variable with a pool value or with
            // another variable's value (reduces the distinct count).
            'positions: for i in 0..best.len() {
                let mut candidates: Vec<Value> = pool.clone();
                candidates.extend(best.iter().cloned());
                for c in candidates {
                    if c == best[i] {
                        continue;
                    }
                    let mut trial = best.clone();
                    trial[i] = c;
                    if self.violation(&trial, rtol).is_some() && better(score(&trial), score(&best))
                    {
                        best = trial;
                        improved = true;
                        continue 'positions;
                    }
                }
            }
            // Move 2: substitute ALL occurrences of one value at once —
            // escapes local minima like (x,x,x) where any single-position
            // change would first increase the distinct count.
            for old in best.clone() {
                for c in &pool {
                    if *c == old {
                        continue;
                    }
                    let trial: Vec<Value> = best
                        .iter()
                        .map(|v| if *v == old { c.clone() } else { v.clone() })
                        .collect();
                    if self.violation(&trial, rtol).is_some() && better(score(&trial), score(&best))
                    {
                        best = trial;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let (equation, left, right) = self
            .violation(&best, rtol)
            .expect("shrinking preserves the violation");
        Counterexample {
            law: self.describe(),
            values: best,
            equation,
            left,
            right,
        }
    }
}

/// The standard operator library. All declared properties are verified by
/// the randomized checkers in this module's tests.
pub mod lib {
    use super::*;

    /// Integer addition — associative, commutative.
    pub fn add() -> BinOp {
        BinOp::new("add", |a, b| {
            Value::Int(a.as_int().wrapping_add(b.as_int()))
        })
        .commutative()
    }

    /// Integer multiplication — associative, commutative, distributes
    /// over [`add`] (and over itself trivially not).
    pub fn mul() -> BinOp {
        BinOp::new("mul", |a, b| {
            Value::Int(a.as_int().wrapping_mul(b.as_int()))
        })
        .commutative()
        .distributes_over_op("add")
    }

    /// Integer maximum — associative, commutative, idempotent. In the
    /// (max, min) lattice, each operation distributes over the other
    /// (`max(a, min(b,c)) = min(max(a,b), max(a,c))` — pure order theory,
    /// exact on all of `i64`), so `scan(max) ; reduce(min)` windows fuse
    /// by the distributivity rules. Found by the operator auditor
    /// (`collopt-analysis`): the declaration was originally missing.
    pub fn max() -> BinOp {
        BinOp::new("max", |a, b| Value::Int(a.as_int().max(b.as_int())))
            .commutative()
            .distributes_over_op("min")
    }

    /// Integer minimum — the lattice dual of [`max`]; distributes over it
    /// (see there).
    pub fn min() -> BinOp {
        BinOp::new("min", |a, b| Value::Int(a.as_int().min(b.as_int())))
            .commutative()
            .distributes_over_op("max")
    }

    /// Tropical addition: `add` distributing over `max` — the max-plus
    /// semiring used in dynamic-programming workloads
    /// (`a + max(b,c) = max(a+b, a+c)`).
    pub fn add_tropical() -> BinOp {
        BinOp::new("add", |a, b| {
            Value::Int(a.as_int().wrapping_add(b.as_int()))
        })
        .commutative()
        .distributes_over_op("max")
        .distributes_over_op("min")
    }

    /// Boolean AND — distributes over OR.
    pub fn and() -> BinOp {
        BinOp::new("and", |a, b| Value::Bool(a.as_bool() && b.as_bool()))
            .commutative()
            .distributes_over_op("or")
    }

    /// Boolean OR — distributes over AND.
    pub fn or() -> BinOp {
        BinOp::new("or", |a, b| Value::Bool(a.as_bool() || b.as_bool()))
            .commutative()
            .distributes_over_op("and")
    }

    /// Float addition (commutative; associativity up to rounding).
    pub fn fadd() -> BinOp {
        BinOp::new("fadd", |a, b| Value::Float(a.as_float() + b.as_float())).commutative()
    }

    /// Float multiplication — distributes over float addition.
    pub fn fmul() -> BinOp {
        BinOp::new("fmul", |a, b| Value::Float(a.as_float() * b.as_float()))
            .commutative()
            .distributes_over_op("fadd")
    }

    /// Modular addition (wrap at `modulus`) — commutative.
    pub fn add_mod(modulus: i64) -> BinOp {
        assert!(modulus > 0);
        BinOp::new(format!("add_mod{modulus}"), move |a, b| {
            Value::Int((a.as_int() + b.as_int()).rem_euclid(modulus))
        })
        .commutative()
    }

    /// MPI_MAXLOC: on pairs `(value, index)`, the larger value wins; ties
    /// go to the smaller index. Associative and commutative, the standard
    /// way to locate a global maximum's owner with one allreduce.
    pub fn maxloc() -> BinOp {
        BinOp::new("maxloc", |x, y| {
            let (v1, i1) = (x.proj(0).as_int(), x.proj(1).as_int());
            let (v2, i2) = (y.proj(0).as_int(), y.proj(1).as_int());
            if v1 > v2 || (v1 == v2 && i1 <= i2) {
                x.clone()
            } else {
                y.clone()
            }
        })
        .commutative()
        .with_cost(2.0)
        .with_width(2.0)
    }

    /// MPI_MINLOC: the smaller value wins; ties go to the smaller index.
    pub fn minloc() -> BinOp {
        BinOp::new("minloc", |x, y| {
            let (v1, i1) = (x.proj(0).as_int(), x.proj(1).as_int());
            let (v2, i2) = (y.proj(0).as_int(), y.proj(1).as_int());
            if v1 < v2 || (v1 == v2 && i1 <= i2) {
                x.clone()
            } else {
                y.clone()
            }
        })
        .commutative()
        .with_cost(2.0)
        .with_width(2.0)
    }

    /// Greatest common divisor — associative, commutative, idempotent-ish
    /// (gcd(x,x) = x); a second non-semiring commutative operator for the
    /// rule tests.
    pub fn gcd() -> BinOp {
        fn g(a: i64, b: i64) -> i64 {
            let (mut a, mut b) = (a.abs(), b.abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        BinOp::new("gcd", |a, b| Value::Int(g(a.as_int(), b.as_int()))).commutative()
    }

    /// String-free non-commutative associative operator: 2×2 integer
    /// matrix multiplication over tuples `(a,b,c,d)`. Used by tests that
    /// must detect operand-ordering bugs.
    pub fn mat2mul() -> BinOp {
        BinOp::new("mat2mul", |x, y| {
            let (a, b, c, d) = (
                x.proj(0).as_int(),
                x.proj(1).as_int(),
                x.proj(2).as_int(),
                x.proj(3).as_int(),
            );
            let (e, f, g, h) = (
                y.proj(0).as_int(),
                y.proj(1).as_int(),
                y.proj(2).as_int(),
                y.proj(3).as_int(),
            );
            Value::Tuple(vec![
                Value::Int(a * e + b * g),
                Value::Int(a * f + b * h),
                Value::Int(c * e + d * g),
                Value::Int(c * f + d * h),
            ])
        })
        .with_cost(8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::lib::*;
    use super::*;

    fn int_samples() -> Vec<Value> {
        vec![
            Value::Int(-7),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(1),
            Value::Int(2),
            Value::Int(5),
            Value::Int(13),
        ]
    }

    fn bool_samples() -> Vec<Value> {
        vec![Value::Bool(false), Value::Bool(true)]
    }

    #[test]
    fn declared_properties_hold_for_int_ops() {
        let samples = int_samples();
        for op in [add(), mul(), max(), min()] {
            assert!(op.check_associative(&samples), "{} assoc", op.name());
            assert!(op.check_commutative(&samples), "{} comm", op.name());
        }
    }

    #[test]
    fn mul_distributes_over_add() {
        let samples = int_samples();
        let m = mul();
        let a = add();
        assert!(m.distributes_over(&a));
        assert!(m.check_distributes_over(&a, &samples));
        // add does NOT distribute over mul.
        assert!(!a.check_distributes_over(&m, &samples));
        assert!(!a.distributes_over(&m));
    }

    #[test]
    fn tropical_add_distributes_over_max_and_min() {
        let samples = int_samples();
        let t = add_tropical();
        assert!(t.check_distributes_over(&max(), &samples));
        assert!(t.check_distributes_over(&min(), &samples));
        assert!(t.distributes_over(&max()));
        assert!(t.distributes_over(&min()));
    }

    #[test]
    fn boolean_lattice_distributes_both_ways() {
        let samples = bool_samples();
        assert!(and().check_distributes_over(&or(), &samples));
        assert!(or().check_distributes_over(&and(), &samples));
    }

    #[test]
    fn mat2mul_is_associative_but_not_commutative() {
        let samples = vec![
            Value::Tuple(vec![1.into(), 2.into(), 3.into(), 4.into()]),
            Value::Tuple(vec![0.into(), 1.into(), 1.into(), 0.into()]),
            Value::Tuple(vec![2.into(), 0.into(), 0.into(), 2.into()]),
            Value::Tuple(vec![1.into(), 1.into(), 0.into(), 1.into()]),
        ];
        let m = mat2mul();
        assert!(m.check_associative(&samples));
        assert!(!m.check_commutative(&samples));
        assert!(!m.is_commutative());
    }

    #[test]
    fn maxloc_minloc_properties() {
        let samples: Vec<Value> = [(5i64, 0i64), (5, 2), (3, 1), (9, 3), (-2, 4)]
            .iter()
            .map(|&(v, i)| Value::Tuple(vec![Value::Int(v), Value::Int(i)]))
            .collect();
        for op in [maxloc(), minloc()] {
            assert!(op.check_associative(&samples), "{}", op.name());
            assert!(op.check_commutative(&samples), "{}", op.name());
        }
        // Ties break to the smaller index in both.
        let a = Value::Tuple(vec![Value::Int(5), Value::Int(2)]);
        let b = Value::Tuple(vec![Value::Int(5), Value::Int(0)]);
        assert_eq!(maxloc().apply(&a, &b).proj(1).as_int(), 0);
        assert_eq!(minloc().apply(&a, &b).proj(1).as_int(), 0);
    }

    #[test]
    fn gcd_is_a_commutative_monoid() {
        let samples = int_samples();
        let op = gcd();
        assert!(op.check_associative(&samples));
        assert!(op.check_commutative(&samples));
        assert_eq!(op.apply(&Value::Int(12), &Value::Int(18)), Value::Int(6));
        assert_eq!(op.apply(&Value::Int(0), &Value::Int(7)), Value::Int(7));
    }

    #[test]
    fn add_mod_wraps() {
        let op = add_mod(7);
        assert_eq!(op.apply(&Value::Int(5), &Value::Int(4)), Value::Int(2));
        assert!(op.check_associative(&int_samples()));
        assert!(op.check_commutative(&int_samples()));
    }

    #[test]
    fn apply_lifts_over_blocks() {
        let op = add();
        let a = Value::int_list([1, 2, 3]);
        let b = Value::int_list([10, 20, 30]);
        assert_eq!(op.apply(&a, &b), Value::int_list([11, 22, 33]));
    }

    #[test]
    fn float_ops_are_close_not_exact() {
        let samples = vec![Value::Float(0.1), Value::Float(2.5), Value::Float(-1.25)];
        assert!(fadd().check_associative(&samples));
        assert!(fmul().check_distributes_over(&fadd(), &samples));
    }

    #[test]
    fn value_close_tolerates_rounding() {
        assert!(value_close(&Value::Float(1.0), &Value::Float(1.0 + 1e-12)));
        assert!(!value_close(&Value::Float(1.0), &Value::Float(1.001)));
        assert!(!value_close(&Value::Int(1), &Value::Float(1.0)));
    }

    #[test]
    fn debug_shows_declarations() {
        let d = format!("{:?}", mul());
        assert!(d.contains("mul") && d.contains("add"));
    }

    #[test]
    fn counterexample_found_and_shrunk_for_subtraction() {
        let sub = BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int()));
        let samples = int_samples();
        let cex = RequiredLaw::Associative(sub.clone())
            .counterexample(&samples)
            .expect("sub is not associative");
        // Shrinking must land on a minimal witness: at most 2 distinct
        // values, all of magnitude <= 1 (e.g. (0,0,1) or (0,1,1)).
        assert!(cex.distinct_values() <= 2, "{cex}");
        for v in &cex.values {
            assert!(v.as_int().abs() <= 1, "{cex}");
        }
        // And the reported sides really disagree under re-evaluation.
        assert_ne!(cex.left, cex.right);
        let comm = RequiredLaw::Commutative(sub)
            .counterexample(&samples)
            .expect("sub does not commute");
        assert!(comm.distinct_values() <= 2, "{comm}");
        assert!(comm.to_string().contains("commutativity of sub"));
    }

    #[test]
    fn counterexample_absent_for_true_laws() {
        let samples = int_samples();
        assert!(RequiredLaw::Associative(add())
            .counterexample(&samples)
            .is_none());
        assert!(RequiredLaw::Commutative(mul())
            .counterexample(&samples)
            .is_none());
        assert!(RequiredLaw::DistributesOver(mul(), add())
            .counterexample(&samples)
            .is_none());
    }

    #[test]
    fn false_distributivity_yields_shrunk_witness() {
        // mul does NOT distribute over max on negatives.
        let law = RequiredLaw::DistributesOver(mul(), max());
        let cex = law.counterexample(&int_samples()).expect("must fail");
        assert!(cex.distinct_values() <= 3, "{cex}");
        assert!(cex.law.contains("mul distributes over max"));
        // Witness survives re-checking at the reported assignment.
        assert!(law.violation(&cex.values, FLOAT_RTOL).is_some());
    }

    #[test]
    fn value_close_with_respects_custom_tolerance() {
        let a = Value::Float(1.0);
        let b = Value::Float(1.0 + 1e-6);
        assert!(!value_close(&a, &b));
        assert!(value_close_with(&a, &b, 1e-5));
        // The default tolerance is the documented constant.
        assert!(value_close_with(
            &Value::Float(1.0),
            &Value::Float(1.0 + 0.5 * FLOAT_RTOL),
            FLOAT_RTOL
        ));
    }

    #[test]
    fn law_metadata_is_consistent() {
        let law = RequiredLaw::DistributesOver(mul(), add());
        assert_eq!(law.arity(), 3);
        assert_eq!(law.op_names(), vec!["mul", "add"]);
        assert_eq!(RequiredLaw::Commutative(add()).arity(), 2);
        assert_eq!(
            RequiredLaw::Associative(add()).describe(),
            "associativity of add"
        );
    }
}
