//! Base operators and their algebraic properties.
//!
//! The side conditions of the optimization rules are algebraic:
//! associativity (every collective needs it), commutativity (SR-Reduction,
//! SS-Scan, BSS-Comcast, BSR-Local), and distributivity of one operator
//! over another (the `2`-rules: SR2, SS2, BSS2, BSR2). A [`BinOp`] bundles
//! the combine function with *declared* properties; the declarations are
//! what the rewrite engine trusts, and [`BinOp::check_associative`] /
//! [`check_commutative`](BinOp::check_commutative) /
//! [`check_distributes_over`](BinOp::check_distributes_over) give
//! randomized verification used by the test-suite (and available to users
//! who declare properties of their own operators).

use std::sync::Arc;

use crate::value::Value;

/// A binary function over [`Value`]s.
pub type ValueFn2 = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;

/// A binary base operator with declared algebraic properties and a
/// declared cost (base operations per block word per application).
#[derive(Clone)]
pub struct BinOp {
    name: String,
    f: ValueFn2,
    associative: bool,
    commutative: bool,
    distributes_over: Vec<String>,
    ops_per_word: f64,
    width: f64,
}

impl BinOp {
    /// A new operator. `associative` must hold for the operator to be used
    /// in any collective; it is asserted here as documentation of intent
    /// and verified by the randomized checkers in tests.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        BinOp {
            name: name.into(),
            f: Arc::new(f),
            associative: true,
            commutative: false,
            distributes_over: Vec::new(),
            ops_per_word: 1.0,
            width: 1.0,
        }
    }

    /// Declare the operator commutative.
    pub fn commutative(mut self) -> Self {
        self.commutative = true;
        self
    }

    /// Declare that `self` distributes over the operator named `other`:
    /// `a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)`.
    pub fn distributes_over_op(mut self, other: &str) -> Self {
        self.distributes_over.push(other.to_string());
        self
    }

    /// Override the per-word cost (default 1).
    pub fn with_cost(mut self, ops_per_word: f64) -> Self {
        assert!(ops_per_word >= 0.0);
        self.ops_per_word = ops_per_word;
        self
    }

    /// Mark the operator as non-associative (only used by fused operators
    /// that must never be fed to a standard collective).
    pub fn non_associative(mut self) -> Self {
        self.associative = false;
        self
    }

    /// Declare the value width in machine words per block element
    /// (2 for operators on pairs, etc.; default 1). Used by the cost
    /// estimator to size messages.
    pub fn with_width(mut self, width: f64) -> Self {
        assert!(width >= 1.0);
        self.width = width;
        self
    }

    /// Declared width in words per block element.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Operator name (identity for property lookups).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Is the operator declared associative?
    pub fn is_associative(&self) -> bool {
        self.associative
    }

    /// Is the operator declared commutative?
    pub fn is_commutative(&self) -> bool {
        self.commutative
    }

    /// Does `self` distribute over `other` (by declaration)?
    pub fn distributes_over(&self, other: &BinOp) -> bool {
        self.distributes_over.iter().any(|n| n == other.name())
    }

    /// Declared cost in base operations per block word.
    pub fn ops_per_word(&self) -> f64 {
        self.ops_per_word
    }

    /// Apply to scalars or tuples directly; lifts elementwise over
    /// [`Value::List`] blocks.
    pub fn apply(&self, a: &Value, b: &Value) -> Value {
        let f = &self.f;
        a.zip_block(b, &|x, y| f(x, y))
    }

    /// The raw scalar function (no block lifting).
    pub fn raw(&self) -> ValueFn2 {
        self.f.clone()
    }

    /// Randomized associativity check over the given sample values:
    /// verifies `(a⊕b)⊕c = a⊕(b⊕c)` for all triples.
    pub fn check_associative(&self, samples: &[Value]) -> bool {
        for a in samples {
            for b in samples {
                for c in samples {
                    let left = self.apply(&self.apply(a, b), c);
                    let right = self.apply(a, &self.apply(b, c));
                    if !value_close(&left, &right) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Randomized commutativity check: `a⊕b = b⊕a` for all pairs.
    pub fn check_commutative(&self, samples: &[Value]) -> bool {
        for a in samples {
            for b in samples {
                if !value_close(&self.apply(a, b), &self.apply(b, a)) {
                    return false;
                }
            }
        }
        true
    }

    /// Randomized distributivity check:
    /// `a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)` and the right-handed law
    /// `(b ⊕ c) ⊗ a = (b ⊗ a) ⊕ (c ⊗ a)` for all triples. The rules need
    /// both orientations (the fused operators multiply on either side).
    pub fn check_distributes_over(&self, other: &BinOp, samples: &[Value]) -> bool {
        for a in samples {
            for b in samples {
                for c in samples {
                    let l1 = self.apply(a, &other.apply(b, c));
                    let r1 = other.apply(&self.apply(a, b), &self.apply(a, c));
                    let l2 = self.apply(&other.apply(b, c), a);
                    let r2 = other.apply(&self.apply(b, a), &self.apply(c, a));
                    if !value_close(&l1, &r1) || !value_close(&l2, &r2) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl std::fmt::Debug for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinOp")
            .field("name", &self.name)
            .field("associative", &self.associative)
            .field("commutative", &self.commutative)
            .field("distributes_over", &self.distributes_over)
            .field("ops_per_word", &self.ops_per_word)
            .finish()
    }
}

/// Structural equality with a small tolerance on floats (the randomized
/// checkers must not fail on benign rounding).
pub fn value_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        (Value::Tuple(xs), Value::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| value_close(x, y))
        }
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| value_close(x, y))
        }
        _ => false,
    }
}

/// The standard operator library. All declared properties are verified by
/// the randomized checkers in this module's tests.
pub mod lib {
    use super::*;

    /// Integer addition — associative, commutative.
    pub fn add() -> BinOp {
        BinOp::new("add", |a, b| {
            Value::Int(a.as_int().wrapping_add(b.as_int()))
        })
        .commutative()
    }

    /// Integer multiplication — associative, commutative, distributes
    /// over [`add`] (and over itself trivially not).
    pub fn mul() -> BinOp {
        BinOp::new("mul", |a, b| {
            Value::Int(a.as_int().wrapping_mul(b.as_int()))
        })
        .commutative()
        .distributes_over_op("add")
    }

    /// Integer maximum — associative, commutative, idempotent.
    pub fn max() -> BinOp {
        BinOp::new("max", |a, b| Value::Int(a.as_int().max(b.as_int()))).commutative()
    }

    /// Integer minimum.
    pub fn min() -> BinOp {
        BinOp::new("min", |a, b| Value::Int(a.as_int().min(b.as_int()))).commutative()
    }

    /// Tropical addition: `add` distributing over `max` — the max-plus
    /// semiring used in dynamic-programming workloads
    /// (`a + max(b,c) = max(a+b, a+c)`).
    pub fn add_tropical() -> BinOp {
        BinOp::new("add", |a, b| {
            Value::Int(a.as_int().wrapping_add(b.as_int()))
        })
        .commutative()
        .distributes_over_op("max")
        .distributes_over_op("min")
    }

    /// Boolean AND — distributes over OR.
    pub fn and() -> BinOp {
        BinOp::new("and", |a, b| Value::Bool(a.as_bool() && b.as_bool()))
            .commutative()
            .distributes_over_op("or")
    }

    /// Boolean OR — distributes over AND.
    pub fn or() -> BinOp {
        BinOp::new("or", |a, b| Value::Bool(a.as_bool() || b.as_bool()))
            .commutative()
            .distributes_over_op("and")
    }

    /// Float addition (commutative; associativity up to rounding).
    pub fn fadd() -> BinOp {
        BinOp::new("fadd", |a, b| Value::Float(a.as_float() + b.as_float())).commutative()
    }

    /// Float multiplication — distributes over float addition.
    pub fn fmul() -> BinOp {
        BinOp::new("fmul", |a, b| Value::Float(a.as_float() * b.as_float()))
            .commutative()
            .distributes_over_op("fadd")
    }

    /// Modular addition (wrap at `modulus`) — commutative.
    pub fn add_mod(modulus: i64) -> BinOp {
        assert!(modulus > 0);
        BinOp::new(format!("add_mod{modulus}"), move |a, b| {
            Value::Int((a.as_int() + b.as_int()).rem_euclid(modulus))
        })
        .commutative()
    }

    /// MPI_MAXLOC: on pairs `(value, index)`, the larger value wins; ties
    /// go to the smaller index. Associative and commutative, the standard
    /// way to locate a global maximum's owner with one allreduce.
    pub fn maxloc() -> BinOp {
        BinOp::new("maxloc", |x, y| {
            let (v1, i1) = (x.proj(0).as_int(), x.proj(1).as_int());
            let (v2, i2) = (y.proj(0).as_int(), y.proj(1).as_int());
            if v1 > v2 || (v1 == v2 && i1 <= i2) {
                x.clone()
            } else {
                y.clone()
            }
        })
        .commutative()
        .with_cost(2.0)
        .with_width(2.0)
    }

    /// MPI_MINLOC: the smaller value wins; ties go to the smaller index.
    pub fn minloc() -> BinOp {
        BinOp::new("minloc", |x, y| {
            let (v1, i1) = (x.proj(0).as_int(), x.proj(1).as_int());
            let (v2, i2) = (y.proj(0).as_int(), y.proj(1).as_int());
            if v1 < v2 || (v1 == v2 && i1 <= i2) {
                x.clone()
            } else {
                y.clone()
            }
        })
        .commutative()
        .with_cost(2.0)
        .with_width(2.0)
    }

    /// Greatest common divisor — associative, commutative, idempotent-ish
    /// (gcd(x,x) = x); a second non-semiring commutative operator for the
    /// rule tests.
    pub fn gcd() -> BinOp {
        fn g(a: i64, b: i64) -> i64 {
            let (mut a, mut b) = (a.abs(), b.abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        BinOp::new("gcd", |a, b| Value::Int(g(a.as_int(), b.as_int()))).commutative()
    }

    /// String-free non-commutative associative operator: 2×2 integer
    /// matrix multiplication over tuples `(a,b,c,d)`. Used by tests that
    /// must detect operand-ordering bugs.
    pub fn mat2mul() -> BinOp {
        BinOp::new("mat2mul", |x, y| {
            let (a, b, c, d) = (
                x.proj(0).as_int(),
                x.proj(1).as_int(),
                x.proj(2).as_int(),
                x.proj(3).as_int(),
            );
            let (e, f, g, h) = (
                y.proj(0).as_int(),
                y.proj(1).as_int(),
                y.proj(2).as_int(),
                y.proj(3).as_int(),
            );
            Value::Tuple(vec![
                Value::Int(a * e + b * g),
                Value::Int(a * f + b * h),
                Value::Int(c * e + d * g),
                Value::Int(c * f + d * h),
            ])
        })
        .with_cost(8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::lib::*;
    use super::*;

    fn int_samples() -> Vec<Value> {
        vec![
            Value::Int(-7),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(1),
            Value::Int(2),
            Value::Int(5),
            Value::Int(13),
        ]
    }

    fn bool_samples() -> Vec<Value> {
        vec![Value::Bool(false), Value::Bool(true)]
    }

    #[test]
    fn declared_properties_hold_for_int_ops() {
        let samples = int_samples();
        for op in [add(), mul(), max(), min()] {
            assert!(op.check_associative(&samples), "{} assoc", op.name());
            assert!(op.check_commutative(&samples), "{} comm", op.name());
        }
    }

    #[test]
    fn mul_distributes_over_add() {
        let samples = int_samples();
        let m = mul();
        let a = add();
        assert!(m.distributes_over(&a));
        assert!(m.check_distributes_over(&a, &samples));
        // add does NOT distribute over mul.
        assert!(!a.check_distributes_over(&m, &samples));
        assert!(!a.distributes_over(&m));
    }

    #[test]
    fn tropical_add_distributes_over_max_and_min() {
        let samples = int_samples();
        let t = add_tropical();
        assert!(t.check_distributes_over(&max(), &samples));
        assert!(t.check_distributes_over(&min(), &samples));
        assert!(t.distributes_over(&max()));
        assert!(t.distributes_over(&min()));
    }

    #[test]
    fn boolean_lattice_distributes_both_ways() {
        let samples = bool_samples();
        assert!(and().check_distributes_over(&or(), &samples));
        assert!(or().check_distributes_over(&and(), &samples));
    }

    #[test]
    fn mat2mul_is_associative_but_not_commutative() {
        let samples = vec![
            Value::Tuple(vec![1.into(), 2.into(), 3.into(), 4.into()]),
            Value::Tuple(vec![0.into(), 1.into(), 1.into(), 0.into()]),
            Value::Tuple(vec![2.into(), 0.into(), 0.into(), 2.into()]),
            Value::Tuple(vec![1.into(), 1.into(), 0.into(), 1.into()]),
        ];
        let m = mat2mul();
        assert!(m.check_associative(&samples));
        assert!(!m.check_commutative(&samples));
        assert!(!m.is_commutative());
    }

    #[test]
    fn maxloc_minloc_properties() {
        let samples: Vec<Value> = [(5i64, 0i64), (5, 2), (3, 1), (9, 3), (-2, 4)]
            .iter()
            .map(|&(v, i)| Value::Tuple(vec![Value::Int(v), Value::Int(i)]))
            .collect();
        for op in [maxloc(), minloc()] {
            assert!(op.check_associative(&samples), "{}", op.name());
            assert!(op.check_commutative(&samples), "{}", op.name());
        }
        // Ties break to the smaller index in both.
        let a = Value::Tuple(vec![Value::Int(5), Value::Int(2)]);
        let b = Value::Tuple(vec![Value::Int(5), Value::Int(0)]);
        assert_eq!(maxloc().apply(&a, &b).proj(1).as_int(), 0);
        assert_eq!(minloc().apply(&a, &b).proj(1).as_int(), 0);
    }

    #[test]
    fn gcd_is_a_commutative_monoid() {
        let samples = int_samples();
        let op = gcd();
        assert!(op.check_associative(&samples));
        assert!(op.check_commutative(&samples));
        assert_eq!(op.apply(&Value::Int(12), &Value::Int(18)), Value::Int(6));
        assert_eq!(op.apply(&Value::Int(0), &Value::Int(7)), Value::Int(7));
    }

    #[test]
    fn add_mod_wraps() {
        let op = add_mod(7);
        assert_eq!(op.apply(&Value::Int(5), &Value::Int(4)), Value::Int(2));
        assert!(op.check_associative(&int_samples()));
        assert!(op.check_commutative(&int_samples()));
    }

    #[test]
    fn apply_lifts_over_blocks() {
        let op = add();
        let a = Value::int_list([1, 2, 3]);
        let b = Value::int_list([10, 20, 30]);
        assert_eq!(op.apply(&a, &b), Value::int_list([11, 22, 33]));
    }

    #[test]
    fn float_ops_are_close_not_exact() {
        let samples = vec![Value::Float(0.1), Value::Float(2.5), Value::Float(-1.25)];
        assert!(fadd().check_associative(&samples));
        assert!(fmul().check_distributes_over(&fadd(), &samples));
    }

    #[test]
    fn value_close_tolerates_rounding() {
        assert!(value_close(&Value::Float(1.0), &Value::Float(1.0 + 1e-12)));
        assert!(!value_close(&Value::Float(1.0), &Value::Float(1.001)));
        assert!(!value_close(&Value::Int(1), &Value::Float(1.0)));
    }

    #[test]
    fn debug_shows_declarations() {
        let d = format!("{:?}", mul());
        assert!(d.contains("mul") && d.contains("add"));
    }
}
