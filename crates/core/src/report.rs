//! Human-readable optimization reports.
//!
//! [`optimization_report`] runs the rewrite engine on a program and
//! renders a Markdown document: the original and optimized pipelines, the
//! applied rules with their predicted savings, the enabling
//! transformations, and a per-stage cost table for both versions — the
//! artifact a performance engineer would attach to a code review.

use collopt_cost::MachineParams;
use collopt_machine::{ClockParams, FaultPlan, Json};

use crate::exec::{
    execute_faulted, execute_profiled, execute_traced_with, execute_with, ExecConfig,
};
use crate::rewrite::{program_cost, stage_cost, OptimizeResult, RewriteStep, Rewriter, Witness};
use crate::rules::enabling::Normalization;
use crate::term::Program;
use crate::value::Value;

/// Render a per-stage cost table for one program.
fn stage_table(prog: &Program, params: &MachineParams, m: f64) -> String {
    let mut out = String::from("| # | stage | cost |\n|---|-------|-----:|\n");
    for (i, stage) in prog.stages().iter().enumerate() {
        out.push_str(&format!(
            "| {} | `{}` | {:.0} |\n",
            i,
            stage.describe(),
            stage_cost(stage, params, m)
        ));
    }
    out.push_str(&format!(
        "| | **total** | **{:.0}** |\n",
        program_cost(prog, params, m)
    ));
    out
}

/// Optimize `prog` with the given rewriter and render a Markdown report
/// for the design point `(params, m)`.
pub fn optimization_report(
    prog: &Program,
    rewriter: &Rewriter,
    params: &MachineParams,
    m: f64,
) -> (OptimizeResult, String) {
    let result = rewriter.optimize(prog);
    let before = program_cost(prog, params, m);
    let after = program_cost(&result.program, params, m);

    let mut out = String::new();
    out.push_str("# Collective-operation optimization report\n\n");
    out.push_str(&format!(
        "Machine: `p = {}`, `ts = {}`, `tw = {}`; block size `m = {}`.\n\n",
        params.p, params.ts, params.tw, m
    ));
    out.push_str(&format!("## Original\n\n`{prog}`\n\n"));
    out.push_str(&stage_table(prog, params, m));

    out.push_str("\n## Rewrites\n\n");
    if result.steps.is_empty() {
        out.push_str("No optimization rule pays off on this machine.\n");
    }
    for step in &result.steps {
        match step.saving {
            Some(s) => out.push_str(&format!(
                "* **{}** at stage {} — predicted saving {:.0} time units\n",
                step.rule, step.at, s
            )),
            None => out.push_str(&format!("* **{}** at stage {}\n", step.rule, step.at)),
        }
        out.push_str(&format!(
            "  * certificate: {}\n",
            step.certificate.describe()
        ));
    }
    for rej in &result.rejections {
        out.push_str(&format!("* **refused** — {rej}\n"));
    }
    for n in &result.normalizations {
        out.push_str(&format!("* normalization: `{n:?}`\n"));
    }

    out.push_str(&format!("\n## Optimized\n\n`{}`\n\n", result.program));
    out.push_str(&stage_table(&result.program, params, m));
    if before > 0.0 {
        out.push_str(&format!(
            "\n**Total: {before:.0} → {after:.0} time units ({:+.1}%).**\n",
            100.0 * (after - before) / before
        ));
    }
    (result, out)
}

/// One side of the before/after pair in [`optimize_result_json`].
fn program_json(prog: &Program, params: &MachineParams, m: f64) -> Json {
    Json::Obj(vec![
        ("program".into(), Json::Str(prog.to_string())),
        ("cost".into(), Json::Num(program_cost(prog, params, m))),
        ("stages".into(), Json::Num(prog.len() as f64)),
        (
            "collectives".into(),
            Json::Num(prog.collective_count() as f64),
        ),
    ])
}

fn step_json(step: &RewriteStep) -> Json {
    let witness = match step.certificate.witness {
        Witness::Declared => Json::Obj(vec![("kind".into(), Json::Str("declared".into()))]),
        Witness::Checked { samples } => Json::Obj(vec![
            ("kind".into(), Json::Str("checked".into())),
            ("samples".into(), Json::Num(samples as f64)),
        ]),
    };
    let laws: Vec<Json> = step
        .certificate
        .laws
        .iter()
        .map(|l| Json::Str(l.describe()))
        .collect();
    Json::Obj(vec![
        ("rule".into(), Json::Str(step.rule.to_string())),
        ("at".into(), Json::Num(step.at as f64)),
        ("saving".into(), step.saving.map_or(Json::Null, Json::Num)),
        ("description".into(), Json::Str(step.description.clone())),
        ("rank0_only".into(), Json::Bool(step.rank0_only)),
        (
            "certificate".into(),
            Json::Obj(vec![
                ("laws".into(), Json::Arr(laws)),
                ("witness".into(), witness),
            ]),
        ),
    ])
}

fn normalization_json(n: &Normalization) -> Json {
    match n {
        Normalization::MapFuse { at, label } => Json::Obj(vec![
            ("kind".into(), Json::Str("map-fuse".into())),
            ("at".into(), Json::Num(*at as f64)),
            ("label".into(), Json::Str(label.clone())),
        ]),
        Normalization::BcastMapCommute { at, label } => Json::Obj(vec![
            ("kind".into(), Json::Str("bcast-map-commute".into())),
            ("at".into(), Json::Num(*at as f64)),
            ("label".into(), Json::Str(label.clone())),
        ]),
        Normalization::GatherScatterElim { at } => Json::Obj(vec![
            ("kind".into(), Json::Str("gather-scatter-elim".into())),
            ("at".into(), Json::Num(*at as f64)),
        ]),
    }
}

/// Serialize an optimization run through the shared hand-rolled
/// [`Json`] document model — the one machine-readable rendering of an
/// [`OptimizeResult`], used by `collopt --json`, the serve front end,
/// and the golden-pinned schema test. Byte-stable: the same
/// `(prog, result, params, m)` always renders the same string via
/// [`Json::render`] (object order is fixed, numbers use Rust's
/// shortest-roundtrip `f64` formatting).
///
/// `prog` is the program the rewriter was handed (for the serve path,
/// the *canonicalized* pipeline, so responses are independent of the
/// request's surface spelling).
pub fn optimize_result_json(
    prog: &Program,
    result: &OptimizeResult,
    params: &MachineParams,
    m: f64,
) -> Json {
    let before = program_cost(prog, params, m);
    let after = program_cost(&result.program, params, m);
    let percent = if before > 0.0 {
        100.0 * (before - after) / before
    } else {
        0.0
    };
    let rejections: Vec<Json> = result
        .rejections
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(r.rule.to_string())),
                ("at".into(), Json::Num(r.at as f64)),
                ("law".into(), Json::Str(r.law.clone())),
                (
                    "counterexample".into(),
                    Json::Str(r.counterexample.to_string()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::Num(1.0)),
        (
            "machine".into(),
            Json::Obj(vec![
                ("p".into(), Json::Num(params.p as f64)),
                ("ts".into(), Json::Num(params.ts)),
                ("tw".into(), Json::Num(params.tw)),
                ("m".into(), Json::Num(m)),
            ]),
        ),
        ("original".into(), program_json(prog, params, m)),
        ("optimized".into(), program_json(&result.program, params, m)),
        (
            "cost".into(),
            Json::Obj(vec![
                ("before".into(), Json::Num(before)),
                ("after".into(), Json::Num(after)),
                ("saving".into(), Json::Num(before - after)),
                ("percent".into(), Json::Num(percent)),
            ]),
        ),
        (
            "steps".into(),
            Json::Arr(result.steps.iter().map(step_json).collect()),
        ),
        (
            "normalizations".into(),
            Json::Arr(
                result
                    .normalizations
                    .iter()
                    .map(normalization_json)
                    .collect(),
            ),
        ),
        ("rejections".into(), Json::Arr(rejections)),
    ])
}

/// Render a per-stage table with *measured* simulated times next to the
/// analytic predictions, by actually running the program on the machine.
pub fn measured_stage_table(prog: &Program, inputs: &[Value], params: &MachineParams) -> String {
    let m = inputs[0].block_len() as f64;
    let clock = ClockParams::new(params.ts, params.tw);
    let (outcome, finish) = execute_profiled(prog, inputs, clock);
    let mut out = String::from(
        "| # | stage | predicted | measured |
|---|-------|----------:|---------:|
",
    );
    let mut prev = 0.0;
    for (i, (stage, &t)) in prog.stages().iter().zip(&finish).enumerate() {
        out.push_str(&format!(
            "| {} | `{}` | {:.0} | {:.0} |
",
            i,
            stage.describe(),
            stage_cost(stage, params, m),
            t - prev
        ));
        prev = t;
    }
    out.push_str(&format!(
        "| | **total** | **{:.0}** | **{:.0}** |
",
        program_cost(prog, params, m),
        outcome.makespan
    ));
    out
}

/// Run `prog` with per-stage profiling and render where the time went:
/// the stage/rank busy–idle tables of
/// [`collopt_machine::ProfileReport`] plus a one-line summary of the
/// critical path — the exact chain of messages and computation steps the
/// makespan is attributable to.
pub fn profile_section(prog: &Program, inputs: &[Value], clock: ClockParams) -> String {
    profile_section_with(prog, inputs, clock, ExecConfig::default())
}

/// [`profile_section`] with explicit [`ExecConfig`] options — in
/// particular [`ExecConfig::engine`], which lets the `collopt` CLI pin
/// the run to a named engine (profiling is always enabled here).
pub fn profile_section_with(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    config: ExecConfig,
) -> String {
    let run = execute_traced_with(
        prog,
        inputs,
        clock,
        ExecConfig {
            profile: true,
            ..config
        },
    );
    let mut out = String::from("```text\n");
    out.push_str(&run.profile_report().render());
    out.push_str("```\n");
    match run.critical_path() {
        Ok(path) => out.push_str(&format!(
            "Critical path: {:.1} time units over {} steps \
             ({} messages, {} ranks; compute {:.1}, transfer {:.1}).\n",
            path.length(),
            path.steps.len(),
            path.messages(),
            path.ranks_touched(),
            path.compute_time(),
            path.comm_time(),
        )),
        Err(e) => out.push_str(&format!("Critical path: unavailable ({e}).\n")),
    }
    out
}

/// Run `prog` twice — clean and under `plan` — and render how gracefully
/// it degrades: makespan overhead, retry accounting, and whether the
/// results survived bit-identically. A failing run (crash, exhausted
/// retries) renders the error instead, with the plan's reproducible spec
/// string either way.
pub fn degradation_section(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    plan: &FaultPlan,
) -> String {
    degradation_section_with(prog, inputs, clock, ExecConfig::default(), plan)
}

/// [`degradation_section`] with explicit [`ExecConfig`] options; both
/// the clean baseline and the faulted run execute under the same config
/// (same engine, same adaptive lowerings), so the comparison isolates
/// the fault plan.
pub fn degradation_section_with(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    config: ExecConfig,
    plan: &FaultPlan,
) -> String {
    let clean = execute_with(prog, inputs, clock, config);
    let mut out = format!("fault plan : {}\n", plan.describe());
    match execute_faulted(prog, inputs, clock, config, plan) {
        Ok(faulted) => {
            let overhead = if clean.makespan > 0.0 {
                100.0 * (faulted.makespan - clean.makespan) / clean.makespan
            } else {
                0.0
            };
            out.push_str(&format!(
                "makespan   : {:.0} -> {:.0} time units ({overhead:+.1}%)\n",
                clean.makespan, faulted.makespan
            ));
            out.push_str(&format!(
                "retries    : {} failed attempts, {:.0} time units lost\n",
                faulted.total_retries, faulted.total_retry_time
            ));
            out.push_str(if faulted.outputs == clean.outputs {
                "results    : bit-identical to the fault-free run\n"
            } else {
                "results    : DIFFER from the fault-free run (fault model violation!)\n"
            });
        }
        Err(e) => {
            out.push_str(&format!("run failed : {e}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::value::Value;

    fn example() -> Program {
        Program::new()
            .map("f", 1.0, |v| v.clone())
            .scan(lib::mul())
            .reduce(lib::add())
            .map("g", 1.0, |v| Value::Int(v.as_int()))
            .bcast()
    }

    #[test]
    fn report_contains_both_pipelines_and_savings() {
        let params = MachineParams::parsytec_like(64);
        let (result, report) = optimization_report(
            &example(),
            &Rewriter::cost_guided(params, 8.0),
            &params,
            8.0,
        );
        assert_eq!(result.steps.len(), 1);
        assert!(report.contains("# Collective-operation optimization report"));
        assert!(report.contains("scan(mul) ; reduce(add)"));
        assert!(report.contains("SR2-Reduction"));
        assert!(report.contains("op_sr2[mul,add]"));
        assert!(report.contains("**total**"));
        assert!(report.contains('%'));
    }

    #[test]
    fn report_for_unoptimizable_program_says_so() {
        let params = MachineParams::low_latency(64);
        // SS-Scan at huge m on a fast network: no rule fires.
        let prog = Program::new().scan(lib::add()).scan(lib::add());
        let (result, report) =
            optimization_report(&prog, &Rewriter::cost_guided(params, 1e6), &params, 1e6);
        assert!(result.steps.is_empty());
        assert!(report.contains("No optimization rule pays off"));
    }

    #[test]
    fn measured_table_contains_both_columns() {
        let params = MachineParams::new(8, 100.0, 2.0);
        let prog = Program::new().scan(lib::add()).reduce(lib::add());
        let inputs: Vec<Value> = (0..8).map(|_| Value::int_list([1, 2, 3, 4])).collect();
        let table = measured_stage_table(&prog, &inputs, &params);
        assert!(table.contains("predicted"));
        assert!(table.contains("measured"));
        // On a power-of-two machine the two total columns agree exactly,
        // so the rendered strings coincide.
        let total_line = table.lines().last().unwrap();
        let nums: Vec<&str> = total_line
            .split("**")
            .filter(|s| s.trim().chars().next().is_some_and(|c| c.is_ascii_digit()))
            .collect();
        assert_eq!(nums.len(), 2);
        assert_eq!(nums[0], nums[1], "{table}");
    }

    #[test]
    fn profile_section_names_every_stage_and_the_critical_path() {
        let prog = Program::new().scan(lib::add()).reduce(lib::add());
        let inputs: Vec<Value> = (0..8).map(|_| Value::int_list([1, 2, 3, 4])).collect();
        let section = profile_section(&prog, &inputs, ClockParams::new(100.0, 2.0));
        assert!(section.contains("scan(add)"));
        assert!(section.contains("reduce(add)"));
        assert!(section.contains("Critical path:"));
        assert!(!section.contains("unavailable"));
    }

    #[test]
    fn degradation_section_reports_overhead_and_identical_results() {
        let prog = Program::new().scan(lib::add()).reduce(lib::add());
        let inputs: Vec<Value> = (0..8).map(|_| Value::int_list([1, 2, 3, 4])).collect();
        let clock = ClockParams::new(100.0, 2.0);

        // A pure-delay plan: results must survive bit-identically.
        let plan = FaultPlan::new(11)
            .with_straggler(2, 3.0)
            .with_slow_link(0, 1, 2.0, 50.0);
        let section = degradation_section(&prog, &inputs, clock, &plan);
        assert!(section.contains("fault plan : seed=11"));
        assert!(section.contains("bit-identical"));
        assert!(section.contains('%'));
        assert!(!section.contains("DIFFER"), "{section}");

        // A crash plan: the section renders the failure instead of hanging.
        let crash = FaultPlan::new(11).with_crash(3, 0);
        let section = degradation_section(&prog, &inputs, clock, &crash);
        assert!(section.contains("run failed"), "{section}");
        assert!(section.contains('3'), "{section}");
    }

    #[test]
    fn optimize_result_json_is_byte_stable_and_complete() {
        let params = MachineParams::parsytec_like(64);
        let prog = example();
        let result = Rewriter::cost_guided(params, 8.0).optimize_optimal(&prog, &params, 8.0);
        let a = optimize_result_json(&prog, &result, &params, 8.0).render();
        let b = optimize_result_json(&prog, &result, &params, 8.0).render();
        assert_eq!(a, b);
        // The document round-trips through the strict parser and carries
        // every section of the result.
        let doc = collopt_machine::Json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(
            doc.get("machine")
                .and_then(|m| m.get("p"))
                .and_then(|p| p.as_f64()),
            Some(64.0)
        );
        let steps = doc.get("steps").and_then(|s| s.as_array()).unwrap();
        assert_eq!(steps.len(), result.steps.len());
        assert!(!steps.is_empty());
        let step0 = &steps[0];
        assert!(step0.get("certificate").is_some());
        let before = doc
            .get("cost")
            .and_then(|c| c.get("before"))
            .and_then(|x| x.as_f64())
            .unwrap();
        let after = doc
            .get("cost")
            .and_then(|c| c.get("after"))
            .and_then(|x| x.as_f64())
            .unwrap();
        assert!(after < before);
        assert_eq!(
            doc.get("optimized")
                .and_then(|o| o.get("program"))
                .and_then(|p| p.as_str()),
            Some(result.program.to_string().as_str())
        );
    }

    #[test]
    fn stage_costs_in_report_sum_to_total() {
        let params = MachineParams::new(16, 100.0, 2.0);
        let prog = example();
        let table = stage_table(&prog, &params, 4.0);
        // The table lists every stage plus the total row.
        assert_eq!(table.lines().count(), 2 + prog.len() + 1);
    }
}
