//! The dynamic value domain of the rewrite layer.
//!
//! Program terms transform *distributed lists* whose elements change type
//! as auxiliary variables are introduced — `map pair` turns a block of
//! numbers into a block of pairs, `map π1` projects back (Section 2.3).
//! A dynamic [`Value`] keeps the rewrite engine simple; the collectives
//! layer underneath stays statically generic.
//!
//! A block of `m` words is a [`Value::List`] of `m` scalars; the auxiliary
//! tuples are [`Value::Tuple`]s. Tupling and projection distribute over
//! blocks: `pair` of a list is a list of pairs, matching the paper's
//! convention that the base operator acts elementwise on blocks.
//!
//! List blocks are `Arc`-backed: cloning a [`Value`] — which every send,
//! broadcast fan-out and input distribution does — bumps a reference
//! count instead of deep-copying `m` elements. Blocks are immutable once
//! built, so sharing is safe; the rare consumer that needs ownership
//! (e.g. [`Splittable::concat`]) unwraps the `Arc`, copying only when the
//! block is genuinely shared.

use std::fmt;
use std::sync::Arc;

use collopt_collectives::Splittable;

/// A dynamic value: scalars, tuples (the auxiliary variables of
/// Section 2.3) and lists (blocks of `m` words).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A signed integer scalar.
    Int(i64),
    /// A floating-point scalar.
    Float(f64),
    /// A boolean scalar.
    Bool(bool),
    /// An auxiliary tuple (pair, triple, quadruple, …).
    Tuple(Vec<Value>),
    /// A block of values (one processor's `m`-word block), shared on
    /// clone. Construct via [`Value::list`].
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Shorthand for an integer scalar.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Shorthand for a float scalar.
    pub fn float(v: f64) -> Value {
        Value::Float(v)
    }

    /// Build a list block from its elements.
    pub fn list(vs: Vec<Value>) -> Value {
        Value::List(Arc::new(vs))
    }

    /// Build a list block from integers.
    pub fn int_list(vs: impl IntoIterator<Item = i64>) -> Value {
        Value::list(vs.into_iter().map(Value::Int).collect())
    }

    /// Build a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(vec![a, b])
    }

    /// Expect an integer scalar.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other}"),
        }
    }

    /// Expect a float scalar.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected Float, got {other}"),
        }
    }

    /// Expect a bool scalar.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool, got {other}"),
        }
    }

    /// Expect a tuple and borrow its fields.
    pub fn as_tuple(&self) -> &[Value] {
        match self {
            Value::Tuple(fs) => fs,
            other => panic!("expected Tuple, got {other}"),
        }
    }

    /// Expect a list and borrow its elements.
    pub fn as_list(&self) -> &[Value] {
        match self {
            Value::List(vs) => vs,
            other => panic!("expected List, got {other}"),
        }
    }

    /// Tuple projection `π_i` (0-based). Panics on non-tuples.
    pub fn proj(&self, i: usize) -> Value {
        self.as_tuple()[i].clone()
    }

    /// Number of machine words this value occupies under the cost model:
    /// scalars are 1, tuples and lists are the sum of their parts.
    pub fn words(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Float(_) | Value::Bool(_) => 1,
            Value::Tuple(fs) => fs.iter().map(Value::words).sum(),
            Value::List(vs) => vs.iter().map(Value::words).sum(),
        }
    }

    /// Block length: `m` for a list, 1 for anything scalar-like. This is
    /// the `m` of the cost formulas.
    pub fn block_len(&self) -> usize {
        match self {
            Value::List(vs) => vs.len(),
            _ => 1,
        }
    }

    /// Map a scalar→scalar function over the block structure: applied
    /// directly to scalars/tuples, elementwise to lists. This is how the
    /// paper's elementwise base operators lift to `m`-word blocks.
    pub fn map_block(&self, f: &impl Fn(&Value) -> Value) -> Value {
        match self {
            Value::List(vs) => Value::list(vs.iter().map(f).collect()),
            v => f(v),
        }
    }

    /// Zip two equally-shaped blocks with a scalar⊗scalar→scalar function.
    pub fn zip_block(&self, other: &Value, f: &impl Fn(&Value, &Value) -> Value) -> Value {
        match (self, other) {
            (Value::List(a), Value::List(b)) => {
                assert_eq!(a.len(), b.len(), "blocks must have equal length");
                Value::list(a.iter().zip(b.iter()).map(|(x, y)| f(x, y)).collect())
            }
            (a, b) => f(a, b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Tuple(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, x) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Lets the segmenting collectives (the `collopt_collectives::reduce_scatter` module)
/// carve a [`Value::List`] block into per-rank segments and reassemble it.
/// Scalar-like values are indivisible: they only "split" into one part.
impl Splittable for Value {
    fn unit_len(&self) -> usize {
        self.block_len()
    }

    fn split_into(&self, parts: usize) -> Vec<Value> {
        match self {
            Value::List(vs) => vs.split_into(parts).into_iter().map(Value::list).collect(),
            other => {
                assert_eq!(parts, 1, "cannot segment a scalar-like value {other}");
                vec![other.clone()]
            }
        }
    }

    fn concat(parts: Vec<Value>) -> Value {
        if parts.len() == 1 && !matches!(parts[0], Value::List(_)) {
            // A scalar round-trips through its single "segment".
            return parts.into_iter().next().expect("one part");
        }
        Value::list(
            parts
                .into_iter()
                .flat_map(|p| match p {
                    // Unshared blocks are consumed in place; shared ones
                    // are copied (the other owners keep reading theirs).
                    Value::List(vs) => Arc::try_unwrap(vs).unwrap_or_else(|a| (*a).clone()),
                    other => panic!("cannot concatenate non-list segment {other}"),
                })
                .collect(),
        )
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(4).as_int(), 4);
        assert_eq!(Value::float(2.5).as_float(), 2.5);
        assert_eq!(Value::Int(3).as_float(), 3.0);
        assert!(Value::from(true).as_bool());
        let p = Value::pair(1.into(), 2.into());
        assert_eq!(p.proj(0), Value::Int(1));
        assert_eq!(p.proj(1), Value::Int(2));
    }

    #[test]
    fn words_counts_recursively() {
        assert_eq!(Value::int(1).words(), 1);
        assert_eq!(Value::pair(1.into(), 2.into()).words(), 2);
        let block = Value::int_list([1, 2, 3]);
        assert_eq!(block.words(), 3);
        let block_of_pairs = Value::list(vec![
            Value::pair(1.into(), 2.into()),
            Value::pair(3.into(), 4.into()),
        ]);
        assert_eq!(block_of_pairs.words(), 4);
        assert_eq!(block_of_pairs.block_len(), 2);
    }

    #[test]
    fn map_block_lifts_elementwise() {
        let double = |v: &Value| Value::Int(v.as_int() * 2);
        assert_eq!(Value::int(3).map_block(&double), Value::Int(6));
        assert_eq!(
            Value::int_list([1, 2]).map_block(&double),
            Value::int_list([2, 4])
        );
    }

    #[test]
    fn zip_block_lifts_elementwise() {
        let add = |a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int());
        assert_eq!(Value::int(3).zip_block(&Value::int(4), &add), Value::Int(7));
        assert_eq!(
            Value::int_list([1, 2]).zip_block(&Value::int_list([10, 20]), &add),
            Value::int_list([11, 22])
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn zip_block_rejects_mismatched_lengths() {
        let add = |a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int());
        Value::int_list([1]).zip_block(&Value::int_list([1, 2]), &add);
    }

    #[test]
    fn display_is_compact() {
        let v = Value::Tuple(vec![Value::Int(1), Value::int_list([2, 3])]);
        assert_eq!(v.to_string(), "(1,[2,3])");
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        Value::float(1.0).as_int();
    }

    #[test]
    fn list_blocks_split_and_concat_round_trip() {
        let block = Value::int_list([1, 2, 3, 4, 5]);
        let segs = block.split_into(3);
        assert_eq!(
            segs,
            vec![
                Value::int_list([1, 2]),
                Value::int_list([3, 4]),
                Value::int_list([5]),
            ]
        );
        assert_eq!(Value::concat(segs), block);
        assert_eq!(block.unit_len(), 5);
    }

    #[test]
    fn scalars_only_split_into_one_part() {
        let v = Value::Int(7);
        assert_eq!(v.unit_len(), 1);
        let segs = v.split_into(1);
        assert_eq!(Value::concat(segs), v);
    }

    #[test]
    #[should_panic(expected = "cannot segment")]
    fn scalars_refuse_real_splits() {
        Value::Int(7).split_into(2);
    }
}
