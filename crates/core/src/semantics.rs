//! Reference (sequential) semantics of program terms.
//!
//! [`eval_program`] interprets a [`Program`] directly on a plain vector of
//! per-processor values — the denotations (4)–(8) of the paper, plus the
//! definitions of the special collectives. This is the semantic ground
//! truth: the rewrite rules are *semantic equalities*, so an optimized
//! program must evaluate to the same distributed list as the original
//! (on the positions the paper defines — see the caveat on the Local
//! rules below), and the distributed executor must agree with this
//! evaluator on every program.
//!
//! **Undefined positions.** `bcast` ignores everything but the first
//! element; `reduce` leaves elements 2…n unchanged; the `iter` local
//! stages define only the first element (the paper writes `_` for the
//! rest). This evaluator makes the deterministic choice of *keeping the
//! incoming values* in those positions, which is also what the distributed
//! executor does, so the two stay comparable everywhere.

use collopt_machine::topology::{butterfly_partner, ceil_log2, BalancedTree};

use crate::adjust::{iter_balanced, repeat};
use crate::term::{Program, Stage};
use crate::value::Value;

/// Evaluate a whole program on an input distributed list.
pub fn eval_program(prog: &Program, input: &[Value]) -> Vec<Value> {
    assert!(
        !input.is_empty(),
        "a distributed list needs at least one element"
    );
    let mut xs = input.to_vec();
    for stage in prog.stages() {
        eval_stage(stage, &mut xs);
    }
    xs
}

/// Evaluate a single stage in place.
pub fn eval_stage(stage: &Stage, xs: &mut Vec<Value>) {
    let p = xs.len();
    match stage {
        Stage::Map { f, .. } => {
            for x in xs.iter_mut() {
                *x = f(x);
            }
        }
        Stage::MapIndexed { f, .. } => {
            for (i, x) in xs.iter_mut().enumerate() {
                *x = f(i, x);
            }
        }
        Stage::Bcast => {
            let v = xs[0].clone();
            for x in xs.iter_mut() {
                *x = v.clone();
            }
        }
        Stage::Scan(op) => {
            let mut acc = xs[0].clone();
            for x in xs.iter_mut().skip(1) {
                acc = op.apply(&acc, x);
                *x = acc.clone();
            }
        }
        Stage::Reduce(op) => {
            let mut acc = xs[0].clone();
            for x in xs.iter().skip(1) {
                acc = op.apply(&acc, x);
            }
            xs[0] = acc;
        }
        Stage::AllReduce(op) => {
            let mut acc = xs[0].clone();
            for x in xs.iter().skip(1) {
                acc = op.apply(&acc, x);
            }
            for x in xs.iter_mut() {
                *x = acc.clone();
            }
        }
        Stage::ReduceBalanced {
            combine, solo, all, ..
        } => {
            let tree = BalancedTree::new(p);
            let mut vals = xs.clone();
            for level in tree.schedule() {
                for step in level {
                    match step {
                        collopt_machine::topology::BalancedStep::Combine {
                            left_rep,
                            right_rep,
                            ..
                        } => {
                            vals[left_rep] = combine(&vals[left_rep], &vals[right_rep]);
                        }
                        collopt_machine::topology::BalancedStep::Unary { rep, .. } => {
                            vals[rep] = solo(&vals[rep]);
                        }
                    }
                }
            }
            if *all {
                for x in xs.iter_mut() {
                    *x = vals[0].clone();
                }
            } else {
                xs[0] = vals[0].clone();
            }
        }
        Stage::ScanBalanced { combine, solo, .. } => {
            let mut vals = xs.clone();
            for round in 0..ceil_log2(p) {
                let mut next = vals.clone();
                for r in 0..p {
                    match butterfly_partner(r, round, p) {
                        Some(partner) if r < partner => {
                            let (lo, hi) = combine(&vals[r], &vals[partner]);
                            next[r] = lo;
                            next[partner] = hi;
                        }
                        Some(_) => {} // handled by the lower partner
                        None => next[r] = solo(&vals[r]),
                    }
                }
                vals = next;
            }
            *xs = vals;
        }
        Stage::Comcast {
            e,
            o,
            inject,
            project,
            ..
        } => {
            // Both variants implement the same pattern; variant choice only
            // affects cost, not semantics.
            let rounds = ceil_log2(p);
            let seed = inject(&xs[0]);
            for (k, x) in xs.iter_mut().enumerate() {
                let state = repeat(&**e, &**o, k, rounds, seed.clone());
                *x = project(&state);
            }
        }
        Stage::Gather => {
            xs[0] = Value::list(xs.clone());
        }
        Stage::Scatter => {
            let list = xs[0].as_list().to_vec();
            assert_eq!(list.len(), p, "scatter needs one element per processor");
            *xs = list;
        }
        Stage::AllGather => {
            let all = Value::list(xs.clone());
            for x in xs.iter_mut() {
                *x = all.clone();
            }
        }
        Stage::IterLocal {
            combine, solo, all, ..
        } => {
            let (v, _, _) = iter_balanced(p, &xs[0], &**combine, &**solo);
            if *all {
                for x in xs.iter_mut() {
                    *x = v.clone();
                }
            } else {
                xs[0] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::term::Program;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn scan_semantics_eq7() {
        let p = Program::new().scan(lib::add());
        let out = eval_program(&p, &ints(&[1, 2, 3, 4]));
        assert_eq!(out, ints(&[1, 3, 6, 10]));
    }

    #[test]
    fn reduce_semantics_eq5_keeps_tail() {
        let p = Program::new().reduce(lib::add());
        let out = eval_program(&p, &ints(&[1, 2, 3, 4]));
        assert_eq!(out, ints(&[10, 2, 3, 4]));
    }

    #[test]
    fn allreduce_semantics_eq6() {
        let p = Program::new().allreduce(lib::mul());
        let out = eval_program(&p, &ints(&[1, 2, 3, 4]));
        assert_eq!(out, ints(&[24, 24, 24, 24]));
    }

    #[test]
    fn bcast_semantics_eq8() {
        let p = Program::new().bcast();
        let out = eval_program(&p, &ints(&[7, 1, 2]));
        assert_eq!(out, ints(&[7, 7, 7]));
    }

    #[test]
    fn example_program_of_section_2_runs() {
        // example = map f ; scan(⊗) ; reduce(⊕) ; map g ; bcast — with
        // f = (+1), ⊗ = mul, ⊕ = add, g = (*2).
        let p = Program::new()
            .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::mul())
            .reduce(lib::add())
            .map("g", 1.0, |v| Value::Int(v.as_int() * 2))
            .bcast();
        let out = eval_program(&p, &ints(&[0, 1, 2, 3]));
        // f: [1,2,3,4]; scan(mul): [1,2,6,24]; reduce(add): [33,2,6,24];
        // g: [66,4,12,48]; bcast: [66,66,66,66].
        assert_eq!(out, ints(&[66, 66, 66, 66]));
    }

    #[test]
    fn figure2_p1_equals_p2() {
        // P1 = allreduce(+); P2 = map pair; allreduce(op_new); map π1 with
        // op_new((a1,b1),(a2,b2)) = (a1+a2, b1*b2). Paper's input [1,2,3,4].
        let p1 = Program::new().allreduce(lib::add());
        let op_new = crate::op::BinOp::new("op_new", |x, y| {
            Value::Tuple(vec![
                Value::Int(x.proj(0).as_int() + y.proj(0).as_int()),
                Value::Int(x.proj(1).as_int() * y.proj(1).as_int()),
            ])
        })
        .with_cost(2.0);
        let p2 = Program::new()
            .map("pair", 0.0, crate::adjust::pair)
            .allreduce(op_new)
            .map("pi1", 0.0, crate::adjust::pi1);
        let input = ints(&[1, 2, 3, 4]);
        let out1 = eval_program(&p1, &input);
        let out2 = eval_program(&p2, &input);
        assert_eq!(out1, out2);
        assert_eq!(out1, ints(&[10, 10, 10, 10]));
    }

    #[test]
    fn map_indexed_sees_ranks() {
        let p = Program::new().map_indexed("idx", 0.0, |i, v| Value::Int(v.as_int() + i as i64));
        let out = eval_program(&p, &ints(&[10, 10, 10]));
        assert_eq!(out, ints(&[10, 11, 12]));
    }

    #[test]
    fn stages_work_on_blocks() {
        let p = Program::new().scan(lib::add());
        let input = vec![
            Value::int_list([1, 10]),
            Value::int_list([2, 20]),
            Value::int_list([3, 30]),
        ];
        let out = eval_program(&p, &input);
        assert_eq!(
            out,
            vec![
                Value::int_list([1, 10]),
                Value::int_list([3, 30]),
                Value::int_list([6, 60])
            ]
        );
    }

    #[test]
    fn singleton_machine_all_stages() {
        let p = Program::new()
            .bcast()
            .scan(lib::add())
            .reduce(lib::add())
            .allreduce(lib::add());
        let out = eval_program(&p, &ints(&[5]));
        assert_eq!(out, ints(&[5]));
    }
}
