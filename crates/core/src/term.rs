//! Program terms: the paper's functional framework (Section 2.2).
//!
//! A [`Program`] is a forward composition of [`Stage`]s, mirroring eq. (2):
//!
//! ```text
//! example = map f ; scan (⊗) ; reduce (⊕) ; map g ; bcast
//! ```
//!
//! The stage set contains the paper's source-language constructs (`map`,
//! `map#`, `bcast`, `scan`, `reduce`, `allreduce`) **and** the target
//! constructs produced by the optimization rules (`reduce_balanced`,
//! `scan_balanced`, comcast, local iteration), so a rewritten program is a
//! first-class program again: it can be evaluated, executed on the
//! machine, cost-estimated and printed.

use std::sync::Arc;

use crate::op::BinOp;
use crate::value::Value;

/// A unary local function over values.
pub type ValueFn = Arc<dyn Fn(&Value) -> Value + Send + Sync>;
/// A binary local function over values.
pub type ValueFn2 = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;
/// A rank-indexed local function (the paper's `map#`, eq. 13).
pub type IndexedFn = Arc<dyn Fn(usize, &Value) -> Value + Send + Sync>;
/// A paired combine producing new values for both butterfly partners.
pub type PairedFn = Arc<dyn Fn(&Value, &Value) -> (Value, Value) + Send + Sync>;

/// Which comcast implementation a [`Stage::Comcast`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComcastVariant {
    /// Broadcast then local `repeat` (Figure 6) — the fast version.
    BcastRepeat,
    /// Successive doubling (Section 3.4's cost-optimal alternative).
    CostOptimal,
}

/// One stage of a program.
#[derive(Clone)]
pub enum Stage {
    /// `map f` — a local computation on every processor (eq. 4).
    Map {
        /// The function, applied to the whole block value.
        f: ValueFn,
        /// Computation charge in base operations per block element.
        ops: f64,
        /// Display name.
        label: String,
    },
    /// `map# f` — local computation that also sees the processor number.
    MapIndexed {
        /// The function, given `(rank, block)`.
        f: IndexedFn,
        /// Charge per block element.
        ops: f64,
        /// Display name.
        label: String,
    },
    /// `bcast` (eq. 8), root = processor 0.
    Bcast,
    /// `scan (⊕)` (eq. 7).
    Scan(BinOp),
    /// `reduce (⊕)` to processor 0 (eq. 5).
    Reduce(BinOp),
    /// `allreduce (⊕)` (eq. 6).
    AllReduce(BinOp),
    /// `reduce_balanced` / `allreduce_balanced` with a (generally
    /// non-associative) operator following the virtual balanced tree —
    /// the target of rule SR-Reduction.
    ReduceBalanced {
        /// Binary combine (left argument covers the lower ranks).
        combine: ValueFn2,
        /// Unary variant for nodes with an empty left subtree.
        solo: ValueFn,
        /// `true` for the allreduce form.
        all: bool,
        /// Charge per element for one binary combine (4 for `op_sr`).
        ops_combine: f64,
        /// Charge per element for the unary variant.
        ops_solo: f64,
        /// Words on the wire per block element (2 for `op_sr` pairs).
        words_factor: u64,
        /// Display name.
        label: String,
    },
    /// `scan_balanced` with a paired operator — the target of rule SS-Scan.
    ScanBalanced {
        /// `combine(lower, upper) → (new_lower, new_upper)`.
        combine: PairedFn,
        /// Applied by ranks without a butterfly partner.
        solo: ValueFn,
        /// Charge per element on the lower partner (5 for `op_ss`).
        ops_lower: f64,
        /// Charge per element on the upper partner (8 for `op_ss`).
        ops_upper: f64,
        /// Charge per element for the solo variant.
        ops_solo: f64,
        /// Words on the wire per block element per direction
        /// (3 for `op_ss`).
        words_factor: u64,
        /// Display name.
        label: String,
    },
    /// The comcast pattern (Section 3.4) — the target of the *-Comcast
    /// rules: processor `k` ends with `project(repeat (e,o) k (inject b))`.
    Comcast {
        /// Digit-0 step.
        e: ValueFn,
        /// Digit-1 step.
        o: ValueFn,
        /// Pre-adjustment (`pair`/`triple`/`quadruple`).
        inject: ValueFn,
        /// Post-adjustment (`π1`).
        project: ValueFn,
        /// Charge per element for `e`.
        ops_e: f64,
        /// Charge per element for `o`.
        ops_o: f64,
        /// Auxiliary-tuple width in words per block element (for the
        /// cost-optimal variant's messages).
        words_factor: u64,
        /// Implementation choice.
        variant: ComcastVariant,
        /// Display name.
        label: String,
    },
    /// `gather` — every processor's value assembled into a [`Value::List`]
    /// on processor 0, in rank order (the other processors keep their
    /// values, mirroring `reduce`'s treatment of undefined positions).
    Gather,
    /// `scatter` — processor 0 holds a [`Value::List`] with one element
    /// per processor; element `i` is delivered to processor `i`.
    Scatter,
    /// `allgather` — every processor ends with the full rank-ordered
    /// [`Value::List`].
    AllGather,
    /// `iter` — a purely local iteration on processor 0 (Section 3.5), the
    /// target of the *-Local rules. Generalized from the paper's `log p`
    /// doublings to any `p` via the local balanced tree
    /// ([`crate::adjust::iter_balanced`]).
    IterLocal {
        /// Binary combine (doubling at complete nodes).
        combine: ValueFn2,
        /// Unary variant at incomplete nodes.
        solo: ValueFn,
        /// `true` appends a broadcast (CR-Alllocal).
        all: bool,
        /// Charge per element for one combine.
        ops_combine: f64,
        /// Charge per element for the solo variant.
        ops_solo: f64,
        /// Display name.
        label: String,
    },
}

impl Stage {
    /// A `map` stage from a plain closure.
    pub fn map(
        label: impl Into<String>,
        ops: f64,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> Stage {
        Stage::Map {
            f: Arc::new(f),
            ops,
            label: label.into(),
        }
    }

    /// A `map#` stage from a rank-indexed closure.
    pub fn map_indexed(
        label: impl Into<String>,
        ops: f64,
        f: impl Fn(usize, &Value) -> Value + Send + Sync + 'static,
    ) -> Stage {
        Stage::MapIndexed {
            f: Arc::new(f),
            ops,
            label: label.into(),
        }
    }

    /// Short human-readable form, used by [`Program`]'s `Display`.
    pub fn describe(&self) -> String {
        match self {
            Stage::Map { label, .. } => format!("map {label}"),
            Stage::MapIndexed { label, .. } => format!("map# {label}"),
            Stage::Bcast => "bcast".to_string(),
            Stage::Scan(op) => format!("scan({})", op.name()),
            Stage::Reduce(op) => format!("reduce({})", op.name()),
            Stage::AllReduce(op) => format!("allreduce({})", op.name()),
            Stage::ReduceBalanced { all, label, .. } => {
                if *all {
                    format!("allreduce_balanced({label})")
                } else {
                    format!("reduce_balanced({label})")
                }
            }
            Stage::Gather => "gather".to_string(),
            Stage::Scatter => "scatter".to_string(),
            Stage::AllGather => "allgather".to_string(),
            Stage::ScanBalanced { label, .. } => format!("scan_balanced({label})"),
            Stage::Comcast { label, variant, .. } => match variant {
                ComcastVariant::BcastRepeat => format!("bcast; map# {label}"),
                ComcastVariant::CostOptimal => format!("comcast({label})"),
            },
            Stage::IterLocal { all, label, .. } => {
                if *all {
                    format!("iter({label}); bcast")
                } else {
                    format!("iter({label})")
                }
            }
        }
    }

    /// Is this a collective stage (i.e. does it communicate)?
    pub fn is_collective(&self) -> bool {
        !matches!(
            self,
            Stage::Map { .. } | Stage::MapIndexed { .. } | Stage::IterLocal { all: false, .. }
        )
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A program: a forward composition of stages, `stage1 ; stage2 ; …`.
#[derive(Clone, Default)]
pub struct Program {
    stages: Vec<Stage>,
}

impl Program {
    /// The empty program (identity).
    pub fn new() -> Self {
        Program { stages: Vec::new() }
    }

    /// Append any stage.
    pub fn push(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Append `map f`.
    pub fn map(
        self,
        label: impl Into<String>,
        ops: f64,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        self.push(Stage::map(label, ops, f))
    }

    /// Append `map# f`.
    pub fn map_indexed(
        self,
        label: impl Into<String>,
        ops: f64,
        f: impl Fn(usize, &Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        self.push(Stage::map_indexed(label, ops, f))
    }

    /// Append `bcast`.
    pub fn bcast(self) -> Self {
        self.push(Stage::Bcast)
    }

    /// Append `scan (op)`.
    pub fn scan(self, op: BinOp) -> Self {
        assert!(op.is_associative(), "scan needs an associative operator");
        self.push(Stage::Scan(op))
    }

    /// Append `reduce (op)`.
    pub fn reduce(self, op: BinOp) -> Self {
        assert!(op.is_associative(), "reduce needs an associative operator");
        self.push(Stage::Reduce(op))
    }

    /// Append `allreduce (op)`.
    pub fn allreduce(self, op: BinOp) -> Self {
        assert!(
            op.is_associative(),
            "allreduce needs an associative operator"
        );
        self.push(Stage::AllReduce(op))
    }

    /// Append `gather`.
    pub fn gather(self) -> Self {
        self.push(Stage::Gather)
    }

    /// Append `scatter`.
    pub fn scatter(self) -> Self {
        self.push(Stage::Scatter)
    }

    /// Append `allgather`.
    pub fn allgather(self) -> Self {
        self.push(Stage::AllGather)
    }

    /// The stages in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of collective (communicating) stages — the quantity the
    /// optimization rules reduce.
    pub fn collective_count(&self) -> usize {
        self.stages.iter().filter(|s| s.is_collective()).count()
    }

    /// Replace stages `[at, at + consumed)` with `replacement`.
    pub fn splice(&self, at: usize, consumed: usize, replacement: Vec<Stage>) -> Program {
        assert!(at + consumed <= self.stages.len());
        let mut stages = Vec::with_capacity(self.stages.len() - consumed + replacement.len());
        stages.extend(self.stages[..at].iter().cloned());
        stages.extend(replacement);
        stages.extend(self.stages[at + consumed..].iter().cloned());
        Program { stages }
    }

    /// Sequential composition: `self ; next` (the paper's program
    /// composition that creates new optimization opportunities, Figure 1).
    pub fn then(mut self, next: Program) -> Program {
        self.stages.extend(next.stages);
        self
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.stages.is_empty() {
            return f.write_str("id");
        }
        let parts: Vec<String> = self.stages.iter().map(Stage::describe).collect();
        f.write_str(&parts.join(" ; "))
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Program[{self}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;

    #[test]
    fn builder_composes_in_order() {
        let p = Program::new()
            .map("f", 1.0, |v| v.clone())
            .scan(lib::mul())
            .reduce(lib::add())
            .map("g", 1.0, |v| v.clone())
            .bcast();
        assert_eq!(p.len(), 5);
        assert_eq!(
            p.to_string(),
            "map f ; scan(mul) ; reduce(add) ; map g ; bcast"
        );
        assert_eq!(p.collective_count(), 3);
    }

    #[test]
    fn splice_replaces_a_window() {
        let p = Program::new().scan(lib::add()).reduce(lib::add()).bcast();
        let q = p.splice(0, 2, vec![Stage::map("fused", 0.0, |v| v.clone())]);
        assert_eq!(q.to_string(), "map fused ; bcast");
        assert_eq!(q.collective_count(), 1);
    }

    #[test]
    fn then_concatenates_programs() {
        let a = Program::new().bcast();
        let b = Program::new().scan(lib::add());
        let c = a.then(b);
        assert_eq!(c.to_string(), "bcast ; scan(add)");
    }

    #[test]
    fn empty_program_displays_id() {
        assert_eq!(Program::new().to_string(), "id");
        assert!(Program::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "associative")]
    fn scan_rejects_non_associative_ops() {
        let bad = crate::op::BinOp::new("bad", |a, _| a.clone()).non_associative();
        let _ = Program::new().scan(bad);
    }

    #[test]
    fn is_collective_classification() {
        assert!(!Stage::map("f", 1.0, |v| v.clone()).is_collective());
        assert!(Stage::Bcast.is_collective());
        assert!(Stage::Scan(lib::add()).is_collective());
    }
}
