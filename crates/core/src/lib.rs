#![forbid(unsafe_code)]
//! # collopt-core — optimization rules for programming with collective operations
//!
//! A Rust implementation of the formal framework, optimization rules and
//! cost-guided rewrite engine of
//!
//! > S. Gorlatch, C. Wedler, C. Lengauer. *Optimization Rules for
//! > Programming with Collective Operations.* IPPS 1999.
//!
//! ## The idea
//!
//! Parallel programs written with collective operations (`bcast`,
//! `reduce`, `scan`, …) often compose several collectives in sequence —
//! within one program, or where two programs meet. Under algebraic side
//! conditions (associativity, commutativity, distributivity), such a
//! composition equals a *single* collective over auxiliary tuples: one
//! message start-up per butterfly phase instead of two or three, at the
//! price of slightly heavier local computation. The paper proves eleven
//! such fusion rules and pairs them with a cost calculus that predicts,
//! per machine, when the trade pays off.
//!
//! ## This crate
//!
//! * [`value`] / [`op`] — the data domain and the operator algebra with
//!   declared + verifiable properties;
//! * [`term`] — programs as compositions of stages
//!   (`map f ; scan (⊗) ; reduce (⊕) ; map g ; bcast`);
//! * [`semantics`] — the reference evaluator (the denotations the rules
//!   are equalities over);
//! * [`rules`] — the eleven rules with their fused operators
//!   (`op_sr2`, `op_sr`, `op_ss`, the comcast `e`/`o` pairs, `op_br`, …);
//! * [`rewrite`] — the exhaustive and cost-guided rewrite engine;
//! * [`egraph`] — equality saturation with cost-model extraction, the
//!   exact search behind `Rewriter::optimize_optimal`;
//! * [`exec`] — lowering onto the simulated message-passing machine of
//!   [`collopt_machine`] via the collective algorithms of
//!   [`collopt_collectives`].
//!
//! ## Quickstart
//!
//! ```
//! use collopt_core::op::lib;
//! use collopt_core::rewrite::Rewriter;
//! use collopt_core::term::Program;
//! use collopt_core::semantics::eval_program;
//! use collopt_core::value::Value;
//!
//! // scan(*) ; allreduce(+) — fusible because * distributes over +.
//! let prog = Program::new().scan(lib::mul()).allreduce(lib::add());
//! let optimized = Rewriter::exhaustive().optimize(&prog);
//! assert_eq!(optimized.program.collective_count(), 1);
//!
//! // Same meaning, half the communication.
//! let input: Vec<Value> = [1i64, 2, 3, 4].map(Value::Int).to_vec();
//! assert_eq!(
//!     eval_program(&prog, &input),
//!     eval_program(&optimized.program, &input),
//! );
//! ```

pub mod adjust;
pub mod dist;
pub mod egraph;
pub mod exec;
pub mod op;
pub mod parser;
pub mod report;
pub mod rewrite;
pub mod rules;
pub mod semantics;
pub mod term;
pub mod tutorial;
pub mod value;

pub use egraph::{
    saturate_program, LawGate, SaturateConfig, SaturationOutcome, SaturationStats,
    DEFAULT_NODE_BUDGET,
};
pub use exec::{
    execute, execute_profiled, execute_traced, execute_traced_with, execute_with, ExecConfig,
    ExecOutcome, TracedExecOutcome,
};
pub use op::{BinOp, Counterexample, RequiredLaw, FLOAT_RTOL};
pub use rewrite::{
    program_cost, Certificate, OptimizeResult, RewriteStep, Rewriter, RuleRejection, Witness,
    RULE_PRIORITY,
};
pub use rules::Rule;
pub use term::{Program, Stage};
pub use value::Value;
