//! # Tutorial: performance-directed programming with collective operations
//!
//! A guided tour of the library, following the paper's method end to end.
//! Every snippet below is a compiled, executed doctest.
//!
//! ## 1. Programs are compositions of stages
//!
//! The paper models an SPMD program as a forward composition of *local*
//! stages (`map f`) and *collective* stages (`bcast`, `scan`, `reduce`,
//! `allreduce`). Element `i` of the distributed list is the block held by
//! processor `i`:
//!
//! ```
//! use collopt_core::{op::lib as ops, semantics::eval_program, Program, Value};
//!
//! let prog = Program::new().scan(ops::add()).allreduce(ops::max());
//! let input: Vec<Value> = [3i64, -5, 4, -1, 2].map(Value::Int).to_vec();
//! // scan(+):        [3, -2, 2, 1, 3]
//! // allreduce(max): [3, 3, 3, 3, 3]
//! assert_eq!(eval_program(&prog, &input), vec![Value::Int(3); 5]);
//! ```
//!
//! ## 2. Operators carry their algebra
//!
//! The optimization rules have algebraic side conditions. Operators
//! declare their properties, and the declarations can be *verified* on
//! sample values:
//!
//! ```
//! use collopt_core::{op::lib as ops, Value};
//!
//! let add = ops::add_tropical(); // declares: distributes over max
//! let max = ops::max();
//! let samples: Vec<Value> = [-3i64, 0, 1, 5].map(Value::Int).to_vec();
//! assert!(add.check_distributes_over(&max, &samples)); // a+(b max c) = (a+b) max (a+c)
//! assert!(add.check_associative(&samples));
//! ```
//!
//! ## 3. Rules fuse collectives
//!
//! `scan(+); allreduce(max)` computes a running total and then its global
//! maximum — the *high-watermark* of a delta stream. Because `+`
//! distributes over `max`, rule SR2-Reduction fuses the two collectives
//! into a single `allreduce` over pairs, halving the message start-ups:
//!
//! ```
//! use collopt_core::{op::lib as ops, rewrite::Rewriter, semantics::eval_program,
//!                    Program, Rule, Value};
//!
//! let prog = Program::new().scan(ops::add_tropical()).allreduce(ops::max());
//! let fused = Rewriter::exhaustive().optimize(&prog);
//! assert_eq!(fused.steps[0].rule, Rule::Sr2Reduction);
//! assert_eq!(fused.program.collective_count(), 1);
//!
//! let input: Vec<Value> = [3i64, -5, 4, -1, 2].map(Value::Int).to_vec();
//! assert_eq!(eval_program(&prog, &input), eval_program(&fused.program, &input));
//! ```
//!
//! ## 4. The cost calculus decides *where* rules pay off
//!
//! SR-Reduction (same commutative operator in scan and reduction) only
//! helps when the start-up time exceeds the block size (`ts > m`,
//! Table 1). The cost-guided rewriter applies it on a latency-bound
//! machine and leaves it alone on a fast network:
//!
//! ```
//! use collopt_core::{op::lib as ops, rewrite::Rewriter, Program};
//! use collopt_cost::MachineParams;
//!
//! let prog = Program::new().scan(ops::add()).allreduce(ops::add());
//! let slow_net = MachineParams::new(64, 200.0, 2.0); // ts = 200
//! let fast_net = MachineParams::new(64, 4.0, 0.5);   // ts = 4
//!
//! let m = 32.0; // 32-word blocks
//! assert_eq!(Rewriter::cost_guided(slow_net, m).optimize(&prog).steps.len(), 1);
//! assert!(Rewriter::cost_guided(fast_net, m).optimize(&prog).steps.is_empty());
//! ```
//!
//! ## 5. Execute on the simulated machine
//!
//! The same program runs on a thread-per-rank machine with a
//! deterministic `ts`/`tw` clock; the fused version moves fewer messages
//! and finishes earlier:
//!
//! ```
//! use collopt_core::{execute, op::lib as ops, rewrite::Rewriter, Program, Value};
//! use collopt_machine::ClockParams;
//!
//! let prog = Program::new().scan(ops::mul()).allreduce(ops::add());
//! let fused = Rewriter::exhaustive().optimize(&prog).program;
//! let input: Vec<Value> = (0..16).map(|i| Value::Int(i % 3)).collect();
//!
//! let before = execute(&prog, &input, ClockParams::parsytec_like());
//! let after = execute(&fused, &input, ClockParams::parsytec_like());
//! assert_eq!(before.outputs, after.outputs);
//! assert!(after.total_messages < before.total_messages);
//! assert!(after.makespan < before.makespan);
//! ```
//!
//! ## 6. Parse pipelines from text
//!
//! The `collopt` binary wraps all of this behind a concrete syntax:
//!
//! ```
//! use collopt_core::parser::parse_pipeline;
//! use collopt_core::rewrite::Rewriter;
//!
//! let prog = parse_pipeline("bcast ; map prep ; scan(add) ; scan(add)").unwrap();
//! let res = Rewriter::exhaustive().optimize(&prog);
//! // The normalizer commutes `map prep` out of the way, then BSS-Comcast
//! // fuses broadcast + both scans into one comcast.
//! assert_eq!(res.program.collective_count(), 1);
//! ```
//!
//! ## 7. When greedy is not enough
//!
//! Overlapping fusible windows can make first-match rewriting suboptimal;
//! `optimize_optimal` searches every application order:
//!
//! ```
//! use collopt_core::{op::lib as ops, program_cost, rewrite::Rewriter, Program};
//! use collopt_cost::MachineParams;
//!
//! let prog = Program::new().scan(ops::add()).scan(ops::add()).reduce(ops::add());
//! let params = MachineParams::new(64, 100.0, 2.0);
//! let greedy = Rewriter::exhaustive().optimize(&prog).program;
//! let optimal = Rewriter::exhaustive().optimize_optimal(&prog, &params, 8.0).program;
//! assert!(program_cost(&optimal, &params, 8.0) < program_cost(&greedy, &params, 8.0));
//! ```

// This module is documentation only.
