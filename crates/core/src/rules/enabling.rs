//! Enabling transformations (normalization).
//!
//! Section 2.1 of the paper observes that compositions of collective
//! operations "can also arise as a result of program transformations if,
//! e.g., some local and collective stages are interchanged, exploiting
//! their data independence." This module implements the two such
//! transformations that are unconditionally sound in the framework:
//!
//! * **map fusion** — `map f ; map g  =  map (f;g)`: adjacent local
//!   stages collapse into one (map is a functor);
//! * **broadcast/map commutation** — `bcast ; map f  =  map f ; bcast`
//!   for a *rank-oblivious* `f`: both sides leave `f x₁` on every
//!   processor. Moving the local stage to the left can bring a broadcast
//!   next to a following scan or reduction, unlocking the *-Comcast and
//!   *-Local rules. (`map#` does **not** commute: `bcast ; map# f` gives
//!   processor `i` the value `f i x₁`, whereas `map# f ; bcast` gives
//!   everyone `f 0 x₁`.)
//!
//! Neither transformation changes the program's cost under the model
//! (local stages charge the same wherever they sit), so the rewrite
//! engine applies them freely before hunting for fusible windows.

use std::sync::Arc;

use crate::term::{Program, Stage};

/// One applied normalization, for the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Normalization {
    /// `map f ; map g → map (f;g)` at the given stage index.
    MapFuse {
        /// Stage index of the first map.
        at: usize,
        /// Combined label.
        label: String,
    },
    /// `bcast ; map f → map f ; bcast` at the given stage index.
    BcastMapCommute {
        /// Stage index of the bcast.
        at: usize,
        /// The commuted map's label.
        label: String,
    },
    /// `gather ; scatter → (nothing)`: assembling the distributed list on
    /// processor 0 and immediately redistributing it is the identity.
    GatherScatterElim {
        /// Stage index of the gather.
        at: usize,
    },
}

/// Apply one normalization step if any applies (leftmost first).
fn step(prog: &Program) -> Option<(Program, Normalization)> {
    let stages = prog.stages();
    for at in 0..stages.len().saturating_sub(1) {
        match (&stages[at], &stages[at + 1]) {
            (
                Stage::Map {
                    f: f1,
                    ops: o1,
                    label: l1,
                },
                Stage::Map {
                    f: f2,
                    ops: o2,
                    label: l2,
                },
            ) => {
                let label = format!("{l1};{l2}");
                let (f1, f2) = (f1.clone(), f2.clone());
                let fused = Stage::Map {
                    f: Arc::new(move |v| f2(&f1(v))),
                    ops: o1 + o2,
                    label: label.clone(),
                };
                return Some((
                    prog.splice(at, 2, vec![fused]),
                    Normalization::MapFuse { at, label },
                ));
            }
            (Stage::Gather, Stage::Scatter) => {
                return Some((
                    prog.splice(at, 2, Vec::new()),
                    Normalization::GatherScatterElim { at },
                ));
            }
            (Stage::Bcast, Stage::Map { f, ops, label }) => {
                let commuted = vec![
                    Stage::Map {
                        f: f.clone(),
                        ops: *ops,
                        label: label.clone(),
                    },
                    Stage::Bcast,
                ];
                return Some((
                    prog.splice(at, 2, commuted),
                    Normalization::BcastMapCommute {
                        at,
                        label: label.clone(),
                    },
                ));
            }
            _ => {}
        }
    }
    None
}

/// Normalize to fixpoint. Terminates: map fusion shrinks the program and
/// commutation strictly decreases the number of (bcast, map) inversions.
pub fn normalize(prog: &Program) -> (Program, Vec<Normalization>) {
    let mut current = prog.clone();
    let mut log = Vec::new();
    // Generous structural bound: each stage can fuse or commute at most
    // once per pass, and passes strictly reduce a bounded measure.
    let cap = prog.len() * (prog.len() + 1);
    for _ in 0..=cap {
        match step(&current) {
            Some((next, n)) => {
                log.push(n);
                current = next;
            }
            None => break,
        }
    }
    (current, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::semantics::eval_program;
    use crate::value::Value;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn adjacent_maps_fuse() {
        let prog = Program::new()
            .map("inc", 1.0, |v| Value::Int(v.as_int() + 1))
            .map("dbl", 1.0, |v| Value::Int(v.as_int() * 2));
        let (norm, log) = normalize(&prog);
        assert_eq!(norm.len(), 1);
        assert_eq!(
            log,
            vec![Normalization::MapFuse {
                at: 0,
                label: "inc;dbl".into()
            }]
        );
        let input = ints(&[3, 5]);
        assert_eq!(eval_program(&prog, &input), eval_program(&norm, &input));
        assert_eq!(eval_program(&norm, &input), ints(&[8, 12]));
    }

    #[test]
    fn map_chain_fuses_completely() {
        let mut prog = Program::new();
        for i in 0..5 {
            prog = prog.map(format!("m{i}"), 1.0, |v| Value::Int(v.as_int() + 1));
        }
        let (norm, log) = normalize(&prog);
        assert_eq!(norm.len(), 1);
        assert_eq!(log.len(), 4);
        assert_eq!(eval_program(&norm, &ints(&[0]))[0], Value::Int(5));
    }

    #[test]
    fn bcast_map_commutes_left() {
        let prog = Program::new()
            .bcast()
            .map("sq", 1.0, |v| Value::Int(v.as_int() * v.as_int()));
        let (norm, log) = normalize(&prog);
        assert_eq!(norm.to_string(), "map sq ; bcast");
        assert!(matches!(
            log[0],
            Normalization::BcastMapCommute { at: 0, .. }
        ));
        let input = ints(&[3, 7, 9]);
        assert_eq!(eval_program(&prog, &input), eval_program(&norm, &input));
        assert_eq!(eval_program(&norm, &input), ints(&[9, 9, 9]));
    }

    #[test]
    fn map_indexed_does_not_commute_with_bcast() {
        let prog = Program::new()
            .bcast()
            .map_indexed("addrank", 1.0, |i, v| Value::Int(v.as_int() + i as i64));
        let (norm, log) = normalize(&prog);
        assert!(log.is_empty());
        assert_eq!(norm.to_string(), prog.to_string());
    }

    #[test]
    fn normalization_exposes_a_bs_window() {
        // bcast ; map f ; scan — after commuting, bcast meets scan.
        let prog = Program::new()
            .bcast()
            .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::add());
        let (norm, _) = normalize(&prog);
        assert_eq!(norm.to_string(), "map f ; bcast ; scan(add)");
        // And the window really is fusible now.
        assert!(
            crate::rules::try_match(crate::rules::Rule::BsComcast, &norm.stages()[1..]).is_some()
        );
        // Semantics preserved.
        let input = ints(&[4, 0, 0, 0, 0]);
        assert_eq!(eval_program(&prog, &input), eval_program(&norm, &input));
    }

    #[test]
    fn mixed_chain_normalizes_in_one_pass() {
        // bcast; map a; map b; scan → map a;b ; bcast ; scan.
        let prog = Program::new()
            .bcast()
            .map("a", 1.0, |v| Value::Int(v.as_int() + 1))
            .map("b", 1.0, |v| Value::Int(v.as_int() * 3))
            .scan(lib::add());
        let (norm, _) = normalize(&prog);
        assert_eq!(norm.to_string(), "map a;b ; bcast ; scan(add)");
        let input = ints(&[1, 9, 9]);
        assert_eq!(eval_program(&prog, &input), eval_program(&norm, &input));
    }

    #[test]
    fn gather_scatter_pair_is_eliminated() {
        let prog = Program::new()
            .scan(lib::add())
            .gather()
            .scatter()
            .reduce(lib::add());
        let (norm, log) = normalize(&prog);
        assert_eq!(norm.to_string(), "scan(add) ; reduce(add)");
        assert_eq!(log, vec![Normalization::GatherScatterElim { at: 1 }]);
        let input = ints(&[1, 2, 3]);
        assert_eq!(eval_program(&prog, &input), eval_program(&norm, &input));
    }

    #[test]
    fn scatter_gather_is_not_eliminated() {
        // scatter;gather is only an identity on processor 0's list view;
        // the distributed positions differ, so it must stay.
        let prog = Program::new().scatter().gather();
        let (norm, log) = normalize(&prog);
        assert!(log.is_empty());
        assert_eq!(norm.len(), 2);
    }

    #[test]
    fn collective_only_programs_are_untouched() {
        let prog = Program::new().scan(lib::add()).reduce(lib::add()).bcast();
        let (norm, log) = normalize(&prog);
        assert!(log.is_empty());
        assert_eq!(norm.to_string(), prog.to_string());
    }
}
