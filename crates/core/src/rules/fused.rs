//! Constructors for the fused operators of Section 3.
//!
//! Every optimization rule trades collective operations for a more complex
//! operator on auxiliary tuples. These constructors build those operators
//! generically from the base operators `⊗`/`⊕`, together with the exact
//! operation counts the paper uses in Table 1. All scalar-level functions
//! are lifted elementwise over `m`-word blocks.
//!
//! Operation counts per block element (unit base operations):
//!
//! | operator  | count | breakdown |
//! |-----------|-------|-----------|
//! | `op_sr2`  | 3     | `s1 ⊕ (r1 ⊗ s2)`: 2, `r1 ⊗ r2`: 1 |
//! | `op_sr`   | 4     | `t1⊕t2⊕u1`: 2, `uu`: 1, `uu⊕uu`: 1 (the paper's "four rather than five") |
//! | `op_ss`   | 5 / 8 | shared `ttu,uu,uuuu,vv`: 5; upper adds `s2⊕t1⊕v1`: 2 and `uu⊕vv`: 1 (the paper's "twelve to eight") |
//! | BS `e`/`o`| 1 / 2 | `u⊕u`; `t⊕u` |
//! | BSS2 `e`/`o`| 3 / 5 | |
//! | BSS `e`/`o` | 5 / 8 | |
//! | `op_br`   | 1     | `s⊕s` |
//! | `op_bsr2` | 3     | `s⊕(s⊗t)`: 2, `t⊗t`: 1 |
//! | `op_bsr`  | 4     | `t⊕t⊕u`: 2, `uu`: 1, `uu⊕uu`: 1 |

use std::sync::Arc;

use crate::op::BinOp;
use crate::term::{PairedFn, ValueFn, ValueFn2};
use crate::value::Value;

/// `op_sr2` (rules SR2-Reduction and SS2-Scan): on pairs `(s, r)`,
///
/// ```text
/// op_sr2((s1,r1),(s2,r2)) = (s1 ⊕ (r1 ⊗ s2), r1 ⊗ r2)
/// ```
///
/// Associative whenever `⊗` distributes over `⊕` — this is what lets the
/// fused term use an ordinary reduction/scan.
pub fn op_sr2(otimes: &BinOp, oplus: &BinOp) -> BinOp {
    let ot = otimes.clone();
    let op = oplus.clone();
    let name = format!("op_sr2[{},{}]", otimes.name(), oplus.name());
    let cost = oplus.ops_per_word() + 2.0 * otimes.ops_per_word();
    BinOp::new(name, move |a, b| {
        let (s1, r1) = (a.proj(0), a.proj(1));
        let (s2, r2) = (b.proj(0), b.proj(1));
        Value::Tuple(vec![op.apply(&s1, &ot.apply(&r1, &s2)), ot.apply(&r1, &r2)])
    })
    .with_cost(cost)
    .with_width(2.0)
}

/// `op_sr` (rule SR-Reduction): the non-associative combine on pairs
/// `(t, u)` for the balanced reduction, plus its unary variant.
///
/// ```text
/// op_sr((t1,u1),(t2,u2)) = (t1 ⊕ t2 ⊕ u1, uu ⊕ uu)    uu = u1 ⊕ u2
/// op_sr((),     (t2,u2)) = (t2, u2 ⊕ u2)
/// ```
///
/// Returns `(combine, solo)` as block-lifted closures.
pub fn op_sr(oplus: &BinOp) -> (ValueFn2, ValueFn) {
    let op1 = oplus.clone();
    let combine: ValueFn2 = Arc::new(move |a: &Value, b: &Value| {
        let op1 = &op1;
        a.zip_block(b, &|x, y| {
            let (t1, u1) = (x.proj(0), x.proj(1));
            let (t2, u2) = (y.proj(0), y.proj(1));
            let uu = op1.apply(&u1, &u2);
            Value::Tuple(vec![
                op1.apply(&op1.apply(&t1, &t2), &u1),
                op1.apply(&uu, &uu),
            ])
        })
    });
    let op2 = oplus.clone();
    let solo: ValueFn = Arc::new(move |v: &Value| {
        let op2 = &op2;
        v.map_block(&|x| {
            let (t, u) = (x.proj(0), x.proj(1));
            Value::Tuple(vec![t, op2.apply(&u, &u)])
        })
    });
    (combine, solo)
}

/// `op_ss` (rule SS-Scan): the paired combine on quadruples
/// `(s, t, u, v)` for the balanced scan, plus the solo variant for ranks
/// without a butterfly partner.
///
/// ```text
/// op_ss((s1,t1,u1,v1),(s2,t2,u2,v2)) =
///     ((s1, ttu, uuuu, vv), (s2 ⊕ t1 ⊕ v1, ttu, uuuu, uu ⊕ vv))
///   where ttu = t1⊕t2⊕u1, uu = u1⊕u2, uuuu = uu⊕uu, vv = v1⊕v2
/// op_ss((s1,t1,u1,v1), ()) = ((s1, _, _, _), ())
/// ```
///
/// The solo variant keeps the entire quadruple: the paper leaves `t,u,v`
/// undefined (`_`), and a rank that ever lacks a partner can never serve as
/// a *lower* partner afterwards (it lacked a partner at round `i` because
/// `rank + 2^i ≥ p`, so `rank + 2^j ≥ p` for all later rounds `j > i`), so
/// its stale components are provably never consumed.
pub fn op_ss(oplus: &BinOp) -> (PairedFn, ValueFn) {
    let op1 = oplus.clone();
    let combine: PairedFn = Arc::new(move |a: &Value, b: &Value| {
        let op1 = &op1;
        let scalar = |x: &Value, y: &Value| {
            let (s1, t1, u1, v1) = (x.proj(0), x.proj(1), x.proj(2), x.proj(3));
            let (s2, t2, u2, v2) = (y.proj(0), y.proj(1), y.proj(2), y.proj(3));
            let ttu = op1.apply(&op1.apply(&t1, &t2), &u1);
            let uu = op1.apply(&u1, &u2);
            let uuuu = op1.apply(&uu, &uu);
            let vv = op1.apply(&v1, &v2);
            let lower = Value::Tuple(vec![s1, ttu.clone(), uuuu.clone(), vv.clone()]);
            let upper = Value::Tuple(vec![
                op1.apply(&op1.apply(&s2, &t1), &v1),
                ttu,
                uuuu,
                op1.apply(&uu, &vv),
            ]);
            (lower, upper)
        };
        match (a, b) {
            (Value::List(xs), Value::List(ys)) => {
                assert_eq!(xs.len(), ys.len());
                let mut lows = Vec::with_capacity(xs.len());
                let mut highs = Vec::with_capacity(xs.len());
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let (l, h) = scalar(x, y);
                    lows.push(l);
                    highs.push(h);
                }
                (Value::list(lows), Value::list(highs))
            }
            (x, y) => scalar(x, y),
        }
    });
    let solo: ValueFn = Arc::new(|v: &Value| v.clone());
    (combine, solo)
}

/// The `e`/`o` step functions of rule BS-Comcast (Figure 6), on pairs
/// `(t, u)`:
///
/// ```text
/// e(t,u) = (t, u⊕u)      o(t,u) = (t⊕u, u⊕u)
/// ```
pub fn bs_eo(oplus: &BinOp) -> (ValueFn, ValueFn) {
    let op1 = oplus.clone();
    let e: ValueFn = Arc::new(move |v: &Value| {
        let op1 = &op1;
        v.map_block(&|x| {
            let (t, u) = (x.proj(0), x.proj(1));
            Value::Tuple(vec![t, op1.apply(&u, &u)])
        })
    });
    let op2 = oplus.clone();
    let o: ValueFn = Arc::new(move |v: &Value| {
        let op2 = &op2;
        v.map_block(&|x| {
            let (t, u) = (x.proj(0), x.proj(1));
            Value::Tuple(vec![op2.apply(&t, &u), op2.apply(&u, &u)])
        })
    });
    (e, o)
}

/// The `e`/`o` step functions of rule BSS2-Comcast, on triples `(s, t, u)`:
///
/// ```text
/// e(s,t,u) = (s,          t ⊕ (t⊗u), u⊗u)
/// o(s,t,u) = (t ⊕ (s⊗u),  t ⊕ (t⊗u), u⊗u)
/// ```
pub fn bss2_eo(otimes: &BinOp, oplus: &BinOp) -> (ValueFn, ValueFn) {
    let (ot, op1) = (otimes.clone(), oplus.clone());
    let e: ValueFn = Arc::new(move |v: &Value| {
        let (ot, op1) = (&ot, &op1);
        v.map_block(&|x| {
            let (s, t, u) = (x.proj(0), x.proj(1), x.proj(2));
            Value::Tuple(vec![s, op1.apply(&t, &ot.apply(&t, &u)), ot.apply(&u, &u)])
        })
    });
    let (ot2, op2) = (otimes.clone(), oplus.clone());
    let o: ValueFn = Arc::new(move |v: &Value| {
        let (ot2, op2) = (&ot2, &op2);
        v.map_block(&|x| {
            let (s, t, u) = (x.proj(0), x.proj(1), x.proj(2));
            Value::Tuple(vec![
                op2.apply(&t, &ot2.apply(&s, &u)),
                op2.apply(&t, &ot2.apply(&t, &u)),
                ot2.apply(&u, &u),
            ])
        })
    });
    (e, o)
}

/// The `e`/`o` step functions of rule BSS-Comcast, on quadruples
/// `(s, t, u, v)`:
///
/// ```text
/// e(s,t,u,v) = (s,        t⊕t⊕u, uu⊕uu, v⊕v)        uu = u⊕u
/// o(s,t,u,v) = (s⊕t⊕v,    t⊕t⊕u, uu⊕uu, uu⊕v⊕v)
/// ```
pub fn bss_eo(oplus: &BinOp) -> (ValueFn, ValueFn) {
    let op1 = oplus.clone();
    let e: ValueFn = Arc::new(move |v: &Value| {
        let op1 = &op1;
        v.map_block(&|x| {
            let (s, t, u, w) = (x.proj(0), x.proj(1), x.proj(2), x.proj(3));
            let uu = op1.apply(&u, &u);
            Value::Tuple(vec![
                s,
                op1.apply(&op1.apply(&t, &t), &u),
                op1.apply(&uu, &uu),
                op1.apply(&w, &w),
            ])
        })
    });
    let op2 = oplus.clone();
    let o: ValueFn = Arc::new(move |v: &Value| {
        let op2 = &op2;
        v.map_block(&|x| {
            let (s, t, u, w) = (x.proj(0), x.proj(1), x.proj(2), x.proj(3));
            let uu = op2.apply(&u, &u);
            Value::Tuple(vec![
                op2.apply(&op2.apply(&s, &t), &w),
                op2.apply(&op2.apply(&t, &t), &u),
                op2.apply(&uu, &uu),
                op2.apply(&op2.apply(&uu, &w), &w),
            ])
        })
    });
    (e, o)
}

/// `op_br` for the local rules BR-Local / CR-Alllocal: `combine = ⊕`
/// directly, solo = identity (an associative operator tolerates the
/// balanced tree's unary nodes as pass-throughs).
pub fn br_iter(oplus: &BinOp) -> (ValueFn2, ValueFn) {
    let op1 = oplus.clone();
    let combine: ValueFn2 = Arc::new(move |a: &Value, b: &Value| op1.apply(a, b));
    let solo: ValueFn = Arc::new(|v: &Value| v.clone());
    (combine, solo)
}

/// `op_bsr2` generalized for rule BSR2-Local: combining `(s, t)` states of
/// two equal groups of broadcast copies is exactly `op_sr2`, which is
/// associative, so the solo variant is the identity. The paper's printed
/// `op_bsr2(s,t) = (s ⊕ (s⊗t), t⊗t)` is the diagonal
/// `combine(x, x)` — the power-of-two doubling step.
pub fn bsr2_iter(otimes: &BinOp, oplus: &BinOp) -> (ValueFn2, ValueFn) {
    let fused = op_sr2(otimes, oplus);
    let combine: ValueFn2 = Arc::new(move |a: &Value, b: &Value| fused.apply(a, b));
    let solo: ValueFn = Arc::new(|v: &Value| v.clone());
    (combine, solo)
}

/// `op_bsr` generalized for rule BSR-Local: the balanced-tree combine is
/// `op_sr`; its diagonal `combine(x, x)` is the paper's printed
/// `op_bsr(t,u) = (t⊕t⊕u, uu⊕uu)`.
pub fn bsr_iter(oplus: &BinOp) -> (ValueFn2, ValueFn) {
    op_sr(oplus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjust::{pair, pi1, quadruple, repeat};
    use crate::op::lib;

    fn pair_samples() -> Vec<Value> {
        let mut out = Vec::new();
        for a in [-3i64, 0, 1, 2, 7] {
            for b in [-2i64, 1, 3] {
                out.push(Value::Tuple(vec![Value::Int(a), Value::Int(b)]));
            }
        }
        out
    }

    #[test]
    fn op_sr2_is_associative_given_distributivity() {
        let fused = op_sr2(&lib::mul(), &lib::add());
        assert!(fused.check_associative(&pair_samples()));
        assert_eq!(fused.ops_per_word(), 3.0);
        assert_eq!(fused.width(), 2.0);
    }

    #[test]
    fn op_sr2_fold_equals_scan_then_reduce() {
        // Fold pairs (x,x) with op_sr2(mul, add); π1 must equal
        // reduce(+)(scan(*)(xs)).
        let fused = op_sr2(&lib::mul(), &lib::add());
        for xs in [
            vec![3i64],
            vec![2, 5],
            vec![1, 2, 3, 4],
            vec![2, -1, 3, 2, 2],
        ] {
            let mut acc = pair(&Value::Int(xs[0]));
            for &x in &xs[1..] {
                acc = fused.apply(&acc, &pair(&Value::Int(x)));
            }
            let mut prefix = 1i64;
            let mut expected = 0i64;
            for &x in &xs {
                prefix *= x;
                expected += prefix;
            }
            assert_eq!(pi1(&acc).as_int(), expected, "{xs:?}");
        }
    }

    #[test]
    fn op_sr_diagonal_matches_paper_op_bsr() {
        // combine((t,u),(t,u)) must equal op_bsr(t,u) = (t⊕t⊕u, uu⊕uu)
        // with uu = u⊕u.
        let (combine, _) = op_sr(&lib::add());
        let x = Value::Tuple(vec![Value::Int(5), Value::Int(3)]);
        let got = combine(&x, &x);
        assert_eq!(got, Value::Tuple(vec![Value::Int(13), Value::Int(12)]));
    }

    #[test]
    fn op_sr_solo_doubles_u_only() {
        let (_, solo) = op_sr(&lib::add());
        let x = Value::Tuple(vec![Value::Int(9), Value::Int(14)]);
        assert_eq!(solo(&x), Value::Tuple(vec![Value::Int(9), Value::Int(28)]));
    }

    #[test]
    fn op_sr_figure4_first_level() {
        // Figure 4: (2,2)+(5,5) → (9,14); (9,9)+(1,1) → (19,20);
        // (2,2)+(6,6) → (10,16).
        let (combine, _) = op_sr(&lib::add());
        let mk = |a: i64, b: i64| Value::Tuple(vec![Value::Int(a), Value::Int(b)]);
        assert_eq!(combine(&mk(2, 2), &mk(5, 5)), mk(9, 14));
        assert_eq!(combine(&mk(9, 9), &mk(1, 1)), mk(19, 20));
        assert_eq!(combine(&mk(2, 2), &mk(6, 6)), mk(10, 16));
        // Second level: (19,20)+(10,16) → (49,72); root (9,28)+(49,72) → (86,200).
        assert_eq!(combine(&mk(19, 20), &mk(10, 16)), mk(49, 72));
        assert_eq!(combine(&mk(9, 28), &mk(49, 72)), mk(86, 200));
    }

    #[test]
    fn op_ss_figure5_first_phase() {
        // Figure 5, phase 1 on processors 0 and 1 (values 2 and 5):
        // lower → (2,9,14,7), upper → (9,9,14,14).
        let (combine, _) = op_ss(&lib::add());
        let q = |v: i64| quadruple(&Value::Int(v));
        let (lo, hi) = combine(&q(2), &q(5));
        let t = |a: i64, b: i64, c: i64, d: i64| {
            Value::Tuple(vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(c),
                Value::Int(d),
            ])
        };
        assert_eq!(lo, t(2, 9, 14, 7));
        assert_eq!(hi, t(9, 9, 14, 14));
        // Phase 2 on processors 0 and 2: (2,9,14,7) & (9,19,20,10) →
        // (2,42,68,17) and (25,42,68,51).
        let (lo2, hi2) = combine(&t(2, 9, 14, 7), &t(9, 19, 20, 10));
        assert_eq!(lo2, t(2, 42, 68, 17));
        assert_eq!(hi2, t(25, 42, 68, 51));
    }

    #[test]
    fn bs_eo_matches_figure6_node_ops() {
        let (e, o) = bs_eo(&lib::add());
        let x = Value::Tuple(vec![Value::Int(2), Value::Int(4)]);
        assert_eq!(e(&x), Value::Tuple(vec![Value::Int(2), Value::Int(8)]));
        assert_eq!(o(&x), Value::Tuple(vec![Value::Int(6), Value::Int(8)]));
    }

    #[test]
    fn bss2_repeat_computes_scan_of_scan_of_bcast() {
        // bcast b; scan(⊗); scan(⊕) at processor k equals
        // ⊕_{j=0..k} b^{⊗(j+1)}. With ⊗ = mul, ⊕ = add, b = 2:
        // processor k gets 2 + 4 + … + 2^(k+1).
        let (e, o) = bss2_eo(&lib::mul(), &lib::add());
        let b = Value::Int(2);
        let seed = crate::adjust::triple(&b);
        for k in 0..8usize {
            let out = repeat(&*e, &*o, k, 3, seed.clone());
            let expected: i64 = (1..=k as u32 + 1).map(|j| 2i64.pow(j)).sum();
            assert_eq!(out.proj(0).as_int(), expected, "k={k}");
        }
    }

    #[test]
    fn bss_repeat_computes_triangular_multiples() {
        // bcast b; scan(+); scan(+) at processor k equals
        // (k+1)(k+2)/2 · b.
        let (e, o) = bss_eo(&lib::add());
        let b = 2i64;
        let seed = quadruple(&Value::Int(b));
        for k in 0..16usize {
            let out = repeat(&*e, &*o, k, 4, seed.clone());
            let n = k as i64 + 1;
            assert_eq!(out.proj(0).as_int(), n * (n + 1) / 2 * b, "k={k}");
        }
    }

    #[test]
    fn br_iter_computes_p_fold_sum() {
        let (combine, solo) = br_iter(&lib::add());
        for p in 1..50usize {
            let (v, _, _) = crate::adjust::iter_balanced(p, &Value::Int(3), &*combine, &*solo);
            assert_eq!(v.as_int(), 3 * p as i64, "p={p}");
        }
    }

    #[test]
    fn bsr2_iter_computes_reduce_scan_bcast() {
        // bcast b; scan(*); reduce(+) on p processors = Σ_{i=1..p} b^i.
        let (combine, solo) = bsr2_iter(&lib::mul(), &lib::add());
        let b = 2i64;
        for p in 1..20usize {
            let leaf = pair(&Value::Int(b));
            let (v, _, _) = crate::adjust::iter_balanced(p, &leaf, &*combine, &*solo);
            let expected: i64 = (1..=p as u32).map(|i| b.pow(i)).sum();
            assert_eq!(pi1(&v).as_int(), expected, "p={p}");
        }
    }

    #[test]
    fn bsr_iter_diagonal_matches_paper_op_bsr_costs() {
        // The diagonal of op_sr: op_bsr(t,u) = (t+t+u, (u+u)+(u+u)).
        let (combine, _) = bsr_iter(&lib::add());
        let x = Value::Tuple(vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(
            combine(&x, &x),
            Value::Tuple(vec![Value::Int(3), Value::Int(4)])
        );
    }

    #[test]
    fn fused_ops_lift_over_blocks() {
        let fused = op_sr2(&lib::mul(), &lib::add());
        let block = |v: i64| {
            Value::list(vec![
                Value::Tuple(vec![Value::Int(v), Value::Int(v)]),
                Value::Tuple(vec![Value::Int(10 * v), Value::Int(10 * v)]),
            ])
        };
        let out = fused.apply(&block(2), &block(3));
        // Element 0: op_sr2((2,2),(3,3)) = (2 + 2*3, 6) = (8, 6).
        assert_eq!(
            out.as_list()[0],
            Value::Tuple(vec![Value::Int(8), Value::Int(6)])
        );
        // Element 1: op_sr2((20,20),(30,30)) = (20+600, 600).
        assert_eq!(
            out.as_list()[1],
            Value::Tuple(vec![Value::Int(620), Value::Int(600)])
        );
    }
}
