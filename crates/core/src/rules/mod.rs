//! The optimization rules of Section 3.
//!
//! Each rule is a *semantic equality*: a window of stages whose side
//! condition holds may be replaced by the rule's right-hand side without
//! changing the program's meaning. [`try_match`] implements the
//! pattern-and-condition check and builds the replacement; the engine in
//! [`crate::rewrite`] decides *where* and *whether* (cost-guidedly) to
//! apply.
//!
//! Rule naming follows the paper: initials of the collective operations in
//! the matched window (`B`roadcast, `S`can, `R`eduction), a `2` when the
//! two base operators differ (requiring distributivity), and the class of
//! the result (Reduction, Scan, Comcast, Local).
//!
//! ## Soundness caveat of the Local rules
//!
//! The paper notes (Section 3.5) that `bcast; reduce(⊕) → iter(op_br)`
//! drops the broadcast's side effect: the original leaves every processor
//! holding `b`, the local version touches only processor 0. The rules
//! BR-Local, BSR2-Local and BSR-Local are therefore equalities **on the
//! first component** of the distributed list; CR-Alllocal (which ends with
//! a broadcast) and every other rule preserve all components. The rewrite
//! engine only applies the first-component rules when asked to
//! ([`crate::rewrite::Rewriter::allow_rank0_rules`]).

pub mod enabling;
pub mod fused;

pub use collopt_cost::Rule;

use crate::adjust;
use crate::op::RequiredLaw;
use crate::term::{ComcastVariant, Stage};

/// Length of the stage window the rule matches (2 or 3 collectives).
pub fn window_len(rule: Rule) -> usize {
    match rule {
        Rule::Sr2Reduction
        | Rule::SrReduction
        | Rule::Ss2Scan
        | Rule::SsScan
        | Rule::BsComcast
        | Rule::BrLocal
        | Rule::CrAlllocal => 2,
        Rule::Bss2Comcast | Rule::BssComcast | Rule::Bsr2Local | Rule::BsrLocal => 3,
    }
}

/// A matched rewrite: the replacement stages, plus whether the equality
/// only covers processor 0's value (see module docs — rules whose
/// left-hand side ends in `reduce` drop the scan/broadcast side effects on
/// the other processors; the `allreduce` variants and all others preserve
/// every position).
#[derive(Clone)]
pub struct Rewrite {
    /// The stages replacing the matched window.
    pub stages: Vec<Stage>,
    /// `true` when only processor 0's value is guaranteed equal.
    pub rank0_only: bool,
}

impl Rewrite {
    fn full(stages: Vec<Stage>) -> Option<Rewrite> {
        Some(Rewrite {
            stages,
            rank0_only: false,
        })
    }

    fn rank0(stages: Vec<Stage>) -> Option<Rewrite> {
        Some(Rewrite {
            stages,
            rank0_only: true,
        })
    }
}

/// The algebraic side conditions `rule` relies on at the *start* of
/// `window`: associativity of every collective operator in the matched
/// window, plus the rule's own condition (commutativity or
/// distributivity), each bound to the concrete operators. This is the
/// machine-checkable content of a rewrite certificate — every law can be
/// re-verified later with [`RequiredLaw::counterexample`].
///
/// Returns `None` when the window is too short or carries no operator the
/// rule could be certified over (such a rewrite must be refused by
/// auditing engines).
pub fn required_laws(rule: Rule, window: &[Stage]) -> Option<Vec<RequiredLaw>> {
    if window.len() < window_len(rule) {
        return None;
    }
    let ops_of = |s: &Stage| match s {
        Stage::Scan(op) | Stage::Reduce(op) | Stage::AllReduce(op) => Some(op.clone()),
        _ => None,
    };
    let ops: Vec<crate::op::BinOp> = window[..window_len(rule)]
        .iter()
        .filter_map(ops_of)
        .collect();
    let mut laws: Vec<RequiredLaw> = ops.iter().cloned().map(RequiredLaw::Associative).collect();
    match rule {
        // Distributivity rules: first collective operator over the second.
        Rule::Sr2Reduction | Rule::Ss2Scan | Rule::Bss2Comcast | Rule::Bsr2Local => {
            if ops.len() != 2 {
                return None;
            }
            laws.push(RequiredLaw::DistributesOver(ops[0].clone(), ops[1].clone()));
        }
        // Commutativity rules: the (shared) operator must commute.
        Rule::SrReduction | Rule::SsScan | Rule::BssComcast | Rule::BsrLocal => {
            laws.extend(ops.iter().cloned().map(RequiredLaw::Commutative));
        }
        // Associativity-only rules.
        Rule::BsComcast | Rule::BrLocal | Rule::CrAlllocal => {
            if ops.is_empty() {
                return None;
            }
        }
    }
    Some(laws)
}

/// Randomized verification that the algebraic side conditions a rule
/// *declares* actually hold on the given sample values — the safety net
/// for user-defined operators whose property declarations might be wrong.
///
/// Checks every law from [`required_laws`]. Returns `true` when every
/// required law holds on all sample combinations.
pub fn verify_conditions(rule: Rule, window: &[Stage], samples: &[crate::value::Value]) -> bool {
    required_laws(rule, window).is_some_and(|laws| laws.iter().all(|l| l.holds_on(samples)))
}

fn map_pair() -> Stage {
    Stage::map("pair", 0.0, adjust::pair)
}

fn map_quadruple() -> Stage {
    Stage::map("quadruple", 0.0, adjust::quadruple)
}

fn map_pi1() -> Stage {
    Stage::map("pi1", 0.0, adjust::pi1)
}

/// Try to apply `rule` at the *start* of `window`. Returns the rewrite if
/// the pattern matches and the algebraic side condition holds (by
/// declaration on the operators), `None` otherwise.
pub fn try_match(rule: Rule, window: &[Stage]) -> Option<Rewrite> {
    if window.len() < window_len(rule) {
        return None;
    }
    match rule {
        Rule::Sr2Reduction => match (&window[0], &window[1]) {
            (Stage::Scan(ot), Stage::Reduce(op)) if ot.distributes_over(op) => {
                // The fused reduce no longer materializes the scan's
                // prefix values on processors 1..p — equality at rank 0.
                Rewrite::rank0(vec![
                    map_pair(),
                    Stage::Reduce(fused::op_sr2(ot, op)),
                    map_pi1(),
                ])
            }
            (Stage::Scan(ot), Stage::AllReduce(op)) if ot.distributes_over(op) => {
                Rewrite::full(vec![
                    map_pair(),
                    Stage::AllReduce(fused::op_sr2(ot, op)),
                    map_pi1(),
                ])
            }
            _ => None,
        },
        Rule::SrReduction => {
            let (op, all) = match (&window[0], &window[1]) {
                (Stage::Scan(a), Stage::Reduce(b)) if a.name() == b.name() => (a, false),
                (Stage::Scan(a), Stage::AllReduce(b)) if a.name() == b.name() => (a, true),
                _ => return None,
            };
            if !op.is_commutative() {
                return None;
            }
            let (combine, solo) = fused::op_sr(op);
            let c = op.ops_per_word();
            let stages = vec![
                map_pair(),
                Stage::ReduceBalanced {
                    combine,
                    solo,
                    all,
                    ops_combine: 4.0 * c,
                    ops_solo: c,
                    words_factor: 2,
                    label: format!("op_sr[{}]", op.name()),
                },
                map_pi1(),
            ];
            if all {
                Rewrite::full(stages)
            } else {
                Rewrite::rank0(stages)
            }
        }
        Rule::Ss2Scan => match (&window[0], &window[1]) {
            (Stage::Scan(ot), Stage::Scan(op))
                if ot.name() != op.name() && ot.distributes_over(op) =>
            {
                Rewrite::full(vec![
                    map_pair(),
                    Stage::Scan(fused::op_sr2(ot, op)),
                    map_pi1(),
                ])
            }
            _ => None,
        },
        Rule::SsScan => match (&window[0], &window[1]) {
            (Stage::Scan(a), Stage::Scan(b)) if a.name() == b.name() && a.is_commutative() => {
                let (combine, solo) = fused::op_ss(a);
                let c = a.ops_per_word();
                Rewrite::full(vec![
                    map_quadruple(),
                    Stage::ScanBalanced {
                        combine,
                        solo,
                        ops_lower: 5.0 * c,
                        ops_upper: 8.0 * c,
                        ops_solo: 0.0,
                        words_factor: 3,
                        label: format!("op_ss[{}]", a.name()),
                    },
                    map_pi1(),
                ])
            }
            _ => None,
        },
        Rule::BsComcast => match (&window[0], &window[1]) {
            (Stage::Bcast, Stage::Scan(op)) => {
                let (e, o) = fused::bs_eo(op);
                let c = op.ops_per_word();
                Rewrite::full(vec![Stage::Comcast {
                    e,
                    o,
                    inject: std::sync::Arc::new(adjust::pair),
                    project: std::sync::Arc::new(adjust::pi1),
                    ops_e: c,
                    ops_o: 2.0 * c,
                    words_factor: 2,
                    variant: ComcastVariant::BcastRepeat,
                    label: format!("op_comp_bs[{}]", op.name()),
                }])
            }
            _ => None,
        },
        Rule::Bss2Comcast => match (&window[0], &window[1], &window[2]) {
            (Stage::Bcast, Stage::Scan(ot), Stage::Scan(op))
                if ot.name() != op.name() && ot.distributes_over(op) =>
            {
                let (e, o) = fused::bss2_eo(ot, op);
                let (co, cp) = (ot.ops_per_word(), op.ops_per_word());
                Rewrite::full(vec![Stage::Comcast {
                    e,
                    o,
                    inject: std::sync::Arc::new(adjust::triple),
                    project: std::sync::Arc::new(adjust::pi1),
                    ops_e: cp + 2.0 * co,
                    ops_o: 2.0 * cp + 3.0 * co,
                    words_factor: 3,
                    variant: ComcastVariant::BcastRepeat,
                    label: format!("op_comp_bss2[{},{}]", ot.name(), op.name()),
                }])
            }
            _ => None,
        },
        Rule::BssComcast => match (&window[0], &window[1], &window[2]) {
            (Stage::Bcast, Stage::Scan(a), Stage::Scan(b))
                if a.name() == b.name() && a.is_commutative() =>
            {
                let (e, o) = fused::bss_eo(a);
                let c = a.ops_per_word();
                Rewrite::full(vec![Stage::Comcast {
                    e,
                    o,
                    inject: std::sync::Arc::new(adjust::quadruple),
                    project: std::sync::Arc::new(adjust::pi1),
                    ops_e: 5.0 * c,
                    ops_o: 8.0 * c,
                    words_factor: 4,
                    variant: ComcastVariant::BcastRepeat,
                    label: format!("op_comp_bss[{}]", a.name()),
                }])
            }
            _ => None,
        },
        Rule::BrLocal => match (&window[0], &window[1]) {
            (Stage::Bcast, Stage::Reduce(op)) => {
                let (combine, solo) = fused::br_iter(op);
                Rewrite::rank0(vec![Stage::IterLocal {
                    combine,
                    solo,
                    all: false,
                    ops_combine: op.ops_per_word(),
                    ops_solo: 0.0,
                    label: format!("op_br[{}]", op.name()),
                }])
            }
            _ => None,
        },
        Rule::Bsr2Local => match (&window[0], &window[1], &window[2]) {
            (Stage::Bcast, Stage::Scan(ot), Stage::Reduce(op)) if ot.distributes_over(op) => {
                let (combine, solo) = fused::bsr2_iter(ot, op);
                Rewrite::rank0(vec![
                    map_pair(),
                    Stage::IterLocal {
                        combine,
                        solo,
                        all: false,
                        ops_combine: op.ops_per_word() + 2.0 * ot.ops_per_word(),
                        ops_solo: 0.0,
                        label: format!("op_bsr2[{},{}]", ot.name(), op.name()),
                    },
                    map_pi1(),
                ])
            }
            _ => None,
        },
        Rule::BsrLocal => match (&window[0], &window[1], &window[2]) {
            (Stage::Bcast, Stage::Scan(a), Stage::Reduce(b))
                if a.name() == b.name() && a.is_commutative() =>
            {
                let (combine, solo) = fused::bsr_iter(a);
                let c = a.ops_per_word();
                Rewrite::rank0(vec![
                    map_pair(),
                    Stage::IterLocal {
                        combine,
                        solo,
                        all: false,
                        ops_combine: 4.0 * c,
                        ops_solo: c,
                        label: format!("op_bsr[{}]", a.name()),
                    },
                    map_pi1(),
                ])
            }
            _ => None,
        },
        Rule::CrAlllocal => match (&window[0], &window[1]) {
            (Stage::Bcast, Stage::AllReduce(op)) => {
                let (combine, solo) = fused::br_iter(op);
                Rewrite::full(vec![Stage::IterLocal {
                    combine,
                    solo,
                    all: true,
                    ops_combine: op.ops_per_word(),
                    ops_solo: 0.0,
                    label: format!("op_br[{}]", op.name()),
                }])
            }
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::semantics::eval_program;
    use crate::term::Program;
    use crate::value::Value;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    fn apply_at(prog: &Program, rule: Rule, at: usize) -> Program {
        let rw =
            try_match(rule, &prog.stages()[at..]).unwrap_or_else(|| panic!("{rule} must match"));
        prog.splice(at, window_len(rule), rw.stages)
    }

    fn rank0_only(prog: &Program, rule: Rule) -> bool {
        try_match(rule, prog.stages())
            .expect("must match")
            .rank0_only
    }

    #[test]
    fn sr2_matches_only_with_distributivity() {
        let good = Program::new().scan(lib::mul()).reduce(lib::add());
        assert!(try_match(Rule::Sr2Reduction, good.stages()).is_some());
        // add does not distribute over mul.
        let bad = Program::new().scan(lib::add()).reduce(lib::mul());
        assert!(try_match(Rule::Sr2Reduction, bad.stages()).is_none());
    }

    #[test]
    fn sr2_preserves_semantics_at_rank0() {
        // The reduce variant is a rank-0 equality: the fused term no
        // longer materializes the scan prefixes on processors 1..p.
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        assert!(rank0_only(&prog, Rule::Sr2Reduction));
        let opt = apply_at(&prog, Rule::Sr2Reduction, 0);
        for input in [vec![2i64], vec![1, 2, 3], vec![3, -1, 2, 2, 4, 1]] {
            let xs = ints(&input);
            assert_eq!(
                eval_program(&prog, &xs)[0],
                eval_program(&opt, &xs)[0],
                "{input:?}"
            );
        }
        assert_eq!(opt.collective_count(), 1);
    }

    #[test]
    fn sr2_allreduce_variant_preserves_all_positions() {
        let prog = Program::new()
            .scan(lib::add_tropical())
            .allreduce(lib::max());
        assert!(!rank0_only(&prog, Rule::Sr2Reduction));
        let opt = apply_at(&prog, Rule::Sr2Reduction, 0);
        let xs = ints(&[3, -5, 7, 1, 0, 2]);
        assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs));
    }

    #[test]
    fn sr_matches_same_commutative_op_only() {
        let good = Program::new().scan(lib::add()).reduce(lib::add());
        assert!(try_match(Rule::SrReduction, good.stages()).is_some());
        let diff_ops = Program::new().scan(lib::mul()).reduce(lib::add());
        assert!(try_match(Rule::SrReduction, diff_ops.stages()).is_none());
        let non_comm = Program::new().scan(lib::mat2mul()).reduce(lib::mat2mul());
        assert!(try_match(Rule::SrReduction, non_comm.stages()).is_none());
    }

    #[test]
    fn sr_preserves_semantics_all_sizes() {
        let prog = Program::new().scan(lib::add()).reduce(lib::add());
        let opt = apply_at(&prog, Rule::SrReduction, 0);
        for p in 1..=17usize {
            let input: Vec<i64> = (0..p as i64).map(|i| i * 3 - 4).collect();
            let xs = ints(&input);
            assert_eq!(
                eval_program(&prog, &xs)[0],
                eval_program(&opt, &xs)[0],
                "p={p}"
            );
        }
    }

    #[test]
    fn sr_allreduce_variant() {
        let prog = Program::new().scan(lib::add()).allreduce(lib::add());
        let opt = apply_at(&prog, Rule::SrReduction, 0);
        let xs = ints(&[2, 5, 9, 1, 2, 6]);
        let expected = eval_program(&prog, &xs);
        assert_eq!(expected, ints(&[86, 86, 86, 86, 86, 86]));
        assert_eq!(eval_program(&opt, &xs), expected);
    }

    #[test]
    fn ss2_preserves_semantics() {
        let prog = Program::new().scan(lib::mul()).scan(lib::add());
        let opt = apply_at(&prog, Rule::Ss2Scan, 0);
        for p in 1..=12usize {
            let input: Vec<i64> = (0..p as i64).map(|i| (i % 3) + 1).collect();
            let xs = ints(&input);
            assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs), "p={p}");
        }
    }

    #[test]
    fn ss2_requires_distinct_distributive_ops() {
        let same = Program::new().scan(lib::add()).scan(lib::add());
        assert!(try_match(Rule::Ss2Scan, same.stages()).is_none());
        let nondist = Program::new().scan(lib::add()).scan(lib::mul());
        assert!(try_match(Rule::Ss2Scan, nondist.stages()).is_none());
    }

    #[test]
    fn ss_scan_figure5_result() {
        let prog = Program::new().scan(lib::add()).scan(lib::add());
        let opt = apply_at(&prog, Rule::SsScan, 0);
        let xs = ints(&[2, 5, 9, 1, 2, 6]);
        let expected = ints(&[2, 9, 25, 42, 61, 86]);
        assert_eq!(eval_program(&prog, &xs), expected);
        assert_eq!(eval_program(&opt, &xs), expected);
    }

    #[test]
    fn ss_scan_preserves_semantics_all_sizes() {
        let prog = Program::new().scan(lib::add()).scan(lib::add());
        let opt = apply_at(&prog, Rule::SsScan, 0);
        for p in 1..=20usize {
            let input: Vec<i64> = (0..p as i64).map(|i| 7 - 2 * i).collect();
            let xs = ints(&input);
            assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs), "p={p}");
        }
    }

    #[test]
    fn bs_comcast_preserves_semantics() {
        let prog = Program::new().bcast().scan(lib::add());
        let opt = apply_at(&prog, Rule::BsComcast, 0);
        for p in 1..=16usize {
            let mut input = vec![0i64; p];
            input[0] = 5;
            let xs = ints(&input);
            assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs), "p={p}");
        }
    }

    #[test]
    fn bss2_comcast_preserves_semantics() {
        let prog = Program::new().bcast().scan(lib::mul()).scan(lib::add());
        let opt = apply_at(&prog, Rule::Bss2Comcast, 0);
        assert_eq!(opt.collective_count(), 1);
        for p in 1..=10usize {
            let mut input = vec![0i64; p];
            input[0] = 2;
            let xs = ints(&input);
            assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs), "p={p}");
        }
    }

    #[test]
    fn bss_comcast_preserves_semantics() {
        let prog = Program::new().bcast().scan(lib::add()).scan(lib::add());
        let opt = apply_at(&prog, Rule::BssComcast, 0);
        for p in 1..=16usize {
            let mut input = vec![0i64; p];
            input[0] = 3;
            let xs = ints(&input);
            assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs), "p={p}");
        }
    }

    #[test]
    fn br_local_preserves_first_component() {
        let prog = Program::new().bcast().reduce(lib::add());
        let opt = apply_at(&prog, Rule::BrLocal, 0);
        for p in 1..=20usize {
            let mut input = vec![9i64; p];
            input[0] = 4;
            let xs = ints(&input);
            let orig = eval_program(&prog, &xs);
            let local = eval_program(&opt, &xs);
            assert_eq!(orig[0], local[0], "p={p}");
            assert_eq!(local[0], Value::Int(4 * p as i64));
        }
    }

    #[test]
    fn br_local_drops_broadcast_side_effect() {
        // The paper's caveat: positions 1.. differ (b vs the old values).
        let prog = Program::new().bcast().reduce(lib::add());
        let opt = apply_at(&prog, Rule::BrLocal, 0);
        let xs = ints(&[4, 9, 9]);
        let orig = eval_program(&prog, &xs);
        let local = eval_program(&opt, &xs);
        assert_eq!(orig[1], Value::Int(4)); // broadcast happened
        assert_eq!(local[1], Value::Int(9)); // untouched
        assert!(rank0_only(&prog, Rule::BrLocal));
    }

    #[test]
    fn bsr2_local_preserves_first_component() {
        let prog = Program::new().bcast().scan(lib::mul()).reduce(lib::add());
        let opt = apply_at(&prog, Rule::Bsr2Local, 0);
        assert_eq!(opt.collective_count(), 0);
        for p in 1..=12usize {
            let mut input = vec![0i64; p];
            input[0] = 2;
            let xs = ints(&input);
            assert_eq!(
                eval_program(&prog, &xs)[0],
                eval_program(&opt, &xs)[0],
                "p={p}"
            );
        }
    }

    #[test]
    fn bsr_local_preserves_first_component() {
        let prog = Program::new().bcast().scan(lib::add()).reduce(lib::add());
        let opt = apply_at(&prog, Rule::BsrLocal, 0);
        for p in 1..=20usize {
            let mut input = vec![0i64; p];
            input[0] = 3;
            let xs = ints(&input);
            let expected = eval_program(&prog, &xs)[0].clone();
            let n = p as i64;
            assert_eq!(expected, Value::Int(3 * n * (n + 1) / 2));
            assert_eq!(eval_program(&opt, &xs)[0], expected, "p={p}");
        }
    }

    #[test]
    fn cr_alllocal_preserves_everything() {
        let prog = Program::new().bcast().allreduce(lib::add());
        assert!(!rank0_only(&prog, Rule::CrAlllocal));
        let opt = apply_at(&prog, Rule::CrAlllocal, 0);
        for p in 1..=16usize {
            let mut input = vec![7i64; p];
            input[0] = 4;
            let xs = ints(&input);
            assert_eq!(eval_program(&prog, &xs), eval_program(&opt, &xs), "p={p}");
        }
    }

    #[test]
    fn rules_work_on_blocks_too() {
        let prog = Program::new().scan(lib::mul()).allreduce(lib::add());
        let opt = apply_at(&prog, Rule::Sr2Reduction, 0);
        let input = vec![
            Value::int_list([2, 1]),
            Value::int_list([3, 5]),
            Value::int_list([1, 2]),
        ];
        assert_eq!(eval_program(&prog, &input), eval_program(&opt, &input));
    }

    #[test]
    fn window_too_short_never_matches() {
        let prog = Program::new().bcast();
        for rule in Rule::ALL {
            assert!(try_match(rule, prog.stages()).is_none(), "{rule}");
        }
    }
}
