//! The rewrite engine: where and whether to apply the optimization rules.
//!
//! The paper's design method (Sections 3–4) is: scan a program for
//! compositions of collective operations, and fuse them when the algebraic
//! side condition holds **and** the cost calculus predicts an improvement
//! on the target machine. [`Rewriter`] implements both regimes:
//!
//! * [`Rewriter::exhaustive`] applies every applicable rule — the pure
//!   semantics-preserving calculus;
//! * [`Rewriter::cost_guided`] applies a rule only when the program-level
//!   cost estimate ([`program_cost`]) strictly decreases for the given
//!   machine parameters and block size — Section 4's performance-directed
//!   programming.
//!
//! Longer windows are matched first (a `bcast; scan; scan` should become a
//! single comcast, not a comcast followed by a stray scan). Every
//! application strictly decreases the number of collective stages, so the
//! engine terminates structurally.

use collopt_cost::{collectives as ccost, MachineParams, PhaseCost};

use crate::op::{Counterexample, RequiredLaw};
use crate::rules::enabling::{self, Normalization};
use crate::rules::{self, Rule};
use crate::term::{ComcastVariant, Program, Stage};
use crate::value::Value;

/// Per-stage cost at block size `m` on machine `params`, in time units.
///
/// Collective stages follow the paper's butterfly estimates (multiplied by
/// `log p`); local `map` stages charge their declared per-element
/// operations once (no `log p` factor); `iter` stages charge `log p`
/// iterations (the power-of-two count — the balanced generalization adds
/// at most a constant factor).
pub fn stage_cost(stage: &Stage, params: &MachineParams, m: f64) -> f64 {
    match stage {
        Stage::Map { ops, .. } | Stage::MapIndexed { ops, .. } => ops * m,
        Stage::Bcast => ccost::bcast().eval(params, m),
        Stage::Scan(op) => ccost::scan(op.ops_per_word(), op.width()).eval(params, m),
        Stage::Reduce(op) | Stage::AllReduce(op) => {
            ccost::reduce(op.ops_per_word(), op.width()).eval(params, m)
        }
        Stage::ReduceBalanced {
            ops_combine,
            words_factor,
            ..
        } => ccost::reduce_balanced(*ops_combine, *words_factor as f64).eval(params, m),
        Stage::ScanBalanced {
            ops_upper,
            words_factor,
            ..
        } => ccost::scan_balanced(*ops_upper, *words_factor as f64).eval(params, m),
        Stage::Comcast {
            ops_e,
            ops_o,
            words_factor,
            variant,
            ..
        } => match variant {
            ComcastVariant::BcastRepeat => ccost::comcast_bcast_repeat(*ops_o).eval(params, m),
            ComcastVariant::CostOptimal => {
                ccost::comcast_cost_optimal(*ops_e, *ops_o, *words_factor as f64).eval(params, m)
            }
        },
        Stage::IterLocal {
            ops_combine, all, ..
        } => {
            let iter = ccost::local_iter(*ops_combine).eval(params, m);
            if *all {
                iter + ccost::bcast().eval(params, m)
            } else {
                iter
            }
        }
        // Gather/scatter move a total of (p-1)·m words through log p
        // rounds with doubling/halving message sizes; the exact cost does
        // not factor as (per-phase)·log p, so it is computed directly.
        Stage::Gather | Stage::Scatter => {
            params.log_p() * params.ts + (params.p.saturating_sub(1)) as f64 * m * params.tw
        }
        Stage::AllGather => {
            // Gather then broadcast of the p·m-word result.
            params.log_p() * params.ts
                + (params.p.saturating_sub(1)) as f64 * m * params.tw
                + ccost::bcast().eval(params, m * params.p as f64)
        }
    }
}

/// Total predicted cost of a program (sum of its stages).
pub fn program_cost(prog: &Program, params: &MachineParams, m: f64) -> f64 {
    prog.stages().iter().map(|s| stage_cost(s, params, m)).sum()
}

/// The symbolic per-phase cost of a stage, for reporting.
pub fn stage_phase_cost(stage: &Stage) -> PhaseCost {
    match stage {
        Stage::Map { ops, .. } | Stage::MapIndexed { ops, .. } => PhaseCost::new(0.0, 0.0, *ops),
        Stage::Bcast => ccost::bcast(),
        Stage::Scan(op) => ccost::scan(op.ops_per_word(), op.width()),
        Stage::Reduce(op) | Stage::AllReduce(op) => ccost::reduce(op.ops_per_word(), op.width()),
        Stage::ReduceBalanced {
            ops_combine,
            words_factor,
            ..
        } => ccost::reduce_balanced(*ops_combine, *words_factor as f64),
        Stage::ScanBalanced {
            ops_upper,
            words_factor,
            ..
        } => ccost::scan_balanced(*ops_upper, *words_factor as f64),
        Stage::Comcast {
            ops_e,
            ops_o,
            words_factor,
            variant,
            ..
        } => match variant {
            ComcastVariant::BcastRepeat => ccost::comcast_bcast_repeat(*ops_o),
            ComcastVariant::CostOptimal => {
                ccost::comcast_cost_optimal(*ops_e, *ops_o, *words_factor as f64)
            }
        },
        Stage::IterLocal {
            ops_combine, all, ..
        } => {
            let iter = ccost::local_iter(*ops_combine);
            if *all {
                iter + ccost::bcast()
            } else {
                iter
            }
        }
        // Approximation: the true gather/scatter cost has a (p-1)/log p
        // word coefficient; `stage_cost` computes it exactly.
        Stage::Gather | Stage::Scatter => PhaseCost::new(1.0, 1.0, 0.0),
        Stage::AllGather => PhaseCost::new(2.0, 2.0, 0.0),
    }
}

/// How a certificate's laws were established at rewrite time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Witness {
    /// The operators' *declared* properties were trusted without a
    /// runtime check (the default fast path).
    Declared,
    /// Every law was verified on `samples` sample values at application
    /// time ([`Rewriter::verify_properties`] / [`Rewriter::audited`]).
    Checked {
        /// Size of the sample pool the laws were checked over.
        samples: usize,
    },
}

/// A machine-checkable precondition certificate attached to every applied
/// rewrite: *which* algebraic laws of *which* operators justified the
/// rule, and how they were established. `collopt-analysis` re-validates
/// certificates end-to-end (each law carries its concrete operators, so a
/// validator can re-run the checks on any domain it likes).
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The rule the certificate justifies.
    pub rule: Rule,
    /// The side conditions, bound to the concrete operators.
    pub laws: Vec<RequiredLaw>,
    /// How the laws were established at application time.
    pub witness: Witness,
    /// Distribution state the rule's window assumes on entry (see
    /// [`crate::dist`]).
    pub dist_pre: crate::dist::DistState,
    /// Distribution state after the rewritten window; `⊥` for rank0-only
    /// applications, which discard the non-root values.
    pub dist_post: crate::dist::DistState,
}

impl Certificate {
    /// One-line summary, e.g.
    /// `"SR2-Reduction: associativity of mul, associativity of add, mul
    /// distributes over add (declared)"`.
    pub fn describe(&self) -> String {
        let laws: Vec<String> = self.laws.iter().map(RequiredLaw::describe).collect();
        let how = match self.witness {
            Witness::Declared => "declared".to_string(),
            Witness::Checked { samples } => format!("checked on {samples} samples"),
        };
        format!("{}: {} ({how})", self.rule, laws.join(", "))
    }

    /// Re-check every law on `samples`; the first violated law is
    /// returned with a shrunk counterexample.
    pub fn revalidate(&self, samples: &[Value]) -> Result<(), Counterexample> {
        for law in &self.laws {
            if let Some(cex) = law.counterexample(samples) {
                return Err(cex);
            }
        }
        Ok(())
    }
}

/// A rule application the audited engine refused because a required law
/// failed verification — the diagnostic that turns a silently-skipped
/// rewrite into an actionable report.
#[derive(Debug, Clone)]
pub struct RuleRejection {
    /// The rule that matched structurally.
    pub rule: Rule,
    /// Stage index the matched window started at (in the program as it
    /// was when the match was attempted).
    pub at: usize,
    /// The law that failed, e.g. `"commutativity of sub"`.
    pub law: String,
    /// Shrunk witness refuting the law.
    pub counterexample: Counterexample,
}

impl std::fmt::Display for RuleRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "refused {} at stage {}: {} does not hold — {}",
            self.rule, self.at, self.law, self.counterexample
        )
    }
}

/// One applied rewrite, for the optimization log.
#[derive(Debug, Clone)]
pub struct RewriteStep {
    /// The rule applied.
    pub rule: Rule,
    /// Stage index the matched window started at.
    pub at: usize,
    /// Predicted saving in time units (cost-guided mode only).
    pub saving: Option<f64>,
    /// Human-readable `before → after` of the whole program.
    pub description: String,
    /// The precondition certificate justifying this application.
    pub certificate: Certificate,
    /// Whether this application only preserves the first processor's
    /// value (the Local rules; see [`crate::rules::Rewrite::rank0_only`]).
    /// Differential checkers use this to decide which ranks an
    /// optimized/unoptimized comparison may inspect.
    pub rank0_only: bool,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The optimized program.
    pub program: Program,
    /// Every applied rewrite, in order.
    pub steps: Vec<RewriteStep>,
    /// Enabling transformations applied (map fusion, bcast/map
    /// commutation) interleaved with the rule applications.
    pub normalizations: Vec<Normalization>,
    /// Rule applications the engine refused because a required law failed
    /// verification (only populated by [`Rewriter::audited`]), deduped.
    pub rejections: Vec<RuleRejection>,
}

/// Optimization regime.
#[derive(Debug, Clone, Copy)]
enum Strategy {
    Exhaustive,
    CostGuided { params: MachineParams, block: f64 },
}

/// The rewrite engine.
#[derive(Debug, Clone)]
pub struct Rewriter {
    strategy: Strategy,
    allow_rank0_rules: bool,
    normalize: bool,
    verify_samples: Option<Vec<crate::value::Value>>,
    audited: bool,
}

/// Rules tried at each position, longest window first; within a length,
/// the more specific (distributivity) variants precede the commutative
/// ones, and Local rules precede Comcast ones (they eliminate strictly
/// more communication). Public so analysis passes (the pipeline linter)
/// report opportunities in the same order the engine would take them.
pub const RULE_PRIORITY: [Rule; 11] = [
    Rule::Bsr2Local,
    Rule::BsrLocal,
    Rule::Bss2Comcast,
    Rule::BssComcast,
    Rule::BrLocal,
    Rule::CrAlllocal,
    Rule::BsComcast,
    Rule::Sr2Reduction,
    Rule::SrReduction,
    Rule::Ss2Scan,
    Rule::SsScan,
];

impl Rewriter {
    /// Apply every applicable rule until none matches.
    pub fn exhaustive() -> Self {
        Rewriter {
            strategy: Strategy::Exhaustive,
            allow_rank0_rules: true,
            normalize: true,
            verify_samples: None,
            audited: false,
        }
    }

    /// Apply a rule only when the cost estimate for `params` at block size
    /// `block` strictly improves — the paper's performance-directed mode.
    pub fn cost_guided(params: MachineParams, block: f64) -> Self {
        Rewriter {
            strategy: Strategy::CostGuided { params, block },
            allow_rank0_rules: true,
            normalize: true,
            verify_samples: None,
            audited: false,
        }
    }

    /// Whether the engine may apply the Local rules that only preserve the
    /// first processor's value (BR-Local, BSR2-Local, BSR-Local; see
    /// [`crate::rules`] module docs). Default `true`; set `false` when the
    /// broadcast's side effect on the other processors is needed later.
    pub fn allow_rank0_rules(mut self, yes: bool) -> Self {
        self.allow_rank0_rules = yes;
        self
    }

    /// Before applying any rule, *verify* the algebraic properties its
    /// side condition relies on — associativity, commutativity,
    /// distributivity — on the given sample values (randomized checking
    /// per [`crate::rules::verify_conditions`]). A rule whose declared
    /// condition fails verification is skipped. This guards against
    /// user-defined operators with incorrect property declarations, at
    /// the cost of O(samples³) operator applications per candidate rule.
    pub fn verify_properties(mut self, samples: Vec<crate::value::Value>) -> Self {
        assert!(
            !samples.is_empty(),
            "verification needs at least one sample value"
        );
        self.verify_samples = Some(samples);
        self
    }

    /// Like [`Rewriter::verify_properties`], but *loud*: a rule whose
    /// required law fails on the samples is not silently skipped — the
    /// refusal is reported in [`OptimizeResult::rejections`] together with
    /// a shrunk counterexample, and every applied step's certificate
    /// carries a [`Witness::Checked`] witness. This is the mode the
    /// soundness analyzer (`collopt-analysis`) builds on.
    pub fn audited(mut self, samples: Vec<crate::value::Value>) -> Self {
        assert!(
            !samples.is_empty(),
            "auditing needs at least one sample value"
        );
        self.verify_samples = Some(samples);
        self.audited = true;
        self
    }

    /// Whether to apply the enabling transformations of
    /// [`crate::rules::enabling`] (map fusion, bcast/map commutation)
    /// before and between rule applications. Default `true`; they are
    /// cost-neutral and can expose fusible windows hidden behind local
    /// stages.
    pub fn with_normalization(mut self, yes: bool) -> Self {
        self.normalize = yes;
        self
    }

    /// Build the precondition certificate for applying `rule` to the
    /// window starting at `window` (which must have structurally matched).
    /// Returns `None` — refusing the application — when a required law
    /// fails verification on the configured samples, or when no laws can
    /// be extracted at all; in audited mode the refusal is recorded in
    /// `rejections` with a shrunk counterexample.
    fn certify(
        &self,
        rule: Rule,
        window: &[Stage],
        at: usize,
        rejections: &mut Vec<RuleRejection>,
    ) -> Option<Certificate> {
        let laws = rules::required_laws(rule, window)?;
        let witness = match &self.verify_samples {
            None => Witness::Declared,
            Some(samples) => {
                for law in &laws {
                    if let Some(cex) = law.counterexample(samples) {
                        if self.audited {
                            rejections.push(RuleRejection {
                                rule,
                                at,
                                law: law.describe(),
                                counterexample: cex,
                            });
                        }
                        return None;
                    }
                }
                Witness::Checked {
                    samples: samples.len(),
                }
            }
        };
        let rank0_only = rules::try_match(rule, window).is_some_and(|rw| rw.rank0_only);
        Some(Certificate {
            rule,
            laws,
            witness,
            dist_pre: crate::dist::expected_pre(rule),
            dist_post: crate::dist::expected_post(rule, rank0_only),
        })
    }

    #[allow(clippy::type_complexity)]
    fn find_step(
        &self,
        prog: &Program,
        rejections: &mut Vec<RuleRejection>,
    ) -> Option<(usize, Rule, Vec<Stage>, Option<f64>, Certificate, bool)> {
        for at in 0..prog.len() {
            for rule in RULE_PRIORITY {
                let Some(rw) = rules::try_match(rule, &prog.stages()[at..]) else {
                    continue;
                };
                if !self.allow_rank0_rules && rw.rank0_only {
                    continue;
                }
                let Some(cert) = self.certify(rule, &prog.stages()[at..], at, rejections) else {
                    continue;
                };
                let rank0_only = rw.rank0_only;
                let replacement = rw.stages;
                match self.strategy {
                    Strategy::Exhaustive => {
                        return Some((at, rule, replacement, None, cert, rank0_only))
                    }
                    Strategy::CostGuided { params, block } => {
                        let candidate =
                            prog.splice(at, rules::window_len(rule), replacement.clone());
                        let saving = program_cost(prog, &params, block)
                            - program_cost(&candidate, &params, block);
                        if saving > 0.0 {
                            return Some((at, rule, replacement, Some(saving), cert, rank0_only));
                        }
                    }
                }
            }
        }
        None
    }

    /// Globally optimal rewriting: the reachable program with the least
    /// predicted cost for `(params, m)`, found by equality saturation
    /// with cost-model extraction ([`crate::egraph`]).
    ///
    /// Greedy first-match rewriting is not always optimal: on
    /// `scan(⊕); scan(⊕); reduce(⊕)` it fuses the two scans first
    /// (SS-Scan), blocking the cheaper plan that leaves the first scan
    /// alone and fuses `scan; reduce` (SR-Reduction) — per-phase
    /// `2ts + 3m·tw + 6m` versus the greedy `2ts + 4m·tw + 9m`.
    ///
    /// Ties are broken deterministically "RHS never worse": at equal cost
    /// the extraction prefers fewer collectives, then fewer stages, then
    /// the lexicographically least normalized rendering. The returned
    /// steps replay the extracted program as a concrete certificate-
    /// carrying derivation; in audited mode refused laws appear in
    /// `rejections` with shrunk witnesses, deduped exactly like
    /// [`Rewriter::optimize`]. The historical brute-force enumeration is
    /// kept as [`Rewriter::optimize_brute_force`] — a test oracle this
    /// search is checked against on every fuzz-generated pipeline.
    pub fn optimize_optimal(
        &self,
        prog: &Program,
        params: &MachineParams,
        m: f64,
    ) -> OptimizeResult {
        self.saturate(prog, params, m).result
    }

    /// [`Rewriter::optimize_optimal`] with the e-graph's effort counters —
    /// node/class/application counts, budget exhaustion — for callers that
    /// surface search statistics (the `collopt saturate` CLI, benches).
    pub fn saturate(
        &self,
        prog: &Program,
        params: &MachineParams,
        m: f64,
    ) -> crate::egraph::SaturationOutcome {
        let mut cfg = crate::egraph::SaturateConfig::new(*params, m)
            .allow_rank0_rules(self.allow_rank0_rules)
            .with_normalization(self.normalize);
        if let Some(samples) = &self.verify_samples {
            cfg = if self.audited {
                cfg.audited(samples.clone())
            } else {
                cfg.verify_properties(samples.clone())
            };
        }
        crate::egraph::saturate_program(prog, &cfg)
    }

    /// The pre-saturation exhaustive search: explore *every* order of rule
    /// applications (the rewrite relation is finitely branching and
    /// terminating, so the reachable set is finite) and return the
    /// reachable program minimizing the same deterministic key as the
    /// e-graph extraction — `(cost, collectives, stages, rendering)`.
    ///
    /// Exponential in the number of fusible windows; kept as the
    /// *optimality oracle* the saturation search is differentially tested
    /// against (`crates/fuzz`'s fourth oracle requires bit-identical
    /// programs and costs on every generated pipeline of ≤ 6 stages).
    pub fn optimize_brute_force(
        &self,
        prog: &Program,
        params: &MachineParams,
        m: f64,
    ) -> OptimizeResult {
        let (start, start_norms) = if self.normalize {
            enabling::normalize(prog)
        } else {
            (prog.clone(), Vec::new())
        };
        let mut best_prog = start.clone();
        let mut best_key = brute_key(&start, params, m);
        let mut best_steps: Vec<RewriteStep> = Vec::new();
        let mut best_norms: Vec<Normalization> = Vec::new();
        let mut rejections = Vec::new();
        let mut seen = std::collections::HashSet::new();
        seen.insert(start.to_string());
        type State = (Program, Vec<RewriteStep>, Vec<Normalization>);
        let mut stack: Vec<State> = vec![(start, Vec::new(), Vec::new())];
        while let Some((current, steps, norms)) = stack.pop() {
            for at in 0..current.len() {
                for rule in RULE_PRIORITY {
                    let Some(rw) = rules::try_match(rule, &current.stages()[at..]) else {
                        continue;
                    };
                    if !self.allow_rank0_rules && rw.rank0_only {
                        continue;
                    }
                    let Some(cert) =
                        self.certify(rule, &current.stages()[at..], at, &mut rejections)
                    else {
                        continue;
                    };
                    let rank0_only = rw.rank0_only;
                    let mut next = current.splice(at, rules::window_len(rule), rw.stages);
                    let mut next_norms = norms.clone();
                    if self.normalize {
                        let (p, log) = enabling::normalize(&next);
                        next = p;
                        next_norms.extend(log);
                    }
                    if !seen.insert(next.to_string()) {
                        continue;
                    }
                    let mut next_steps = steps.clone();
                    next_steps.push(RewriteStep {
                        rule,
                        at,
                        saving: Some(
                            program_cost(&current, params, m) - program_cost(&next, params, m),
                        ),
                        description: format!("{current}  →[{rule}]→  {next}"),
                        certificate: cert,
                        rank0_only,
                    });
                    let key = brute_key(&next, params, m);
                    if key < best_key {
                        best_key = key;
                        best_prog = next.clone();
                        best_steps = next_steps.clone();
                        best_norms = next_norms.clone();
                    }
                    stack.push((next, next_steps, next_norms));
                }
            }
        }
        let mut normalizations = start_norms;
        normalizations.extend(best_norms);
        OptimizeResult {
            program: best_prog,
            steps: best_steps,
            normalizations,
            rejections: dedupe_rejections(rejections),
        }
    }

    /// Run the engine to fixpoint.
    pub fn optimize(&self, prog: &Program) -> OptimizeResult {
        let mut normalizations = Vec::new();
        let mut current = if self.normalize {
            let (p, log) = enabling::normalize(prog);
            normalizations.extend(log);
            p
        } else {
            prog.clone()
        };
        let mut steps = Vec::new();
        let mut rejections = Vec::new();
        // Each application removes at least one collective stage, so
        // `collective_count` bounds the iteration; the explicit cap is a
        // belt-and-braces guard.
        let cap = prog.collective_count() + 1;
        for _ in 0..cap {
            let Some((at, rule, replacement, saving, cert, rank0_only)) =
                self.find_step(&current, &mut rejections)
            else {
                break;
            };
            let next = current.splice(at, rules::window_len(rule), replacement);
            steps.push(RewriteStep {
                rule,
                at,
                saving,
                description: format!("{current}  →[{rule}]→  {next}"),
                certificate: cert,
                rank0_only,
            });
            current = next;
            if self.normalize {
                let (p, log) = enabling::normalize(&current);
                normalizations.extend(log);
                current = p;
            }
        }
        OptimizeResult {
            program: current,
            steps,
            normalizations,
            rejections: dedupe_rejections(rejections),
        }
    }
}

/// The deterministic comparison key shared by the brute-force oracle and
/// the e-graph extraction: cost (summed tail-first, exactly as the
/// extraction fixpoint accumulates it, so float ties agree bit-for-bit),
/// then collective count, then stage count, then the rendering. Costs are
/// non-negative finite, so the bit pattern preserves their order.
fn brute_key(prog: &Program, params: &MachineParams, m: f64) -> (u64, usize, usize, String) {
    let cost = prog
        .stages()
        .iter()
        .rev()
        .fold(0.0, |acc: f64, s| acc + stage_cost(s, params, m));
    (
        cost.to_bits(),
        prog.collective_count(),
        prog.len(),
        prog.to_string(),
    )
}

/// Deduplicate rejections by (rule, failed law): the fixpoint loop and the
/// optimal search both revisit the same refused window many times.
pub(crate) fn dedupe_rejections(raw: Vec<RuleRejection>) -> Vec<RuleRejection> {
    let mut seen = std::collections::HashSet::new();
    raw.into_iter()
        .filter(|r| seen.insert(format!("{}|{}", r.rule, r.law)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::semantics::eval_program;
    use crate::term::Program;
    use crate::value::Value;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    /// The paper's running Example (Section 2.1):
    /// `map f ; scan(⊗) ; reduce(⊕) ; map g ; bcast`.
    fn example_program() -> Program {
        Program::new()
            .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::mul())
            .reduce(lib::add())
            .map("g", 1.0, |v| Value::Int(v.as_int() * 2))
            .bcast()
    }

    #[test]
    fn exhaustive_fuses_the_example_scan_reduce() {
        let prog = example_program();
        let res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert_eq!(res.steps[0].rule, Rule::Sr2Reduction);
        assert_eq!(res.program.collective_count(), 2); // fused reduce + bcast
        let xs = ints(&[0, 1, 2, 3]);
        assert_eq!(eval_program(&prog, &xs), eval_program(&res.program, &xs));
    }

    #[test]
    fn program_composition_exposes_bcast_scan_fusion() {
        // Example ; Next_Example (Figure 1): the trailing bcast meets the
        // next program's leading scan.
        let next = Program::new().scan(lib::add());
        let prog = example_program().then(next);
        let res = Rewriter::exhaustive().optimize(&prog);
        let rules_applied: Vec<Rule> = res.steps.iter().map(|s| s.rule).collect();
        assert!(rules_applied.contains(&Rule::Sr2Reduction));
        assert!(rules_applied.contains(&Rule::BsComcast));
        let xs = ints(&[1, 0, 2, 1, 3]);
        assert_eq!(eval_program(&prog, &xs), eval_program(&res.program, &xs));
    }

    #[test]
    fn triple_window_beats_two_pairwise_rules() {
        let prog = Program::new().bcast().scan(lib::add()).scan(lib::add());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert_eq!(res.steps[0].rule, Rule::BssComcast);
        assert_eq!(res.program.collective_count(), 1);
    }

    #[test]
    fn bsr2_window_collapses_to_local() {
        let prog = Program::new().bcast().scan(lib::mul()).reduce(lib::add());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert_eq!(res.steps[0].rule, Rule::Bsr2Local);
        assert_eq!(res.program.collective_count(), 0);
    }

    #[test]
    fn rank0_rules_can_be_disabled() {
        let prog = Program::new().bcast().reduce(lib::add());
        let res = Rewriter::exhaustive()
            .allow_rank0_rules(false)
            .optimize(&prog);
        assert!(res.steps.is_empty(), "BR-Local must be skipped");
        // CR-Alllocal stays available (it preserves all ranks).
        let prog2 = Program::new().bcast().allreduce(lib::add());
        let res2 = Rewriter::exhaustive()
            .allow_rank0_rules(false)
            .optimize(&prog2);
        assert_eq!(res2.steps.len(), 1);
        assert_eq!(res2.steps[0].rule, Rule::CrAlllocal);
    }

    #[test]
    fn cost_guided_applies_always_rules_everywhere() {
        // SR2 is an "always" rule: any machine, any block size.
        for (ts, tw, m) in [(200.0, 2.0, 1.0), (1.0, 0.1, 1e6), (0.5, 10.0, 64.0)] {
            let params = MachineParams::new(64, ts, tw);
            let prog = Program::new().scan(lib::mul()).reduce(lib::add());
            let res = Rewriter::cost_guided(params, m).optimize(&prog);
            assert_eq!(res.steps.len(), 1, "ts={ts} tw={tw} m={m}");
            assert!(res.steps[0].saving.unwrap() > 0.0);
        }
    }

    #[test]
    fn cost_guided_respects_ss2_condition() {
        // SS2-Scan pays off iff ts > 2m (§4.2).
        let prog = Program::new().scan(lib::mul()).scan(lib::add());
        let good = MachineParams::new(64, 100.0, 2.0); // ts=100 > 2m for m=10
        let res = Rewriter::cost_guided(good, 10.0).optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        let bad = MachineParams::new(64, 100.0, 2.0); // m=100: ts < 200
        let res = Rewriter::cost_guided(bad, 100.0).optimize(&prog);
        assert!(res.steps.is_empty());
    }

    #[test]
    fn cost_guided_saving_matches_cost_difference() {
        let params = MachineParams::new(16, 150.0, 1.0);
        let m = 4.0;
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let before = program_cost(&prog, &params, m);
        let res = Rewriter::cost_guided(params, m).optimize(&prog);
        let after = program_cost(&res.program, &params, m);
        let reported: f64 = res.steps.iter().filter_map(|s| s.saving).sum();
        assert!((before - after - reported).abs() < 1e-9);
    }

    #[test]
    fn stage_costs_match_table1_for_rule_sides() {
        // The stage-level cost of `scan(x1); reduce(x1)` must equal the
        // Table-1 "before" of SR2, and the fused side its "after".
        let params = MachineParams::new(64, 100.0, 2.0);
        let m = 8.0;
        let lhs = Program::new().scan(lib::mul()).reduce(lib::add());
        let est = Rule::Sr2Reduction.estimate();
        assert_eq!(program_cost(&lhs, &params, m), est.before.eval(&params, m));
        let res = Rewriter::exhaustive().optimize(&lhs);
        assert_eq!(
            program_cost(&res.program, &params, m),
            est.after.eval(&params, m)
        );
    }

    #[test]
    fn optimizer_is_idempotent() {
        let prog = example_program();
        let once = Rewriter::exhaustive().optimize(&prog);
        let twice = Rewriter::exhaustive().optimize(&once.program);
        assert!(twice.steps.is_empty());
        assert_eq!(twice.program.to_string(), once.program.to_string());
    }

    #[test]
    fn no_rules_on_unrelated_programs() {
        let prog = Program::new()
            .map("f", 1.0, |v| v.clone())
            .reduce(lib::add())
            .map("g", 1.0, |v| v.clone())
            .scan(lib::add());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert!(
            res.steps.is_empty(),
            "reduce;map;scan has no fusible window"
        );
    }

    #[test]
    fn optimal_search_beats_greedy_on_scan_scan_reduce() {
        // Greedy fuses scan;scan first (SS-Scan) and gets stuck with
        // scan_balanced + reduce; the optimal plan keeps the first scan
        // and fuses scan;reduce (SR-Reduction).
        let params = MachineParams::new(64, 100.0, 2.0);
        let m = 8.0;
        let prog = Program::new()
            .scan(lib::add())
            .scan(lib::add())
            .reduce(lib::add());
        let greedy = Rewriter::exhaustive().optimize(&prog);
        let optimal = Rewriter::exhaustive().optimize_optimal(&prog, &params, m);
        let g = program_cost(&greedy.program, &params, m);
        let o = program_cost(&optimal.program, &params, m);
        assert!(o < g, "optimal {o} must beat greedy {g}");
        assert_eq!(optimal.steps.len(), 1);
        assert_eq!(optimal.steps[0].rule, Rule::SrReduction);
        // Semantics at rank 0 still agree with the original.
        let input: Vec<Value> = (0..6i64).map(Value::Int).collect();
        assert_eq!(
            crate::semantics::eval_program(&prog, &input)[0],
            crate::semantics::eval_program(&optimal.program, &input)[0]
        );
    }

    #[test]
    fn optimal_search_agrees_with_greedy_when_unambiguous() {
        let params = MachineParams::parsytec_like(64);
        for prog in [
            Program::new().scan(lib::mul()).reduce(lib::add()),
            Program::new().bcast().scan(lib::add()),
            Program::new().bcast().scan(lib::mul()).scan(lib::add()),
        ] {
            let greedy = Rewriter::exhaustive().optimize(&prog);
            let optimal = Rewriter::exhaustive().optimize_optimal(&prog, &params, 4.0);
            assert_eq!(
                program_cost(&greedy.program, &params, 4.0),
                program_cost(&optimal.program, &params, 4.0),
                "{prog}"
            );
        }
    }

    #[test]
    fn optimal_search_never_worsens_the_program() {
        let params = MachineParams::low_latency(64);
        // At huge m nothing pays off: the optimum is the original.
        let prog = Program::new().scan(lib::add()).scan(lib::add());
        let res = Rewriter::exhaustive().optimize_optimal(&prog, &params, 1e6);
        assert!(res.steps.is_empty());
        assert_eq!(res.program.to_string(), prog.to_string());
    }

    #[test]
    fn every_step_carries_a_revalidatable_certificate() {
        let prog = example_program();
        let res = Rewriter::exhaustive().optimize(&prog);
        assert!(!res.steps.is_empty());
        let samples = ints(&[-3, -1, 0, 1, 2, 5]);
        for step in &res.steps {
            assert_eq!(step.certificate.rule, step.rule);
            assert!(!step.certificate.laws.is_empty());
            assert_eq!(step.certificate.witness, Witness::Declared);
            step.certificate
                .revalidate(&samples)
                .expect("library operators satisfy their declared laws");
        }
    }

    #[test]
    fn audited_steps_record_checked_witness() {
        let samples = ints(&[-2, 0, 1, 3]);
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let res = Rewriter::exhaustive().audited(samples).optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert_eq!(
            res.steps[0].certificate.witness,
            Witness::Checked { samples: 4 }
        );
        assert!(res.rejections.is_empty());
        assert!(res.steps[0].certificate.describe().contains("checked on 4"));
    }

    #[test]
    fn audited_mode_rejects_lying_operator_with_shrunk_counterexample() {
        // `sub` is not commutative, but we *declare* it so: the audited
        // engine must refuse SR-Reduction and report why.
        let lying_sub =
            crate::op::BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative();
        let prog = Program::new().scan(lying_sub.clone()).reduce(lying_sub);
        let samples = ints(&[-5, -2, 0, 1, 3, 7]);
        let res = Rewriter::exhaustive()
            .audited(samples.clone())
            .optimize(&prog);
        assert!(res.steps.is_empty(), "the lying rule must not fire");
        assert_eq!(res.rejections.len(), 1);
        let rej = &res.rejections[0];
        assert_eq!(rej.rule, Rule::SrReduction);
        assert!(rej.law.contains("of sub"), "law: {}", rej.law);
        assert!(
            rej.counterexample.distinct_values() <= 3,
            "counterexample should be shrunk: {}",
            rej.counterexample
        );
        // verify_properties stays silent (pre-existing behavior).
        let quiet_sub =
            crate::op::BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative();
        let quiet = Rewriter::exhaustive()
            .verify_properties(samples)
            .optimize(&Program::new().scan(quiet_sub.clone()).reduce(quiet_sub));
        assert!(quiet.steps.is_empty());
        assert!(quiet.rejections.is_empty());
    }

    #[test]
    fn optimal_reports_normalizations_for_normalizable_inputs() {
        // Regression: `optimize_optimal` used to hard-code
        // `normalizations: Vec::new()`. Both the saturation path and the
        // brute-force oracle must report the bcast/map commutation this
        // input needs before any rule can fire.
        let params = MachineParams::new(64, 200.0, 2.0);
        let prog = Program::new()
            .bcast()
            .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::add());
        for res in [
            Rewriter::exhaustive().optimize_optimal(&prog, &params, 4.0),
            Rewriter::exhaustive().optimize_brute_force(&prog, &params, 4.0),
        ] {
            assert!(
                res.normalizations
                    .iter()
                    .any(|n| matches!(n, Normalization::BcastMapCommute { .. })),
                "normalizations must be reported: {:?}",
                res.normalizations
            );
        }
    }

    #[test]
    fn saturation_agrees_with_the_brute_force_oracle() {
        let params = MachineParams::new(64, 100.0, 2.0);
        let programs = [
            Program::new()
                .scan(lib::add())
                .scan(lib::add())
                .reduce(lib::add()),
            Program::new()
                .bcast()
                .scan(lib::mul())
                .scan(lib::add())
                .reduce(lib::add()),
            Program::new().gather().scatter().reduce(lib::add()),
            example_program(),
        ];
        for m in [1.0, 8.0, 1e4] {
            for prog in &programs {
                let sat = Rewriter::exhaustive().optimize_optimal(prog, &params, m);
                let brute = Rewriter::exhaustive().optimize_brute_force(prog, &params, m);
                assert_eq!(
                    sat.program.to_string(),
                    brute.program.to_string(),
                    "m={m} on {prog}"
                );
                assert_eq!(
                    program_cost(&sat.program, &params, m).to_bits(),
                    program_cost(&brute.program, &params, m).to_bits(),
                    "m={m} on {prog}"
                );
            }
        }
    }

    #[test]
    fn optimal_audited_mode_rejects_like_the_greedy_path() {
        let lying_sub =
            crate::op::BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative();
        let prog = Program::new().scan(lying_sub.clone()).reduce(lying_sub);
        let params = MachineParams::new(64, 100.0, 2.0);
        let samples = ints(&[-5, -2, 0, 1, 3, 7]);
        let res = Rewriter::exhaustive()
            .audited(samples)
            .optimize_optimal(&prog, &params, 8.0);
        assert!(res.steps.is_empty(), "the lying rule must not fire");
        assert_eq!(res.rejections.len(), 1, "rejections must be deduped");
        assert_eq!(res.rejections[0].rule, Rule::SrReduction);
        assert!(res.rejections[0].counterexample.distinct_values() <= 3);
    }

    #[test]
    fn log_describes_each_step() {
        let prog = Program::new().bcast().scan(lib::add());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        assert!(res.steps[0].description.contains("BS-Comcast"));
        assert!(res.steps[0].description.contains("bcast ; scan(add)"));
    }
}
