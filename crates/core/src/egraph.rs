//! Equality saturation over stage sequences — the exact rewrite search.
//!
//! [`Rewriter::optimize_optimal`](crate::rewrite::Rewriter::optimize_optimal)
//! used to brute-force every order of rule applications: exponential in the
//! number of fusible windows. This module replaces it with a small,
//! dependency-free e-graph specialized to the shape of our terms.
//!
//! ## Representation
//!
//! A program is a *cons list* of stages, so e-nodes have exactly two
//! shapes: `nil` (the empty program) and `cons(stage, tail)` where `tail`
//! is an e-class. Stages are interned by a structural key
//! (`stage_key`) — the same identification the rest of the engine uses
//! (`Program::to_string` keyed deduplication) extended with every numeric
//! cost field, so two stages share an id only when they are
//! indistinguishable to both the semantics display and the cost model.
//! E-nodes are hash-consed on `(stage_id, find(tail))`; e-classes live in a
//! union-find, and a congruence `rebuild` re-canonicalizes cons nodes whose
//! tails merged (merging them upward), which is what makes the search
//! complete with respect to the brute-force enumeration.
//!
//! ## Saturation
//!
//! Matching walks concrete node paths `n0 → n1 [→ n2]` (a window of 2–3
//! stages), tries every Table-1 rule of that window length via
//! [`rules::try_match`], and — when the rule's laws certify exactly as in
//! [`Rewriter::certify`](crate::rewrite::Rewriter) — builds the
//! replacement chain over the path's residual tail and unions it with the
//! head's class. The enabling normalizations (map fusion, bcast/map
//! commutation, gather/scatter elimination) run as additional 2-window
//! rewrites. Refuted laws exclude the match; in audited mode the refusal
//! is recorded with a shrunk counterexample, deduped per `(rule, law)`
//! exactly like the greedy engine.
//!
//! Termination: every rule strictly reduces a chain's collective count and
//! the fused forms never re-match any rule, so the stage alphabet and the
//! chain population are finite. An explicit [`SaturateConfig::node_budget`]
//! bounds the graph anyway; exhausting it stops *expansion* but extraction
//! and replay stay sound over whatever was built.
//!
//! ## Extraction — "RHS never worse"
//!
//! Each class gets the lexicographically least `(cost, collectives,
//! length)` over its members (a Bellman-style fixpoint; the optimum
//! sub-graph is acyclic because length strictly decreases along tails).
//! Preferring fewer collectives, then shorter programs, at equal cost is
//! precisely the "RHS never worse than LHS" tie-break: every rule's RHS
//! has strictly fewer collectives and no normalization grows a program.
//! Remaining ties are broken by enumerating the (capped) optimal chains,
//! normalizing each, and taking the lexicographically least rendering —
//! fully deterministic, independent of hash iteration order and worker
//! count.
//!
//! ## Certificate replay
//!
//! The extracted program is replayed as a concrete [`RewriteStep`] path: a
//! breadth-first search from the normalized input in which the only
//! transitions are rule events the saturation actually recorded (each
//! carrying the [`Certificate`] minted when it fired), and
//! every intermediate program must still be representable in the e-graph
//! (checked by walking the hash-cons). Equality saturation only ever grows
//! the set of forward-reachable programs, so the target is reachable and
//! the BFS yields a shortest certificate-carrying derivation, revalidated
//! downstream by `collopt-analysis::certify`.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use collopt_cost::MachineParams;

use crate::rewrite::{
    dedupe_rejections, program_cost, stage_cost, Certificate, OptimizeResult, RewriteStep,
    Rewriter, RuleRejection, Witness, RULE_PRIORITY,
};
use crate::rules::enabling::{self, Normalization};
use crate::rules::{self, Rule};
use crate::term::{Program, Stage};
use crate::value::Value;

/// Default cap on e-graph nodes; generous — a 12-collective chain
/// saturates in well under a thousand nodes.
pub const DEFAULT_NODE_BUDGET: usize = 10_000;

/// Cap on equal-value chains enumerated per class for the final
/// lexicographic tie-break.
const CANDIDATE_CAP: usize = 64;

/// Cap on concrete programs the certificate replay may visit.
const REPLAY_STATE_CAP: usize = 100_000;

/// Sentinel stage id for the `nil` e-node.
const NIL: usize = usize::MAX;

/// Tags for the enabling normalizations in the applied-rewrite ledger
/// (rule tags occupy `0..RULE_PRIORITY.len()`).
const TAG_MAP_FUSE: u32 = 100;
const TAG_BCAST_MAP: u32 = 101;
const TAG_GATHER_SCATTER: u32 = 102;

/// A predicate consulted before certifying a structural match; returning
/// `false` silently excludes the rule for that window. The linter installs
/// one backed by its per-domain sampling so saturation respects the same
/// lying-declaration gates as the windowed passes did.
pub type LawGate = Arc<dyn Fn(Rule, &[Stage]) -> bool + Send + Sync>;

/// Configuration for one saturation run. Mirrors the knobs of
/// [`Rewriter`]: rank-0 rules, normalization, verified/audited law
/// checking — plus the cost model `(params, m)` extraction minimizes and
/// the node budget.
#[derive(Clone)]
pub struct SaturateConfig {
    /// Machine the extraction cost model targets.
    pub params: MachineParams,
    /// Block size (words per processor) for the cost model.
    pub m: f64,
    /// Hard cap on e-graph nodes; see [`DEFAULT_NODE_BUDGET`].
    pub node_budget: usize,
    /// Allow the Local rules that only preserve rank 0's value.
    pub allow_rank0_rules: bool,
    /// Apply the enabling normalizations (as saturation rewrites and when
    /// canonicalizing extracted/replayed programs).
    pub normalize: bool,
    /// Verify required laws on these samples before certifying a match.
    pub verify_samples: Option<Vec<Value>>,
    /// Record refusals (with shrunk counterexamples) in `rejections`.
    pub audited: bool,
    /// Extra per-window admission predicate (see [`LawGate`]).
    pub law_gate: Option<LawGate>,
}

impl SaturateConfig {
    /// Defaults matching `Rewriter::exhaustive()` plus the given cost
    /// model: rank-0 rules allowed, normalization on, laws trusted.
    pub fn new(params: MachineParams, m: f64) -> Self {
        SaturateConfig {
            params,
            m,
            node_budget: DEFAULT_NODE_BUDGET,
            allow_rank0_rules: true,
            normalize: true,
            verify_samples: None,
            audited: false,
            law_gate: None,
        }
    }

    /// Override the node budget.
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = nodes.max(2);
        self
    }

    /// See [`Rewriter::allow_rank0_rules`].
    pub fn allow_rank0_rules(mut self, yes: bool) -> Self {
        self.allow_rank0_rules = yes;
        self
    }

    /// See [`Rewriter::with_normalization`].
    pub fn with_normalization(mut self, yes: bool) -> Self {
        self.normalize = yes;
        self
    }

    /// See [`Rewriter::verify_properties`].
    pub fn verify_properties(mut self, samples: Vec<Value>) -> Self {
        assert!(
            !samples.is_empty(),
            "verification needs at least one sample value"
        );
        self.verify_samples = Some(samples);
        self
    }

    /// See [`Rewriter::audited`].
    pub fn audited(mut self, samples: Vec<Value>) -> Self {
        assert!(
            !samples.is_empty(),
            "auditing needs at least one sample value"
        );
        self.verify_samples = Some(samples);
        self.audited = true;
        self
    }

    /// Install a per-window admission predicate.
    pub fn law_gate(mut self, gate: LawGate) -> Self {
        self.law_gate = Some(gate);
        self
    }
}

impl std::fmt::Debug for SaturateConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaturateConfig")
            .field("params", &self.params)
            .field("m", &self.m)
            .field("node_budget", &self.node_budget)
            .field("allow_rank0_rules", &self.allow_rank0_rules)
            .field("normalize", &self.normalize)
            .field("audited", &self.audited)
            .field("law_gate", &self.law_gate.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// Size/effort counters for one saturation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaturationStats {
    /// E-nodes built (including `nil`).
    pub nodes: usize,
    /// Canonical e-classes after the final rebuild.
    pub classes: usize,
    /// Distinct rule events recorded (per stage-id window).
    pub rule_applications: usize,
    /// Class merges performed.
    pub unions: usize,
    /// `true` when the node budget stopped expansion early.
    pub budget_exhausted: bool,
    /// Concrete programs the certificate replay visited.
    pub replay_states: usize,
    /// `true` when replay gave up and the greedy engine supplied the
    /// result (only possible under an exhausted budget).
    pub replay_fell_back: bool,
}

/// A finished saturation: the optimization result plus effort counters.
#[derive(Debug, Clone)]
pub struct SaturationOutcome {
    /// Extracted program, replayed steps, normalizations and rejections —
    /// same contract as the greedy engine's result.
    pub result: OptimizeResult,
    /// Effort counters.
    pub stats: SaturationStats,
}

/// Saturate `prog` under `cfg` and extract the cost-least program together
/// with a certificate-carrying derivation. This is what
/// [`Rewriter::optimize_optimal`] delegates to.
pub fn saturate_program(prog: &Program, cfg: &SaturateConfig) -> SaturationOutcome {
    let (start, init_norms) = if cfg.normalize {
        enabling::normalize(prog)
    } else {
        (prog.clone(), Vec::new())
    };
    let mut eg = EGraph::new(cfg.clone());
    let root = eg.insert_chain(&start);
    eg.run();
    let root = eg.find(root);
    let best = eg.extract(root);
    match eg.replay(&start, &best) {
        Some((steps, norms)) => {
            let mut normalizations = init_norms;
            normalizations.extend(norms);
            let rejections = dedupe_rejections(std::mem::take(&mut eg.rejections));
            SaturationOutcome {
                result: OptimizeResult {
                    program: best,
                    steps,
                    normalizations,
                    rejections,
                },
                stats: eg.stats,
            }
        }
        None => {
            // Only reachable when the node budget cut saturation short and
            // the extracted chain's derivation was truncated with it: fall
            // back to the (sound, certified, possibly suboptimal) greedy
            // engine so callers always get a replayable result.
            eg.stats.replay_fell_back = true;
            let mut rw = Rewriter::cost_guided(cfg.params, cfg.m)
                .allow_rank0_rules(cfg.allow_rank0_rules)
                .with_normalization(cfg.normalize);
            if let Some(samples) = &cfg.verify_samples {
                rw = if cfg.audited {
                    rw.audited(samples.clone())
                } else {
                    rw.verify_properties(samples.clone())
                };
            }
            let mut result = rw.optimize(prog);
            let mut rejections = std::mem::take(&mut eg.rejections);
            rejections.extend(result.rejections);
            result.rejections = dedupe_rejections(rejections);
            SaturationOutcome {
                result,
                stats: eg.stats,
            }
        }
    }
}

/// Structural identity for stage interning: the display form plus every
/// numeric cost field, so ids conflate exactly the stages the engine
/// already treats as interchangeable (`Program::to_string` keyed
/// deduplication) and never two stages the cost model can tell apart.
fn stage_key(stage: &Stage) -> String {
    let op_key = |op: &crate::op::BinOp| {
        format!(
            "{}|{}|{}|{}{}",
            op.name(),
            op.ops_per_word(),
            op.width(),
            u8::from(op.is_associative()),
            u8::from(op.is_commutative()),
        )
    };
    match stage {
        Stage::Map { ops, label, .. } => format!("map|{label}|{ops}"),
        Stage::MapIndexed { ops, label, .. } => format!("map#|{label}|{ops}"),
        Stage::Bcast => "bcast".to_string(),
        Stage::Scan(op) => format!("scan|{}", op_key(op)),
        Stage::Reduce(op) => format!("reduce|{}", op_key(op)),
        Stage::AllReduce(op) => format!("allreduce|{}", op_key(op)),
        Stage::ReduceBalanced {
            all,
            ops_combine,
            ops_solo,
            words_factor,
            label,
            ..
        } => format!("reduce_bal|{label}|{all}|{ops_combine}|{ops_solo}|{words_factor}"),
        Stage::ScanBalanced {
            ops_lower,
            ops_upper,
            ops_solo,
            words_factor,
            label,
            ..
        } => format!("scan_bal|{label}|{ops_lower}|{ops_upper}|{ops_solo}|{words_factor}"),
        Stage::Comcast {
            ops_e,
            ops_o,
            words_factor,
            variant,
            label,
            ..
        } => format!("comcast|{label}|{ops_e}|{ops_o}|{words_factor}|{variant:?}"),
        Stage::Gather => "gather".to_string(),
        Stage::Scatter => "scatter".to_string(),
        Stage::AllGather => "allgather".to_string(),
        Stage::IterLocal {
            all,
            ops_combine,
            ops_solo,
            label,
            ..
        } => format!("iter|{label}|{all}|{ops_combine}|{ops_solo}"),
    }
}

fn rule_tag(rule: Rule) -> u32 {
    RULE_PRIORITY
        .iter()
        .position(|r| *r == rule)
        .expect("rule in priority order") as u32
}

/// `cons(stage, tail-class)`; `stage == NIL` marks the nil node.
struct ENode {
    stage: usize,
    tail: usize,
}

#[derive(Default)]
struct EClass {
    /// Member node ids (with duplicates after merges; deduped on read).
    nodes: Vec<usize>,
    /// Cons nodes whose tail is (or was) this class.
    parents: Vec<usize>,
}

/// A recorded rule firing: enough provenance to replay it concretely.
struct Event {
    rule: Rule,
    replacement: Vec<usize>,
    certificate: Certificate,
    rank0_only: bool,
}

/// Per-class extraction value; ordered lexicographically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Extract {
    cost: f64,
    collectives: u64,
    len: u64,
}

impl Extract {
    fn beats(&self, other: &Extract) -> bool {
        if self.cost != other.cost {
            return self.cost < other.cost;
        }
        if self.collectives != other.collectives {
            return self.collectives < other.collectives;
        }
        self.len < other.len
    }
}

struct EGraph {
    cfg: SaturateConfig,
    /// Interned stages and their per-id cost-model values.
    stages: Vec<Stage>,
    stage_costs: Vec<f64>,
    stage_coll: Vec<bool>,
    stage_ids: HashMap<String, usize>,
    nodes: Vec<ENode>,
    /// Hash-cons: `(stage, canonical tail class) → node`.
    node_ids: HashMap<(usize, usize), usize>,
    classes: Vec<EClass>,
    /// Union-find parents over class ids.
    uf: Vec<usize>,
    node_class: Vec<usize>,
    worklist: VecDeque<usize>,
    /// Node paths already attempted, per rewrite tag.
    attempted: HashSet<(u32, Vec<usize>)>,
    /// Certification results per `(tag, stage-id window)` — also dedupes
    /// audited rejections at the source.
    cert_cache: HashMap<(u32, Vec<usize>), Option<Certificate>>,
    events: Vec<Event>,
    event_ids: HashMap<(u32, Vec<usize>), usize>,
    /// Original-chain depth per node, for rejection reporting.
    depth_hint: HashMap<usize, usize>,
    rejections: Vec<RuleRejection>,
    nil_class: usize,
    dirty: bool,
    stats: SaturationStats,
}

impl EGraph {
    fn new(cfg: SaturateConfig) -> Self {
        let mut eg = EGraph {
            cfg,
            stages: Vec::new(),
            stage_costs: Vec::new(),
            stage_coll: Vec::new(),
            stage_ids: HashMap::new(),
            nodes: Vec::new(),
            node_ids: HashMap::new(),
            classes: Vec::new(),
            uf: Vec::new(),
            node_class: Vec::new(),
            worklist: VecDeque::new(),
            attempted: HashSet::new(),
            cert_cache: HashMap::new(),
            events: Vec::new(),
            event_ids: HashMap::new(),
            depth_hint: HashMap::new(),
            rejections: Vec::new(),
            nil_class: 0,
            dirty: false,
            stats: SaturationStats::default(),
        };
        // The nil node/class.
        eg.nodes.push(ENode {
            stage: NIL,
            tail: 0,
        });
        eg.node_ids.insert((NIL, 0), 0);
        eg.classes.push(EClass {
            nodes: vec![0],
            parents: Vec::new(),
        });
        eg.uf.push(0);
        eg.node_class.push(0);
        eg
    }

    fn find(&self, mut class: usize) -> usize {
        while self.uf[class] != class {
            class = self.uf[class];
        }
        class
    }

    fn class_of(&self, node: usize) -> usize {
        self.find(self.node_class[node])
    }

    fn intern_stage(&mut self, stage: &Stage) -> usize {
        let key = stage_key(stage);
        if let Some(&id) = self.stage_ids.get(&key) {
            return id;
        }
        let id = self.stages.len();
        self.stages.push(stage.clone());
        self.stage_costs
            .push(stage_cost(stage, &self.cfg.params, self.cfg.m));
        self.stage_coll.push(stage.is_collective());
        self.stage_ids.insert(key, id);
        id
    }

    fn lookup_stage(&self, stage: &Stage) -> Option<usize> {
        self.stage_ids.get(&stage_key(stage)).copied()
    }

    /// Hash-consed node creation; new nodes enter the match worklist.
    fn add_node(&mut self, stage: usize, tail_class: usize) -> usize {
        let tail = self.find(tail_class);
        if let Some(&node) = self.node_ids.get(&(stage, tail)) {
            return node;
        }
        let node = self.nodes.len();
        self.nodes.push(ENode { stage, tail });
        self.node_ids.insert((stage, tail), node);
        let class = self.classes.len();
        self.classes.push(EClass {
            nodes: vec![node],
            parents: Vec::new(),
        });
        self.uf.push(class);
        self.node_class.push(class);
        self.classes[tail].parents.push(node);
        self.worklist.push_back(node);
        node
    }

    /// Insert a program as a cons chain; returns its class.
    fn insert_chain(&mut self, prog: &Program) -> usize {
        let mut class = self.nil_class;
        for (depth, stage) in prog.stages().iter().enumerate().rev() {
            let sid = self.intern_stage(stage);
            let node = self.add_node(sid, class);
            self.depth_hint.entry(node).or_insert(depth);
            class = self.class_of(node);
        }
        class
    }

    /// Merge two classes (keeping the smaller id canonical) and re-enqueue
    /// every node whose match windows could now see new chains: parents of
    /// both classes, and their parents (three-stage windows reach two
    /// levels up).
    fn union(&mut self, a: usize, b: usize) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return;
        }
        let (keep, drop) = if a < b { (a, b) } else { (b, a) };
        self.uf[drop] = keep;
        self.stats.unions += 1;
        self.dirty = true;
        let dropped_nodes = std::mem::take(&mut self.classes[drop].nodes);
        let dropped_parents = std::mem::take(&mut self.classes[drop].parents);
        let mut requeue: Vec<usize> = Vec::new();
        for &p in self.classes[keep].parents.iter().chain(&dropped_parents) {
            requeue.push(p);
            let gp_class = self.class_of(p);
            requeue.extend(self.classes[gp_class].parents.iter().copied());
        }
        self.worklist.extend(requeue);
        self.classes[keep].nodes.extend(dropped_nodes);
        self.classes[keep].parents.extend(dropped_parents);
    }

    /// Congruence closure: re-canonicalize the hash-cons and merge cons
    /// nodes that became equal because their tails merged, to fixpoint.
    fn rebuild(&mut self) {
        while self.dirty {
            self.dirty = false;
            let mut fresh: HashMap<(usize, usize), usize> =
                HashMap::with_capacity(self.nodes.len());
            let mut pending: Vec<(usize, usize)> = Vec::new();
            for id in 0..self.nodes.len() {
                let stage = self.nodes[id].stage;
                let key = if stage == NIL {
                    (NIL, 0)
                } else {
                    (stage, self.find(self.nodes[id].tail))
                };
                match fresh.entry(key) {
                    Entry::Occupied(entry) => {
                        let other = *entry.get();
                        if self.class_of(other) != self.class_of(id) {
                            pending.push((other, id));
                        }
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(id);
                    }
                }
            }
            self.node_ids = fresh;
            for (a, b) in pending {
                let (ca, cb) = (self.class_of(a), self.class_of(b));
                self.union(ca, cb);
            }
        }
    }

    /// Saturate: process the worklist to fixpoint or node budget.
    fn run(&mut self) {
        loop {
            self.rebuild();
            let Some(node) = self.worklist.pop_front() else {
                break;
            };
            if self.nodes.len() >= self.cfg.node_budget {
                self.stats.budget_exhausted = true;
                self.worklist.clear();
                break;
            }
            self.match_node(node);
        }
        self.rebuild();
        self.stats.nodes = self.nodes.len();
        self.stats.classes = (0..self.classes.len())
            .filter(|&c| self.find(c) == c)
            .count();
        self.stats.rule_applications = self.events.len();
    }

    /// Try every window (length 2 and 3) headed at `n0`.
    fn match_node(&mut self, n0: usize) {
        if self.nodes[n0].stage == NIL {
            return;
        }
        let tail1 = self.find(self.nodes[n0].tail);
        let firsts = self.class_members(tail1);
        for n1 in firsts {
            if self.nodes[n1].stage == NIL {
                continue;
            }
            self.try_windows(&[n0, n1]);
            let tail2 = self.find(self.nodes[n1].tail);
            let seconds = self.class_members(tail2);
            for n2 in seconds {
                if self.nodes[n2].stage == NIL {
                    continue;
                }
                self.try_windows(&[n0, n1, n2]);
            }
        }
    }

    /// Deterministic, deduplicated member snapshot of a class.
    fn class_members(&self, class: usize) -> Vec<usize> {
        let mut members = self.classes[self.find(class)].nodes.clone();
        members.sort_unstable();
        members.dedup();
        members
    }

    fn try_windows(&mut self, path: &[usize]) {
        let ids: Vec<usize> = path.iter().map(|&n| self.nodes[n].stage).collect();
        for rule in RULE_PRIORITY {
            if rules::window_len(rule) == path.len() {
                self.try_rule(rule, path, &ids);
            }
        }
        if self.cfg.normalize && path.len() == 2 {
            self.try_norm(path, &ids);
        }
    }

    fn try_rule(&mut self, rule: Rule, path: &[usize], ids: &[usize]) {
        let tag = rule_tag(rule);
        if !self.attempted.insert((tag, path.to_vec())) {
            return;
        }
        let window: Vec<Stage> = ids.iter().map(|&i| self.stages[i].clone()).collect();
        let Some(rewrite) = rules::try_match(rule, &window) else {
            return;
        };
        if !self.cfg.allow_rank0_rules && rewrite.rank0_only {
            return;
        }
        if let Some(gate) = &self.cfg.law_gate {
            if !gate(rule, &window) {
                return;
            }
        }
        let Some(certificate) = self.certify(rule, &window, ids, path[0]) else {
            return;
        };
        let rank0_only = rewrite.rank0_only;
        let replacement: Vec<usize> = rewrite
            .stages
            .iter()
            .map(|s| self.intern_stage(s))
            .collect();
        self.apply(path, replacement.clone());
        let event_key = (tag, ids.to_vec());
        if let Entry::Vacant(slot) = self.event_ids.entry(event_key) {
            slot.insert(self.events.len());
            self.events.push(Event {
                rule,
                replacement,
                certificate,
                rank0_only,
            });
        }
    }

    /// Certify `rule` on `window` with the configured samples — the same
    /// contract as `Rewriter::certify`, cached per stage-id window so
    /// audited rejections are recorded once per distinct window.
    fn certify(
        &mut self,
        rule: Rule,
        window: &[Stage],
        ids: &[usize],
        head: usize,
    ) -> Option<Certificate> {
        let cache_key = (rule_tag(rule), ids.to_vec());
        if let Some(cached) = self.cert_cache.get(&cache_key) {
            return cached.clone();
        }
        let at = self.depth_hint.get(&head).copied().unwrap_or(0);
        let result = (|| {
            let laws = rules::required_laws(rule, window)?;
            let witness = match &self.cfg.verify_samples {
                None => Witness::Declared,
                Some(samples) => {
                    for law in &laws {
                        if let Some(cex) = law.counterexample(samples) {
                            if self.cfg.audited {
                                self.rejections.push(RuleRejection {
                                    rule,
                                    at,
                                    law: law.describe(),
                                    counterexample: cex,
                                });
                            }
                            return None;
                        }
                    }
                    Witness::Checked {
                        samples: samples.len(),
                    }
                }
            };
            let rank0_only = rules::try_match(rule, window).is_some_and(|rw| rw.rank0_only);
            Some(Certificate {
                rule,
                laws,
                witness,
                dist_pre: crate::dist::expected_pre(rule),
                dist_post: crate::dist::expected_post(rule, rank0_only),
            })
        })();
        self.cert_cache.insert(cache_key, result.clone());
        result
    }

    /// Splice a rewrite into the graph: build the replacement chain over
    /// the residual tail of the matched path and union it with the head.
    fn apply(&mut self, path: &[usize], replacement: Vec<usize>) {
        let last = *path.last().expect("non-empty window");
        let mut class = self.find(self.nodes[last].tail);
        for &sid in replacement.iter().rev() {
            let node = self.add_node(sid, class);
            class = self.class_of(node);
        }
        let head_class = self.class_of(path[0]);
        self.union(head_class, class);
    }

    /// The enabling normalizations as 2-window rewrites, mirroring
    /// `rules::enabling::step` exactly (left-moving suffices: windows are
    /// all-collective, so a map never sits inside one).
    fn try_norm(&mut self, path: &[usize], ids: &[usize]) {
        let (tag, replacement): (u32, Vec<Stage>) =
            match (&self.stages[ids[0]], &self.stages[ids[1]]) {
                (
                    Stage::Map {
                        f: f1,
                        ops: o1,
                        label: l1,
                    },
                    Stage::Map {
                        f: f2,
                        ops: o2,
                        label: l2,
                    },
                ) => {
                    let (f1, f2) = (f1.clone(), f2.clone());
                    let fused = Stage::Map {
                        f: Arc::new(move |v| f2(&f1(v))),
                        ops: o1 + o2,
                        label: format!("{l1};{l2}"),
                    };
                    (TAG_MAP_FUSE, vec![fused])
                }
                (Stage::Gather, Stage::Scatter) => (TAG_GATHER_SCATTER, Vec::new()),
                (Stage::Bcast, map @ Stage::Map { .. }) => {
                    (TAG_BCAST_MAP, vec![map.clone(), Stage::Bcast])
                }
                _ => return,
            };
        if !self.attempted.insert((tag, path.to_vec())) {
            return;
        }
        let replacement: Vec<usize> = replacement.iter().map(|s| self.intern_stage(s)).collect();
        self.apply(path, replacement);
    }

    /// Per-class least `(cost, collectives, len)` — a Bellman-style
    /// fixpoint over node values (the optimal sub-graph is acyclic: `len`
    /// strictly decreases along tails, so this converges).
    fn extract_values(&self) -> Vec<Option<Extract>> {
        let mut best: Vec<Option<Extract>> = vec![None; self.classes.len()];
        best[self.find(self.nil_class)] = Some(Extract {
            cost: 0.0,
            collectives: 0,
            len: 0,
        });
        loop {
            let mut changed = false;
            for id in 0..self.nodes.len() {
                let stage = self.nodes[id].stage;
                if stage == NIL {
                    continue;
                }
                let Some(tail) = best[self.find(self.nodes[id].tail)] else {
                    continue;
                };
                let value = Extract {
                    cost: tail.cost + self.stage_costs[stage],
                    collectives: tail.collectives + u64::from(self.stage_coll[stage]),
                    len: tail.len + 1,
                };
                let class = self.class_of(id);
                if best[class].is_none_or(|b| value.beats(&b)) {
                    best[class] = Some(value);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        best
    }

    /// Enumerate (capped) the chains realizing a class's best value.
    fn best_chains(
        &self,
        class: usize,
        best: &[Option<Extract>],
        memo: &mut HashMap<usize, Vec<Vec<usize>>>,
    ) -> Vec<Vec<usize>> {
        let class = self.find(class);
        if let Some(cached) = memo.get(&class) {
            return cached.clone();
        }
        let target = best[class].expect("reachable class");
        let mut chains: Vec<Vec<usize>> = Vec::new();
        'members: for id in self.class_members(class) {
            let stage = self.nodes[id].stage;
            if stage == NIL {
                if target.len == 0 {
                    chains.push(Vec::new());
                }
                continue;
            }
            let tail_class = self.find(self.nodes[id].tail);
            let Some(tail) = best[tail_class] else {
                continue;
            };
            let value = Extract {
                cost: tail.cost + self.stage_costs[stage],
                collectives: tail.collectives + u64::from(self.stage_coll[stage]),
                len: tail.len + 1,
            };
            if value != target {
                continue;
            }
            for tail_chain in self.best_chains(tail_class, best, memo) {
                let mut chain = Vec::with_capacity(1 + tail_chain.len());
                chain.push(stage);
                chain.extend(tail_chain);
                chains.push(chain);
                if chains.len() >= CANDIDATE_CAP {
                    break 'members;
                }
            }
        }
        memo.insert(class, chains.clone());
        chains
    }

    /// Extract the cost-least program from `root`, tie-broken by
    /// `(collectives, len)` then the least normalized rendering.
    fn extract(&self, root: usize) -> Program {
        let best = self.extract_values();
        let mut memo = HashMap::new();
        let chains = self.best_chains(root, &best, &mut memo);
        let mut winner: Option<(usize, String, Program)> = None;
        for chain in chains {
            let mut prog = Program::new();
            for sid in chain {
                prog = prog.push(self.stages[sid].clone());
            }
            if self.cfg.normalize {
                prog = enabling::normalize(&prog).0;
            }
            let key = (prog.len(), prog.to_string());
            if winner
                .as_ref()
                .is_none_or(|(l, s, _)| key < (*l, s.clone()))
            {
                winner = Some((key.0, key.1, prog));
            }
        }
        winner.expect("root class is reachable").2
    }

    /// Stage-id rendering of a program, `None` if any stage was never
    /// interned (then the program cannot be in the graph).
    fn chain_ids(&self, prog: &Program) -> Option<Vec<usize>> {
        prog.stages().iter().map(|s| self.lookup_stage(s)).collect()
    }

    /// Is this exact chain present in the graph? (Walk the hash-cons from
    /// nil; only valid after `rebuild`.)
    fn representable(&self, ids: &[usize]) -> bool {
        let mut class = self.find(self.nil_class);
        for &sid in ids.iter().rev() {
            let Some(&node) = self.node_ids.get(&(sid, class)) else {
                return false;
            };
            class = self.class_of(node);
        }
        true
    }

    /// Provenance-guided BFS from `start` to `target`: transitions are the
    /// recorded rule events only (re-normalizing between steps, exactly
    /// like the greedy engine), pruned to programs still representable in
    /// the graph. Returns the shortest certificate-carrying derivation.
    #[allow(clippy::type_complexity)]
    fn replay(
        &mut self,
        start: &Program,
        target: &Program,
    ) -> Option<(Vec<RewriteStep>, Vec<Normalization>)> {
        let target_key = target.to_string();
        let start_key = start.to_string();
        if start_key == target_key {
            return Some((Vec::new(), Vec::new()));
        }
        // key → (parent key, event, at, normalizations on this edge)
        let mut edges: HashMap<String, (String, usize, usize, Vec<Normalization>)> = HashMap::new();
        let mut programs: HashMap<String, Program> = HashMap::new();
        programs.insert(start_key.clone(), start.clone());
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(start_key.clone());
        let mut found = false;
        'search: while let Some(key) = queue.pop_front() {
            if self.stats.replay_states >= REPLAY_STATE_CAP {
                break;
            }
            self.stats.replay_states += 1;
            let current = programs[&key].clone();
            let Some(ids) = self.chain_ids(&current) else {
                continue;
            };
            for at in 0..current.len() {
                for rule in RULE_PRIORITY {
                    let window_len = rules::window_len(rule);
                    if at + window_len > current.len() {
                        continue;
                    }
                    let event_key = (rule_tag(rule), ids[at..at + window_len].to_vec());
                    let Some(&event) = self.event_ids.get(&event_key) else {
                        continue;
                    };
                    let replacement: Vec<Stage> = self.events[event]
                        .replacement
                        .iter()
                        .map(|&i| self.stages[i].clone())
                        .collect();
                    let mut next = current.splice(at, window_len, replacement);
                    let mut norms = Vec::new();
                    if self.cfg.normalize {
                        let (p, log) = enabling::normalize(&next);
                        next = p;
                        norms = log;
                    }
                    let next_key = next.to_string();
                    if programs.contains_key(&next_key) {
                        continue;
                    }
                    if next_key != target_key {
                        let Some(next_ids) = self.chain_ids(&next) else {
                            continue;
                        };
                        if !self.representable(&next_ids) {
                            continue;
                        }
                    }
                    programs.insert(next_key.clone(), next);
                    edges.insert(next_key.clone(), (key.clone(), event, at, norms));
                    if next_key == target_key {
                        found = true;
                        break 'search;
                    }
                    queue.push_back(next_key);
                }
            }
        }
        if !found {
            return None;
        }
        // Walk the parent chain back to the start and emit steps forward.
        let mut path: Vec<(String, usize, usize, Vec<Normalization>)> = Vec::new();
        let mut cursor = target_key;
        while cursor != start_key {
            let (parent, event, at, norms) = edges.remove(&cursor).expect("edge on found path");
            path.push((cursor, event, at, norms));
            cursor = parent;
        }
        path.reverse();
        let mut steps = Vec::new();
        let mut normalizations = Vec::new();
        let mut current = start.clone();
        for (child_key, event, at, norms) in path {
            let child = programs.remove(&child_key).expect("program on found path");
            let event = &self.events[event];
            let saving = program_cost(&current, &self.cfg.params, self.cfg.m)
                - program_cost(&child, &self.cfg.params, self.cfg.m);
            steps.push(RewriteStep {
                rule: event.rule,
                at,
                saving: Some(saving),
                description: format!("{current}  →[{}]→  {child}", event.rule),
                certificate: event.certificate.clone(),
                rank0_only: event.rank0_only,
            });
            normalizations.extend(norms);
            current = child;
        }
        Some((steps, normalizations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::semantics::eval_program;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn saturation_finds_the_scan_scan_reduce_optimum() {
        let params = MachineParams::new(64, 100.0, 2.0);
        let m = 8.0;
        let prog = Program::new()
            .scan(lib::add())
            .scan(lib::add())
            .reduce(lib::add());
        let out = saturate_program(&prog, &SaturateConfig::new(params, m));
        assert!(!out.stats.budget_exhausted);
        assert!(!out.stats.replay_fell_back);
        assert_eq!(out.result.steps.len(), 1);
        assert_eq!(out.result.steps[0].rule, Rule::SrReduction);
        assert_eq!(out.result.steps[0].at, 1);
        let greedy = Rewriter::exhaustive().optimize(&prog);
        assert!(
            program_cost(&out.result.program, &params, m)
                < program_cost(&greedy.program, &params, m)
        );
        // Rank 0 agrees with the original.
        let input = ints(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(
            eval_program(&prog, &input)[0],
            eval_program(&out.result.program, &input)[0]
        );
    }

    #[test]
    fn saturation_is_deterministic_across_runs() {
        let params = MachineParams::new(16, 150.0, 1.0);
        let prog = Program::new()
            .bcast()
            .scan(lib::add())
            .scan(lib::add())
            .reduce(lib::add());
        let cfg = SaturateConfig::new(params, 4.0);
        let a = saturate_program(&prog, &cfg);
        let b = saturate_program(&prog, &cfg);
        assert_eq!(a.result.program.to_string(), b.result.program.to_string());
        assert_eq!(a.result.steps.len(), b.result.steps.len());
        assert_eq!(a.stats.nodes, b.stats.nodes);
    }

    #[test]
    fn deep_chain_terminates_within_budget() {
        let mut prog = Program::new();
        for _ in 0..11 {
            prog = prog.scan(lib::add());
        }
        prog = prog.reduce(lib::add());
        let params = MachineParams::new(64, 100.0, 2.0);
        let cfg = SaturateConfig::new(params, 8.0).node_budget(5_000);
        let out = saturate_program(&prog, &cfg);
        assert!(out.stats.nodes <= 5_000);
        assert!(
            program_cost(&out.result.program, &params, 8.0) <= program_cost(&prog, &params, 8.0)
        );
    }

    #[test]
    fn normalization_rewrites_participate() {
        // bcast ; map f ; scan — commuting the map exposes BS-Comcast.
        let params = MachineParams::new(64, 200.0, 2.0);
        let prog = Program::new()
            .bcast()
            .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::add());
        let out = saturate_program(&prog, &SaturateConfig::new(params, 4.0));
        assert!(out
            .result
            .normalizations
            .iter()
            .any(|n| matches!(n, Normalization::BcastMapCommute { .. })));
        assert_eq!(out.result.steps.len(), 1);
        assert_eq!(out.result.steps[0].rule, Rule::BsComcast);
    }

    #[test]
    fn audited_refusal_is_recorded_with_shrunk_witness() {
        let lying =
            crate::op::BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative();
        let prog = Program::new().scan(lying.clone()).reduce(lying);
        let params = MachineParams::new(64, 100.0, 2.0);
        let cfg = SaturateConfig::new(params, 8.0).audited(ints(&[-5, -2, 0, 1, 3, 7]));
        let out = saturate_program(&prog, &cfg);
        assert!(out.result.steps.is_empty());
        assert_eq!(out.result.rejections.len(), 1);
        assert_eq!(out.result.rejections[0].rule, Rule::SrReduction);
        assert_eq!(out.result.rejections[0].at, 0);
        assert!(out.result.rejections[0].counterexample.distinct_values() <= 3);
    }

    #[test]
    fn law_gate_excludes_rules() {
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let params = MachineParams::new(64, 100.0, 2.0);
        let gate: LawGate = Arc::new(|_, _| false);
        let cfg = SaturateConfig::new(params, 8.0).law_gate(gate);
        let out = saturate_program(&prog, &cfg);
        assert!(out.result.steps.is_empty());
        assert_eq!(out.result.program.to_string(), prog.to_string());
    }

    #[test]
    fn empty_program_is_a_fixpoint() {
        let params = MachineParams::new(4, 10.0, 1.0);
        let out = saturate_program(&Program::new(), &SaturateConfig::new(params, 1.0));
        assert!(out.result.program.is_empty());
        assert!(out.result.steps.is_empty());
    }
}
