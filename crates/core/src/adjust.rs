//! Auxiliary-variable adjustment functions (Section 2.3) and the local
//! iteration schemas of Sections 3.4–3.5.
//!
//! * [`pair`], [`triple`], [`quadruple`] — data duplication (eqs. 9–11);
//!   they distribute over blocks, so `pair` of an `m`-word block is an
//!   `m`-long block of pairs.
//! * [`pi1`] — first projection `π1` (eq. 12), also blockwise.
//! * [`repeat`] — the digit-traversal schema of eq. 14 (see
//!   [`collopt_collectives::comcast`] for the distributed version; this is
//!   the pure form used by the semantic evaluator).
//! * [`iter_balanced`] — the generalization of the paper's `iter f` (rule
//!   BR-Local etc.) to arbitrary processor counts: where the paper doubles
//!   `log |xs|` times (exact only for powers of two), this evaluates the
//!   virtual balanced tree of `n` identical leaves locally, using the
//!   binary/unary operator variants. For `n = 2^k` it degenerates to the
//!   paper's `k`-fold doubling.

use crate::value::Value;

/// `pair a = (a, a)` (eq. 9), blockwise.
pub fn pair(v: &Value) -> Value {
    v.map_block(&|x| Value::Tuple(vec![x.clone(), x.clone()]))
}

/// `triple a = (a, a, a)` (eq. 10), blockwise.
pub fn triple(v: &Value) -> Value {
    v.map_block(&|x| Value::Tuple(vec![x.clone(), x.clone(), x.clone()]))
}

/// `quadruple a = (a, a, a, a)` (eq. 11), blockwise.
pub fn quadruple(v: &Value) -> Value {
    v.map_block(&|x| Value::Tuple(vec![x.clone(), x.clone(), x.clone(), x.clone()]))
}

/// `π1` — first component of every tuple in the block (eq. 12).
pub fn pi1(v: &Value) -> Value {
    v.map_block(&|x| x.proj(0))
}

/// `repeat (e, o) k b` (eq. 14), SPMD-uniform over `rounds` digits: digit
/// 0 of `k` applies `e`, digit 1 applies `o`, least significant first.
pub fn repeat(
    e: &dyn Fn(&Value) -> Value,
    o: &dyn Fn(&Value) -> Value,
    k: usize,
    rounds: u32,
    b: Value,
) -> Value {
    let mut state = b;
    for j in 0..rounds {
        state = if (k >> j) & 1 == 0 {
            e(&state)
        } else {
            o(&state)
        };
    }
    state
}

/// Evaluate the combination of `n` copies of `leaf` along the virtual
/// balanced tree, locally: `combine` at binary nodes (left argument covers
/// the lower copies), `solo` at unary nodes.
///
/// Returns the root value together with the number of `combine` and `solo`
/// applications performed (for cost accounting). Complete subtrees of
/// equal height collapse to a doubling chain, so the work is
/// `O(log² n)` operator applications at worst and exactly
/// `⌈log₂ n⌉` combines when `n` is a power of two — the paper's
/// `iter (op_br)`.
pub fn iter_balanced(
    n: usize,
    leaf: &Value,
    combine: &dyn Fn(&Value, &Value) -> Value,
    solo: &dyn Fn(&Value) -> Value,
) -> (Value, u64, u64) {
    assert!(n >= 1);
    let depth = if n <= 1 { 0 } else { (n - 1).ilog2() + 1 };
    let mut combines = 0u64;
    let mut solos = 0u64;
    // complete[k] = value of a complete subtree of height k.
    let mut complete: Vec<Value> = Vec::with_capacity(depth as usize + 1);
    complete.push(leaf.clone());
    for k in 1..=depth {
        let prev = &complete[(k - 1) as usize];
        complete.push(combine(prev, prev));
        combines += 1;
    }
    // Walk the left spine of the balanced tree for n leaves.
    fn build(
        n: usize,
        d: u32,
        complete: &[Value],
        combine: &dyn Fn(&Value, &Value) -> Value,
        solo: &dyn Fn(&Value) -> Value,
        combines: &mut u64,
        solos: &mut u64,
    ) -> Value {
        if n == 1usize << d {
            // A complete subtree: reuse the doubling chain instead of
            // recombining (this is what makes the power-of-two case exactly
            // the paper's iter).
            return complete[d as usize].clone();
        }
        let half = 1usize << (d - 1);
        if n > half {
            let left = build(n - half, d - 1, complete, combine, solo, combines, solos);
            *combines += 1;
            combine(&left, &complete[(d - 1) as usize])
        } else {
            let inner = build(n, d - 1, complete, combine, solo, combines, solos);
            *solos += 1;
            solo(&inner)
        }
    }
    let v = if n == 1 {
        leaf.clone()
    } else {
        build(
            n,
            depth,
            &complete,
            combine,
            solo,
            &mut combines,
            &mut solos,
        )
    };
    (v, combines, solos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tupling_functions_duplicate() {
        let v = Value::Int(3);
        assert_eq!(pair(&v), Value::Tuple(vec![3.into(), 3.into()]));
        assert_eq!(triple(&v).as_tuple().len(), 3);
        assert_eq!(quadruple(&v).as_tuple().len(), 4);
    }

    #[test]
    fn tupling_distributes_over_blocks() {
        let block = Value::int_list([1, 2]);
        let p = pair(&block);
        assert_eq!(
            p,
            Value::list(vec![
                Value::Tuple(vec![1.into(), 1.into()]),
                Value::Tuple(vec![2.into(), 2.into()])
            ])
        );
        assert_eq!(pi1(&p), block);
    }

    #[test]
    fn pi1_inverts_all_tupling_functions() {
        let v = Value::int_list([4, 5, 6]);
        assert_eq!(pi1(&pair(&v)), v);
        assert_eq!(pi1(&triple(&v)), v);
        assert_eq!(pi1(&quadruple(&v)), v);
    }

    #[test]
    fn repeat_traverses_digits_lsb_first() {
        // e appends '0', o appends '1' — the result spells k's digits.
        let e = |v: &Value| Value::Int(v.as_int() * 10);
        let o = |v: &Value| Value::Int(v.as_int() * 10 + 1);
        // k = 6 = 110b, digits LSB-first: 0, 1, 1.
        let got = repeat(&e, &o, 6, 3, Value::Int(9));
        assert_eq!(got, Value::Int(9011)); // 9 → 90 → 901 → 9011
    }

    #[test]
    fn repeat_bs_operator_computes_k_plus_one_multiples() {
        // Figure 6's operator: e(t,u) = (t, 2u), o(t,u) = (t+u, 2u).
        let e = |v: &Value| {
            let (t, u) = (v.proj(0).as_int(), v.proj(1).as_int());
            Value::Tuple(vec![Value::Int(t), Value::Int(u + u)])
        };
        let o = |v: &Value| {
            let (t, u) = (v.proj(0).as_int(), v.proj(1).as_int());
            Value::Tuple(vec![Value::Int(t + u), Value::Int(u + u)])
        };
        for k in 0..16 {
            let out = repeat(&e, &o, k, 4, pair(&Value::Int(2)));
            assert_eq!(out.proj(0).as_int(), 2 * (k as i64 + 1), "k={k}");
        }
    }

    #[test]
    fn iter_balanced_power_of_two_is_pure_doubling() {
        // combine = +: n copies of 1 sum to n; exactly log n combines.
        let add = |a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int());
        let id = |v: &Value| v.clone();
        for k in 0..8u32 {
            let n = 1usize << k;
            let (v, combines, solos) = iter_balanced(n, &Value::Int(1), &add, &id);
            assert_eq!(v.as_int(), n as i64);
            assert_eq!(combines, k as u64, "n={n}");
            assert_eq!(solos, 0, "n={n}");
        }
    }

    #[test]
    fn iter_balanced_any_n_with_associative_op() {
        let add = |a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int());
        let id = |v: &Value| v.clone();
        for n in 1..200 {
            let (v, combines, _) = iter_balanced(n, &Value::Int(3), &add, &id);
            assert_eq!(v.as_int(), 3 * n as i64, "n={n}");
            // Logarithmic work.
            assert!(combines <= 2 * 8, "n={n} combines={combines}");
        }
    }

    #[test]
    fn iter_balanced_with_op_sr_matches_reduce_of_scan() {
        // BSR-Local: n copies of b; expected Σ_{i=1..n} i·b = n(n+1)/2 · b.
        let combine = |a: &Value, b: &Value| {
            let (t1, u1) = (a.proj(0).as_int(), a.proj(1).as_int());
            let (t2, u2) = (b.proj(0).as_int(), b.proj(1).as_int());
            let uu = u1 + u2;
            Value::Tuple(vec![Value::Int(t1 + t2 + u1), Value::Int(uu + uu)])
        };
        let solo = |v: &Value| {
            let (t, u) = (v.proj(0).as_int(), v.proj(1).as_int());
            Value::Tuple(vec![Value::Int(t), Value::Int(u + u)])
        };
        let b = 2i64;
        for n in 1..100usize {
            let leaf = Value::Tuple(vec![Value::Int(b), Value::Int(b)]);
            let (v, _, _) = iter_balanced(n, &leaf, &combine, &solo);
            let n_i = n as i64;
            assert_eq!(v.proj(0).as_int(), n_i * (n_i + 1) / 2 * b, "n={n}");
        }
    }

    #[test]
    fn iter_balanced_single_leaf_is_identity() {
        let add = |a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int());
        let id = |v: &Value| v.clone();
        let (v, c, s) = iter_balanced(1, &Value::Int(42), &add, &id);
        assert_eq!(v.as_int(), 42);
        assert_eq!((c, s), (0, 0));
    }
}
