//! Executing program terms on the simulated machine.
//!
//! [`execute`] lowers each [`Stage`] onto the algorithms of
//! `collopt-collectives`, running the program SPMD-style with one thread
//! per processor. The returned [`ExecOutcome`] carries both the computed
//! distributed list (which must agree with
//! [`crate::semantics::eval_program`] — the integration tests check this
//! for every rule) and the deterministic simulated makespan under the
//! paper's `ts`/`tw` model (which must agree with
//! [`crate::rewrite::program_cost`] for power-of-two machines — the cost
//! benches check that).

use std::sync::Arc;

use collopt_collectives::{
    allgather_async, allreduce_async, allreduce_auto_async, allreduce_balanced_async,
    allreduce_balanced_halving_async, balanced_halving_wins, bcast_auto_async,
    bcast_binomial_async, comcast_bcast_repeat_async, comcast_cost_optimal_async,
    gather_binomial_async, reduce_balanced_async, reduce_binomial_async, scan_balanced_async,
    scatter_binomial_async, BalancedOp, Combine, PairedOp, RepeatOp,
};
use collopt_machine::{
    critical_path, drive, ClockParams, CriticalPath, Ctx, ExecEngine, FaultPlan, Machine,
    MachineError, ProfileError, ProfileReport,
};

use crate::adjust::iter_balanced;
use crate::term::{ComcastVariant, Program, Stage};
use crate::value::Value;

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecConfig {
    /// Lower `bcast` stages through the cost-model-driven algorithm
    /// selector ([`collopt_collectives::bcast_auto`]: binomial vs chain
    /// pipeline vs van de Geijn scatter+allgather, chosen per machine and
    /// block size) instead of always using the binomial tree. Applies to
    /// list-valued blocks; scalar broadcasts stay binomial.
    pub adaptive_bcast: bool,
    /// Lower reduction stages through the cost-model-driven selectors:
    /// `allreduce` stages go through
    /// [`collopt_collectives::allreduce_auto`] (butterfly vs Rabenseifner
    /// reduce-scatter + allgather vs ring vs reduce+bcast), and fused
    /// balanced allreductions (rule SR-Reduction's RHS) switch to
    /// segmenting halving/doubling when
    /// [`collopt_collectives::balanced_halving_wins`] predicts a win.
    /// Applies to list-valued blocks; scalar reductions keep the fixed
    /// butterfly.
    pub adaptive_reduction: bool,
    /// Inject an [`EventKind::Stage`](collopt_machine::EventKind::Stage)
    /// boundary into the trace after every program stage, labelled with
    /// [`Stage::describe`]. Stage boundaries are zero-cost annotations —
    /// they never change the makespan or the rendered timeline — and feed
    /// the per-stage breakdown of
    /// [`collopt_machine::ProfileReport`]. Only meaningful together with
    /// tracing (see [`execute_traced_with`]); silently inert otherwise.
    pub profile: bool,
    /// Pin the run to a specific execution engine (persistent rank pool,
    /// legacy spawn-per-run, or the single-threaded discrete-event
    /// scheduler). `None` uses the session default ([`ExecEngine::Pooled`]
    /// unless overridden via `COLLOPT_ENGINE=legacy|pooled|des`). All
    /// engines are observationally identical — outputs, makespan bits,
    /// retry counts and traces match — but only [`ExecEngine::Des`] hosts
    /// rank counts past [`ExecEngine::THREAD_MAX_P`].
    pub engine: Option<ExecEngine>,
}

/// Result of running a program on the machine.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Final per-processor values.
    pub outputs: Vec<Value>,
    /// Simulated parallel run time (max over ranks).
    pub makespan: f64,
    /// Total computation operations charged across ranks.
    pub total_compute: f64,
    /// Total message exchanges across ranks.
    pub total_messages: u64,
    /// Failed transmission attempts retried across ranks (always zero
    /// without a lossy fault plan).
    pub total_retries: u64,
    /// Simulated time lost to failed attempts across ranks — the exact
    /// overhead a lossy-but-recovered run paid for its retries.
    pub total_retry_time: f64,
}

/// Execute `prog` on `inputs.len()` simulated processors with the given
/// cost parameters. `inputs[i]` is processor `i`'s initial block.
pub fn execute(prog: &Program, inputs: &[Value], clock: ClockParams) -> ExecOutcome {
    run_program(prog, inputs, clock, false, ExecConfig::default()).0
}

/// Execute `prog` under a [`FaultPlan`]: stragglers, slow links, message
/// drops and rank crashes are replayed deterministically. Returns `Err`
/// with the originating [`MachineError`] when the plan makes the run fail
/// (a crash, or a message exhausting its retry budget) — cleanly, with
/// every rank thread joined. An empty plan is observationally inert: the
/// outcome is bit-identical to [`execute`].
pub fn execute_faulted(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    config: ExecConfig,
    plan: &FaultPlan,
) -> Result<ExecOutcome, MachineError> {
    try_run_program(prog, inputs, clock, false, config, Some(plan)).map(|(o, _)| o)
}

/// [`execute_faulted`] with event tracing: the trace carries the injected
/// [`Retry`](collopt_machine::EventKind::Retry) spans, so Chrome exports
/// and profiles show exactly where the fault overhead went.
pub fn execute_faulted_traced(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    config: ExecConfig,
    plan: &FaultPlan,
) -> Result<TracedExecOutcome, MachineError> {
    try_run_program(prog, inputs, clock, true, config, Some(plan))
        .map(|(outcome, trace)| TracedExecOutcome { outcome, trace })
}

/// [`execute`] with explicit [`ExecConfig`] options.
pub fn execute_with(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    config: ExecConfig,
) -> ExecOutcome {
    run_program(prog, inputs, clock, false, config).0
}

/// [`execute`] with event tracing enabled; also returns the merged trace
/// (sends, receives, exchanges, computation, ordered by simulated time),
/// from which Figure-1-style run-time diagrams can be rendered via
/// [`collopt_machine::Trace::ascii_timeline`].
pub fn execute_traced(prog: &Program, inputs: &[Value], clock: ClockParams) -> TracedExecOutcome {
    execute_traced_with(prog, inputs, clock, ExecConfig::default())
}

/// [`execute_traced`] with explicit [`ExecConfig`] options. With
/// [`ExecConfig::profile`] set, the trace carries per-stage boundaries
/// and [`TracedExecOutcome::profile_report`] breaks the run down stage
/// by stage.
pub fn execute_traced_with(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    config: ExecConfig,
) -> TracedExecOutcome {
    let (outcome, trace) = run_program(prog, inputs, clock, true, config);
    TracedExecOutcome { outcome, trace }
}

/// Execute with a per-stage profile: element `i` of the returned vector
/// is the simulated time at which the slowest rank finished stage `i`
/// (so differences give per-stage makespans). The profile is what the
/// optimization report uses for *measured* stage costs next to the
/// analytic ones. Implemented on top of the stage boundaries the traced
/// executor injects; use [`execute_traced_with`] directly for the full
/// [`ProfileReport`].
pub fn execute_profiled(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
) -> (ExecOutcome, Vec<f64>) {
    let run = execute_traced_with(
        prog,
        inputs,
        clock,
        ExecConfig {
            profile: true,
            ..ExecConfig::default()
        },
    );
    let stage_finish = run
        .profile_report()
        .stages
        .iter()
        .map(|s| s.finish)
        .collect();
    (run.outcome, stage_finish)
}

/// An [`ExecOutcome`] together with the run's event trace.
#[derive(Debug)]
pub struct TracedExecOutcome {
    /// The execution result.
    pub outcome: ExecOutcome,
    /// Merged per-rank event log.
    pub trace: collopt_machine::Trace,
}

impl std::ops::Deref for TracedExecOutcome {
    type Target = ExecOutcome;
    fn deref(&self) -> &ExecOutcome {
        &self.outcome
    }
}

impl TracedExecOutcome {
    /// Aggregate the trace into per-rank (and, when the run was executed
    /// with [`ExecConfig::profile`], per-stage) busy/idle accounting.
    pub fn profile_report(&self) -> ProfileReport {
        ProfileReport::from_trace(
            &self.trace,
            self.outcome.outputs.len(),
            self.outcome.makespan,
        )
    }

    /// The causal chain of events that determined this run's makespan.
    /// Its [`length`](collopt_machine::CriticalPath::length) equals
    /// [`ExecOutcome::makespan`] exactly — the cross-validation oracle the
    /// property suite leans on.
    pub fn critical_path(&self) -> Result<CriticalPath, ProfileError> {
        critical_path(&self.trace)
    }
}

fn run_program(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    tracing: bool,
    config: ExecConfig,
) -> (ExecOutcome, collopt_machine::Trace) {
    try_run_program(prog, inputs, clock, tracing, config, None)
        .expect("a fault-free run cannot fail")
}

fn try_run_program(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    tracing: bool,
    config: ExecConfig,
    faults: Option<&FaultPlan>,
) -> Result<(ExecOutcome, collopt_machine::Trace), MachineError> {
    assert!(!inputs.is_empty());
    let mut machine = Machine::new(inputs.len(), clock);
    if tracing {
        machine = machine.with_tracing();
    }
    if let Some(plan) = faults {
        machine = machine.with_faults(plan.clone());
    }
    if let Some(engine) = config.engine {
        machine = machine.with_engine(engine);
    }
    let inputs: Arc<Vec<Value>> = Arc::new(inputs.to_vec());
    // One engine-agnostic rank body. On the thread engines its awaits
    // resolve immediately (the Ctx methods block the rank thread), so
    // `drive` completes it in a single poll; on the DES engine the same
    // future genuinely suspends and the event scheduler interleaves ranks.
    let run = if machine.engine() == ExecEngine::Des {
        // `try_run_des` requires the rank future to borrow nothing but its
        // `Ctx`, so each rank owns a (shallow — stage closures are `Arc`s)
        // clone of the program and the shared input handle.
        let prog = prog.clone();
        let inputs = Arc::clone(&inputs);
        machine.try_run_des(move |ctx| {
            let prog = prog.clone();
            let inputs = Arc::clone(&inputs);
            Box::pin(async move { rank_main(&prog, &inputs, config, ctx).await })
        })?
    } else {
        machine.try_run(|ctx| drive(rank_main(prog, &inputs, config, ctx)))?
    };
    let total_retries = run.total_retries();
    let total_retry_time = run.total_retry_time();
    Ok((
        ExecOutcome {
            outputs: run.results,
            makespan: run.makespan,
            total_compute: run.compute_ops.iter().sum(),
            total_messages: run.messages.iter().sum(),
            total_retries,
            total_retry_time,
        },
        run.trace,
    ))
}

async fn rank_main(
    prog: &Program,
    inputs: &Arc<Vec<Value>>,
    config: ExecConfig,
    ctx: &mut Ctx,
) -> Value {
    let mut v = inputs[ctx.rank()].clone();
    for (i, stage) in prog.stages().iter().enumerate() {
        exec_stage(stage, ctx, &mut v, config).await;
        if config.profile {
            ctx.end_stage(i, stage.describe());
        }
    }
    v
}

async fn exec_stage(stage: &Stage, ctx: &mut Ctx, v: &mut Value, config: ExecConfig) {
    let m = v.block_len() as f64;
    match stage {
        Stage::Map { f, ops, label } => {
            *v = f(v);
            ctx.charge(ops * m, label);
        }
        Stage::MapIndexed { f, ops, label } => {
            *v = f(ctx.rank(), v);
            ctx.charge(ops * m, label);
        }
        Stage::Bcast => {
            // The adaptive path applies to list blocks; the shape must be
            // SPMD-uniform for all ranks to take the same branch.
            if config.adaptive_bcast && matches!(v, Value::List(_)) {
                let value = (ctx.rank() == 0).then(|| v.as_list().to_vec());
                *v = Value::list(bcast_auto_async(ctx, value, 1).await);
            } else {
                let words = v.words();
                let value = (ctx.rank() == 0).then(|| v.clone());
                *v = bcast_binomial_async(ctx, 0, value, words).await;
            }
        }
        Stage::Scan(op) => {
            let words = v.words().max(1);
            // Convert the operator's per-element charge into the
            // per-message-word charge the collective layer expects.
            let ops_per_word = op.ops_per_word() * m / words as f64;
            let opc = op.clone();
            let f = move |a: &Value, b: &Value| opc.apply(a, b);
            let combine = Combine::with_cost(&f, ops_per_word);
            *v = collopt_collectives::scan_butterfly_async(ctx, v.clone(), words, &combine).await;
        }
        Stage::Reduce(op) => {
            let words = v.words().max(1);
            let ops_per_word = op.ops_per_word() * m / words as f64;
            let opc = op.clone();
            let f = move |a: &Value, b: &Value| opc.apply(a, b);
            let combine = Combine::with_cost(&f, ops_per_word);
            if let Some(r) = reduce_binomial_async(ctx, 0, v.clone(), words, &combine).await {
                *v = r;
            }
            // Non-roots keep their value — the semantics of eq. (5).
        }
        Stage::AllReduce(op) => {
            let words = v.words().max(1);
            let ops_per_word = op.ops_per_word() * m / words as f64;
            let commutative = op.is_commutative();
            let opc = op.clone();
            let f = move |a: &Value, b: &Value| opc.apply(a, b);
            let mut combine = Combine::with_cost(&f, ops_per_word);
            if commutative {
                combine = combine.assume_commutative();
            }
            // Like `Stage::Bcast`: the adaptive path needs a segmentable
            // list block, and the (SPMD-uniform) shape guarantees every
            // rank takes the same branch and picks the same algorithm.
            if config.adaptive_reduction && matches!(v, Value::List(_)) {
                let words_per_unit = (v.words() / v.block_len().max(1) as u64).max(1);
                *v = allreduce_auto_async(ctx, v.clone(), words_per_unit, &combine).await;
            } else {
                *v = allreduce_async(ctx, v.clone(), words, &combine).await;
            }
        }
        Stage::ReduceBalanced {
            combine,
            solo,
            all,
            ops_combine,
            ops_solo,
            words_factor,
            ..
        } => {
            let cf = |a: &Value, b: &Value| combine(a, b);
            let sf = |x: &Value| solo(x);
            let op = BalancedOp {
                combine: &cf,
                solo: &sf,
                ops_combine: *ops_combine,
                ops_solo: *ops_solo,
                words_factor: *words_factor,
            };
            let words = v.block_len() as u64;
            if *all {
                // The fused operator is position-dependent, so only the
                // order-preserving halving/doubling pair may replace the
                // balanced butterfly — and only when the model says the
                // saved bandwidth beats the doubled start-ups.
                let use_halving = config.adaptive_reduction
                    && matches!(v, Value::List(_))
                    && balanced_halving_wins(
                        ctx.size(),
                        words,
                        *words_factor,
                        *ops_combine,
                        &ctx.params(),
                    );
                if use_halving {
                    *v = allreduce_balanced_halving_async(ctx, v.clone(), 1, &op).await;
                } else {
                    *v = allreduce_balanced_async(ctx, v.clone(), words, &op).await;
                }
            } else if let Some(r) = reduce_balanced_async(ctx, v.clone(), words, &op).await {
                *v = r;
            }
        }
        Stage::ScanBalanced {
            combine,
            solo,
            ops_lower,
            ops_upper,
            ops_solo,
            words_factor,
            ..
        } => {
            let cf = |a: &Value, b: &Value| combine(a, b);
            let sf = |x: &Value| solo(x);
            let op = PairedOp {
                combine: &cf,
                solo: &sf,
                ops_lower: *ops_lower,
                ops_upper: *ops_upper,
                ops_solo: *ops_solo,
                words_factor: *words_factor,
            };
            let words = v.block_len() as u64;
            *v = scan_balanced_async(ctx, v.clone(), words, &op).await;
        }
        Stage::Comcast {
            e,
            o,
            inject,
            project,
            ops_e,
            ops_o,
            words_factor,
            variant,
            ..
        } => {
            let ef = |x: &Value| e(x);
            let of = |x: &Value| o(x);
            let op = RepeatOp {
                e: &ef,
                o: &of,
                ops_e: *ops_e,
                ops_o: *ops_o,
            };
            let injf = |b: &Value| inject(b);
            let projf = |s: &Value| project(s);
            let words = v.words().max(1);
            let value = (ctx.rank() == 0).then(|| v.clone());
            *v = match variant {
                ComcastVariant::BcastRepeat => {
                    comcast_bcast_repeat_async(ctx, 0, value, words, &injf, &projf, &op).await
                }
                ComcastVariant::CostOptimal => {
                    comcast_cost_optimal_async(
                        ctx,
                        0,
                        value,
                        words,
                        &injf,
                        &projf,
                        &op,
                        *words_factor,
                    )
                    .await
                }
            };
        }
        Stage::Gather => {
            let words = v.words().max(1);
            if let Some(all) = gather_binomial_async(ctx, v.clone(), words).await {
                *v = Value::list(all);
            }
        }
        Stage::Scatter => {
            let blocks = (ctx.rank() == 0).then(|| {
                let list = v.as_list();
                assert_eq!(
                    list.len(),
                    ctx.size(),
                    "scatter needs one element per processor"
                );
                list.to_vec()
            });
            let words = (v.words() / ctx.size() as u64).max(1);
            *v = scatter_binomial_async(ctx, blocks, words).await;
        }
        Stage::AllGather => {
            let words = v.words().max(1);
            *v = Value::list(allgather_async(ctx, v.clone(), words).await);
        }
        Stage::IterLocal {
            combine,
            solo,
            all,
            ops_combine,
            ops_solo,
            label,
        } => {
            if ctx.rank() == 0 {
                let cf = |a: &Value, b: &Value| combine(a, b);
                let sf = |x: &Value| solo(x);
                let (nv, combines, solos) = iter_balanced(ctx.size(), v, &cf, &sf);
                ctx.charge(
                    combines as f64 * ops_combine * m + solos as f64 * ops_solo * m,
                    label,
                );
                *v = nv;
            }
            if *all {
                let words = v.words();
                let value = (ctx.rank() == 0).then(|| v.clone());
                *v = bcast_binomial_async(ctx, 0, value, words).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::rewrite::Rewriter;
    use crate::semantics::eval_program;
    use crate::term::Program;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn executor_matches_evaluator_on_basic_stages() {
        let prog = Program::new()
            .map("inc", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::add())
            .allreduce(lib::max())
            .bcast();
        for p in [1usize, 2, 3, 6, 8, 13] {
            let input: Vec<i64> = (0..p as i64).map(|i| 2 * i - 3).collect();
            let xs = ints(&input);
            let expected = eval_program(&prog, &xs);
            let got = execute(&prog, &xs, ClockParams::free());
            assert_eq!(got.outputs, expected, "p={p}");
        }
    }

    #[test]
    fn executor_matches_evaluator_on_reduce_semantics() {
        let prog = Program::new().reduce(lib::add());
        let xs = ints(&[1, 2, 3, 4, 5]);
        let got = execute(&prog, &xs, ClockParams::free());
        assert_eq!(got.outputs, eval_program(&prog, &xs));
        assert_eq!(got.outputs[0], Value::Int(15));
        assert_eq!(got.outputs[3], Value::Int(4)); // untouched
    }

    #[test]
    fn optimized_programs_execute_identically() {
        // Every fusible program: original vs exhaustively optimized, on
        // the machine, all positions (rank0-only rules excluded here).
        let programs: Vec<Program> = vec![
            Program::new().scan(lib::mul()).allreduce(lib::add()),
            Program::new().scan(lib::add()).allreduce(lib::add()),
            Program::new().scan(lib::mul()).scan(lib::add()),
            Program::new().scan(lib::add()).scan(lib::add()),
            Program::new().bcast().scan(lib::add()),
            Program::new().bcast().scan(lib::mul()).scan(lib::add()),
            Program::new().bcast().scan(lib::add()).scan(lib::add()),
            Program::new().bcast().allreduce(lib::add()),
        ];
        for prog in programs {
            let opt = Rewriter::exhaustive()
                .allow_rank0_rules(false)
                .optimize(&prog);
            assert!(!opt.steps.is_empty(), "{prog} should be optimizable");
            for p in [2usize, 4, 6, 7] {
                let input: Vec<i64> = (0..p as i64).map(|i| (i % 3) + 1).collect();
                let xs = ints(&input);
                let a = execute(&prog, &xs, ClockParams::free());
                let b = execute(&opt.program, &xs, ClockParams::free());
                assert_eq!(a.outputs, b.outputs, "{prog} p={p}");
                assert_eq!(b.outputs, eval_program(&opt.program, &xs), "{prog} p={p}");
            }
        }
    }

    #[test]
    fn rank0_rules_execute_correctly_on_rank0() {
        let programs: Vec<Program> = vec![
            Program::new().bcast().reduce(lib::add()),
            Program::new().bcast().scan(lib::mul()).reduce(lib::add()),
            Program::new().bcast().scan(lib::add()).reduce(lib::add()),
            Program::new().scan(lib::mul()).reduce(lib::add()),
            Program::new().scan(lib::add()).reduce(lib::add()),
        ];
        for prog in programs {
            let opt = Rewriter::exhaustive().optimize(&prog);
            assert!(!opt.steps.is_empty(), "{prog}");
            for p in [1usize, 2, 5, 8] {
                let mut input = vec![9i64; p];
                input[0] = 2;
                let xs = ints(&input);
                let a = execute(&prog, &xs, ClockParams::free());
                let b = execute(&opt.program, &xs, ClockParams::free());
                assert_eq!(a.outputs[0], b.outputs[0], "{prog} p={p}");
            }
        }
    }

    #[test]
    fn fused_program_communicates_less() {
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let opt = Rewriter::exhaustive().optimize(&prog).program;
        let xs = ints(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let orig = execute(&prog, &xs, ClockParams::parsytec_like());
        let fused = execute(&opt, &xs, ClockParams::parsytec_like());
        assert!(fused.total_messages < orig.total_messages);
        assert!(
            fused.makespan < orig.makespan,
            "{} < {}",
            fused.makespan,
            orig.makespan
        );
    }

    #[test]
    fn simulated_makespan_matches_cost_model_for_power_of_two() {
        use collopt_cost::MachineParams;
        let p = 8usize;
        let (ts, tw) = (100.0, 2.0);
        let prog = Program::new().scan(lib::add()).reduce(lib::add());
        let xs: Vec<Value> = (0..p as i64).map(Value::Int).collect();
        let run = execute(&prog, &xs, ClockParams::new(ts, tw));
        let predicted = crate::rewrite::program_cost(&prog, &MachineParams::new(p, ts, tw), 1.0);
        assert_eq!(run.makespan, predicted);
    }

    #[test]
    fn blocks_execute_elementwise() {
        let prog = Program::new().scan(lib::add());
        let input: Vec<Value> = (0..6)
            .map(|i| Value::int_list([i as i64, 100 * i as i64]))
            .collect();
        let got = execute(&prog, &input, ClockParams::free());
        assert_eq!(got.outputs, eval_program(&prog, &input));
    }

    #[test]
    fn gather_family_matches_evaluator() {
        for p in [1usize, 2, 3, 6, 8, 11] {
            let input: Vec<Value> = (0..p as i64).map(|i| Value::Int(3 * i - 1)).collect();
            for prog in [
                Program::new().gather(),
                Program::new().allgather(),
                // `rev` only acts on the root's gathered list; the other
                // processors hold scalars at this point, which it keeps.
                Program::new()
                    .gather()
                    .map("rev", 1.0, |v| match v {
                        Value::List(l) => {
                            let mut l = (**l).clone();
                            l.reverse();
                            Value::list(l)
                        }
                        other => other.clone(),
                    })
                    .scatter(),
            ] {
                let expected = eval_program(&prog, &input);
                let got = execute(&prog, &input, ClockParams::free());
                assert_eq!(got.outputs, expected, "{prog} p={p}");
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip_on_machine() {
        let input: Vec<Value> = (0..7i64).map(Value::Int).collect();
        let prog = Program::new().gather().scatter();
        let got = execute(&prog, &input, ClockParams::parsytec_like());
        assert_eq!(got.outputs, input);
        // ... and the normalizer knows it is the identity.
        let opt = crate::rewrite::Rewriter::exhaustive().optimize(&prog);
        assert!(opt.program.is_empty());
    }

    #[test]
    fn adaptive_bcast_beats_the_fixed_tree_for_large_blocks() {
        let p = 16usize;
        let mw = 32_000usize;
        let prog = Program::new().bcast();
        let input: Vec<Value> = (0..p)
            .map(|r| Value::list(vec![Value::Int(if r == 0 { 7 } else { 0 }); mw]))
            .collect();
        let clock = ClockParams::parsytec_like();
        let fixed = execute(&prog, &input, clock);
        let adaptive = execute_with(
            &prog,
            &input,
            clock,
            ExecConfig {
                adaptive_bcast: true,
                ..ExecConfig::default()
            },
        );
        assert_eq!(fixed.outputs, adaptive.outputs);
        assert!(
            adaptive.makespan < fixed.makespan,
            "adaptive {} must beat binomial {} at m={mw}",
            adaptive.makespan,
            fixed.makespan
        );
        // For tiny blocks the selector falls back to the binomial tree
        // (plus the 1-word length pre-broadcast).
        let small: Vec<Value> = (0..p)
            .map(|_| Value::list(vec![Value::Int(1); 4]))
            .collect();
        let f = execute(&prog, &small, clock);
        let a = execute_with(
            &prog,
            &small,
            clock,
            ExecConfig {
                adaptive_bcast: true,
                ..ExecConfig::default()
            },
        );
        assert_eq!(f.outputs, a.outputs);
        let preamble = 4.0 * (clock.ts + clock.tw);
        assert!(a.makespan <= f.makespan + preamble + 1.0);
    }

    #[test]
    fn adaptive_reduction_beats_the_fixed_butterfly_for_large_blocks() {
        let p = 16usize;
        let mw = 32_000usize;
        let prog = Program::new().allreduce(lib::add());
        let input: Vec<Value> = (0..p)
            .map(|r| Value::list(vec![Value::Int(r as i64); mw]))
            .collect();
        let clock = ClockParams::parsytec_like();
        let fixed = execute(&prog, &input, clock);
        let adaptive = execute_with(
            &prog,
            &input,
            clock,
            ExecConfig {
                adaptive_reduction: true,
                ..ExecConfig::default()
            },
        );
        assert_eq!(fixed.outputs, adaptive.outputs);
        assert!(
            adaptive.makespan < fixed.makespan,
            "adaptive {} must beat butterfly {} at m={mw}",
            adaptive.makespan,
            fixed.makespan
        );
        // Below the crossover the selector keeps the butterfly, so the
        // adaptive run costs exactly the same.
        let small: Vec<Value> = (0..p)
            .map(|r| Value::list(vec![Value::Int(r as i64); 4]))
            .collect();
        let f = execute(&prog, &small, clock);
        let a = execute_with(
            &prog,
            &small,
            clock,
            ExecConfig {
                adaptive_reduction: true,
                ..ExecConfig::default()
            },
        );
        assert_eq!(f.outputs, a.outputs);
        assert_eq!(f.makespan, a.makespan);
    }

    #[test]
    fn adaptive_reduction_speeds_up_the_fused_scan_allreduce() {
        // SR-Reduction fuses scan ⊕ allreduce ⊕ into one balanced
        // allreduction; with large blocks the adaptive executor runs its
        // RHS as segmenting halving/doubling and must still match the
        // evaluator (the fused op is order-sensitive).
        let p = 8usize;
        let mw = 2_000usize;
        let prog = Program::new().scan(lib::add()).allreduce(lib::add());
        let opt = Rewriter::exhaustive()
            .allow_rank0_rules(false)
            .optimize(&prog)
            .program;
        let input: Vec<Value> = (0..p)
            .map(|r| {
                Value::list(
                    (0..mw)
                        .map(|i| Value::Int((r * 7 + i % 5) as i64))
                        .collect(),
                )
            })
            .collect();
        let clock = ClockParams::parsytec_like();
        let expected = eval_program(&opt, &input);
        let fixed = execute(&opt, &input, clock);
        let adaptive = execute_with(
            &opt,
            &input,
            clock,
            ExecConfig {
                adaptive_reduction: true,
                ..ExecConfig::default()
            },
        );
        assert_eq!(adaptive.outputs, expected);
        assert_eq!(fixed.outputs, expected);
        assert!(
            adaptive.makespan < fixed.makespan,
            "halving/doubling {} must beat the balanced butterfly {} at m={mw}",
            adaptive.makespan,
            fixed.makespan
        );
    }

    #[test]
    fn profiled_trace_partitions_the_run_into_stages() {
        let prog = Program::new().bcast().scan(lib::mul()).reduce(lib::add());
        let xs = ints(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let clock = ClockParams::new(100.0, 2.0);
        let run = execute_traced_with(
            &prog,
            &xs,
            clock,
            ExecConfig {
                profile: true,
                ..ExecConfig::default()
            },
        );
        // Results unchanged by profiling, and the makespan matches the
        // plain run bit for bit (stage markers are zero-cost).
        let plain = execute(&prog, &xs, clock);
        assert_eq!(run.outcome.outputs, plain.outputs);
        assert_eq!(run.outcome.makespan, plain.makespan);

        let report = run.profile_report();
        assert_eq!(report.stages.len(), prog.len());
        assert_eq!(report.stages[0].label, "bcast");
        assert!(report.stages.windows(2).all(|w| w[0].finish <= w[1].finish));
        assert_eq!(report.stages.last().unwrap().finish, run.outcome.makespan);
        for r in &report.ranks {
            assert_eq!(r.compute + r.comm + r.idle, report.makespan);
        }

        // The critical-path oracle: trace-derived length == clock makespan.
        let path = run.critical_path().expect("trace is causally complete");
        assert_eq!(path.length(), run.outcome.makespan);
    }

    #[test]
    fn execute_profiled_agrees_with_the_stage_markers() {
        let prog = Program::new().scan(lib::add()).allreduce(lib::max());
        let xs = ints(&[5, 2, 8, 1, 7, 3]);
        let clock = ClockParams::parsytec_like();
        let (outcome, finish) = execute_profiled(&prog, &xs, clock);
        assert_eq!(finish.len(), prog.len());
        assert_eq!(*finish.last().unwrap(), outcome.makespan);
        assert!(finish.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(outcome.outputs, eval_program(&prog, &xs));
    }

    #[test]
    fn faulted_execution_with_empty_plan_is_bit_identical() {
        let prog = Program::new()
            .map("inc", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::add())
            .allreduce(lib::max())
            .bcast();
        let xs = ints(&[3, 1, 4, 1, 5, 9]);
        let clock = ClockParams::parsytec_like();
        let plain = execute(&prog, &xs, clock);
        let faulted = execute_faulted(
            &prog,
            &xs,
            clock,
            ExecConfig::default(),
            &FaultPlan::new(12345),
        )
        .expect("an empty plan cannot fail");
        assert_eq!(plain.outputs, faulted.outputs);
        assert_eq!(plain.makespan.to_bits(), faulted.makespan.to_bits());
        assert_eq!(plain.total_compute, faulted.total_compute);
        assert_eq!(plain.total_messages, faulted.total_messages);
        assert_eq!(faulted.total_retries, 0);
        assert_eq!(faulted.total_retry_time, 0.0);
    }

    #[test]
    fn faulted_execution_survives_delays_and_drops_bit_identically() {
        let prog = Program::new().scan(lib::add()).reduce(lib::add()).bcast();
        let xs = ints(&[2, 7, 1, 8, 2, 8, 1, 8]);
        let clock = ClockParams::new(100.0, 2.0);
        let plain = execute(&prog, &xs, clock);
        let plan = FaultPlan::new(9)
            .with_straggler(3, 4.0)
            .with_slow_link(0, 1, 2.0, 25.0)
            .with_drops(0.3, 2);
        let faulted = execute_faulted(&prog, &xs, clock, ExecConfig::default(), &plan)
            .expect("bounded drops are recoverable");
        assert_eq!(
            plain.outputs, faulted.outputs,
            "results must survive faults"
        );
        assert!(faulted.makespan >= plain.makespan);
    }

    #[test]
    fn faulted_execution_surfaces_a_crash_as_rank_failed() {
        let prog = Program::new().scan(lib::add()).allreduce(lib::add());
        let xs = ints(&[1, 2, 3, 4, 5, 6]);
        let clock = ClockParams::parsytec_like();
        let err = execute_faulted(
            &prog,
            &xs,
            clock,
            ExecConfig::default(),
            &FaultPlan::new(0).with_crash(4, 1),
        )
        .expect_err("a crashed rank fails the run");
        assert_eq!(err, MachineError::RankFailed { rank: 4 });
    }

    #[test]
    fn faulted_traced_run_records_retries() {
        let prog = Program::new().bcast();
        let xs = ints(&[7, 0, 0, 0]);
        let clock = ClockParams::new(10.0, 1.0);
        // Binomial bcast from rank 0 over p=4 sends on both lanes 0 -> 1
        // and 0 -> 2 (whatever the tree order); drop each lane's first
        // message once.
        let plan = FaultPlan::new(0)
            .with_drop_exact(0, 1, 0, 1)
            .with_drop_exact(0, 2, 0, 1)
            .with_retry(4, 50.0);
        let run = execute_faulted_traced(&prog, &xs, clock, ExecConfig::default(), &plan)
            .expect("one drop with four attempts is recoverable");
        assert_eq!(run.outcome.total_retries, 2);
        assert!(run.outcome.total_retry_time > 0.0);
        let retries = run
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, collopt_machine::EventKind::Retry { .. }))
            .count();
        assert_eq!(retries, 2);
        let plain = execute(&prog, &xs, clock);
        assert_eq!(plain.outputs, run.outcome.outputs);
    }

    #[test]
    fn makespan_scales_with_block_size() {
        let prog = Program::new().scan(lib::add());
        let small: Vec<Value> = (0..8).map(|_| Value::int_list(vec![1i64; 4])).collect();
        let large: Vec<Value> = (0..8).map(|_| Value::int_list(vec![1i64; 64])).collect();
        let a = execute(&prog, &small, ClockParams::parsytec_like());
        let b = execute(&prog, &large, ClockParams::parsytec_like());
        assert!(b.makespan > a.makespan);
    }
}
