//! The abstract *distribution-state* domain.
//!
//! Every pipeline value lives in one of five abstract states describing
//! which processors hold a meaningful copy after a stage:
//!
//! * [`DistState::Blocked`] — every rank holds its own block (the
//!   paper's distributed list `[x1, …, xn]`); the initial state.
//! * [`DistState::Scanned`] — every rank holds a distinct, meaningful
//!   prefix-style value (the result of `scan`, `scan_balanced`, or the
//!   comcast pattern).
//! * [`DistState::Replicated`] — every rank holds the same value
//!   (`bcast`, `allreduce`, `allgather`).
//! * [`DistState::RootOnly`] — only processor 0 holds the collective's
//!   result; the other ranks keep their *stale* previous values (the
//!   paper's treatment of `reduce`'s undefined positions, eq. 5).
//! * [`DistState::Bottom`] — only processor 0 holds a defined value at
//!   all; every other rank's content is unspecified (the `*-Local`
//!   rules' targets, which skip the non-root computation entirely).
//!
//! [`transfer`] is the abstract interpreter's transfer function: given
//! the state *before* a stage it returns the state *after*. Stages that
//! combine values from **all** ranks (`scan`, `reduce`, `allreduce`,
//! `gather`, `allgather` and the balanced forms) consume stale data when
//! fed `RootOnly` (or undefined data when fed `Bottom`) — the linter's
//! `COL007` — which [`consumes_all_ranks`] exposes.
//!
//! Rewrite certificates record the canonical pre/post states of the rule
//! they justify ([`expected_pre`] / [`expected_post`]); the validator in
//! `collopt-analysis` re-derives both from the rule table alone, so a
//! certificate whose recorded transition disagrees is forged. A rank0-only
//! application (the Local rules on their `reduce` variants) *narrows* the
//! final state from `RootOnly` to `Bottom` — the `COL012` rule-soundness
//! hole the law auditor cannot see.

use crate::rules::Rule;
use crate::term::Stage;

/// Abstract distribution state of the pipeline value between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DistState {
    /// Only rank 0 is defined; other ranks hold unspecified garbage.
    Bottom,
    /// Every rank holds its own block (the initial state).
    Blocked,
    /// Rank 0 holds the result; other ranks hold stale values.
    RootOnly,
    /// Every rank holds an identical copy.
    Replicated,
    /// Every rank holds a distinct meaningful prefix-style value.
    Scanned,
}

impl DistState {
    /// Short lowercase name, used in diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DistState::Bottom => "⊥",
            DistState::Blocked => "blocked",
            DistState::RootOnly => "root-only",
            DistState::Replicated => "replicated",
            DistState::Scanned => "scanned",
        }
    }

    /// Whether every rank holds a meaningful (non-stale, defined) value.
    pub fn all_ranks_meaningful(self) -> bool {
        matches!(
            self,
            DistState::Blocked | DistState::Replicated | DistState::Scanned
        )
    }
}

impl std::fmt::Display for DistState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a stage combines contributions from **every** rank — the
/// stages for which a `RootOnly` (or `Bottom`) input means silently
/// folding stale or undefined non-root values into the result.
pub fn consumes_all_ranks(stage: &Stage) -> bool {
    matches!(
        stage,
        Stage::Scan(_)
            | Stage::Reduce(_)
            | Stage::AllReduce(_)
            | Stage::ReduceBalanced { .. }
            | Stage::ScanBalanced { .. }
            | Stage::Gather
            | Stage::AllGather
    )
}

/// The abstract transfer function: distribution state after `stage` given
/// the state before it.
pub fn transfer(state: DistState, stage: &Stage) -> DistState {
    match stage {
        // A pointwise local computation preserves the shape; a
        // rank-indexed one makes ranks diverge again.
        Stage::Map { .. } => state,
        Stage::MapIndexed { .. } => match state {
            DistState::Bottom => DistState::Bottom,
            DistState::RootOnly => DistState::RootOnly,
            _ => DistState::Blocked,
        },
        // Root-consuming collectives: any state with a defined rank 0
        // works, and they re-establish a well-defined global state.
        Stage::Bcast => DistState::Replicated,
        Stage::Scatter => DistState::Blocked,
        Stage::Comcast { .. } => DistState::Scanned,
        // All-rank-consuming collectives.
        Stage::Scan(_) | Stage::ScanBalanced { .. } => DistState::Scanned,
        Stage::Reduce(_) | Stage::Gather => DistState::RootOnly,
        Stage::AllReduce(_) | Stage::AllGather => DistState::Replicated,
        Stage::ReduceBalanced { all, .. } => {
            if *all {
                DistState::Replicated
            } else {
                DistState::RootOnly
            }
        }
        // The Local rules' target: rank 0 computes alone. The `all`
        // variant (CR-Alllocal) runs the same local iteration on every
        // rank, so all ranks end with the same value.
        Stage::IterLocal { all, .. } => {
            if *all {
                DistState::Replicated
            } else {
                DistState::Bottom
            }
        }
    }
}

/// Fold [`transfer`] over a window of stages.
pub fn window_post(pre: DistState, stages: &[Stage]) -> DistState {
    stages.iter().fold(pre, transfer)
}

/// Canonical distribution state a rule's LHS window assumes on entry.
/// Every Table-1 window starts from per-rank data (the leading `bcast`
/// of the `B*` rules consumes only rank 0's copy).
pub fn expected_pre(_rule: Rule) -> DistState {
    DistState::Blocked
}

/// Canonical distribution state after the rule's RHS, given whether the
/// application preserved only rank 0's value.
///
/// A `rank0_only` application always ends in [`DistState::Bottom`]: the
/// fused local iteration never materializes the non-root values the LHS
/// produced. A full application ends where the LHS ends — `Scanned` for
/// the scan/comcast families, `Replicated` for the allreduce variants.
pub fn expected_post(rule: Rule, rank0_only: bool) -> DistState {
    if rank0_only {
        return DistState::Bottom;
    }
    match rule {
        // Full (allreduce-variant) applications of the reduction family.
        Rule::Sr2Reduction | Rule::SrReduction => DistState::Replicated,
        // The scan and comcast families end with per-rank prefix values.
        Rule::Ss2Scan | Rule::SsScan => DistState::Scanned,
        Rule::Bss2Comcast | Rule::BssComcast | Rule::BsComcast => DistState::Scanned,
        // Local-rule allreduce variants replicate via the local iteration
        // on every rank (CR-Alllocal) or an appended broadcast.
        Rule::Bsr2Local | Rule::BsrLocal | Rule::BrLocal | Rule::CrAlllocal => {
            DistState::Replicated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lib;
    use crate::rewrite::Rewriter;
    use crate::term::Program;

    #[test]
    fn pipeline_states_follow_the_paper_semantics() {
        let prog = Program::new()
            .scan(lib::mul())
            .reduce(lib::add())
            .bcast()
            .scan(lib::add());
        let mut state = DistState::Blocked;
        let mut seen = Vec::new();
        for stage in prog.stages() {
            state = transfer(state, stage);
            seen.push(state);
        }
        assert_eq!(
            seen,
            vec![
                DistState::Scanned,
                DistState::RootOnly,
                DistState::Replicated,
                DistState::Scanned,
            ]
        );
    }

    #[test]
    fn every_applied_step_matches_the_canonical_transition() {
        for prog in [
            Program::new().scan(lib::mul()).reduce(lib::add()),
            Program::new().scan(lib::mul()).allreduce(lib::add()),
            Program::new().bcast().scan(lib::add()),
            Program::new().bcast().reduce(lib::add()),
            Program::new().bcast().scan(lib::mul()).reduce(lib::add()),
        ] {
            let res = Rewriter::exhaustive().optimize(&prog);
            for step in &res.steps {
                assert_eq!(step.certificate.dist_pre, expected_pre(step.rule));
                assert_eq!(
                    step.certificate.dist_post,
                    expected_post(step.rule, step.rank0_only),
                    "{}",
                    step.rule
                );
            }
        }
    }

    #[test]
    fn rank0_application_narrows_to_bottom() {
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert!(res.steps[0].rank0_only);
        assert_eq!(res.steps[0].certificate.dist_post, DistState::Bottom);
        // The narrowing is visible against the LHS window's own post.
        let lhs_post = window_post(DistState::Blocked, prog.stages());
        assert_eq!(lhs_post, DistState::RootOnly);
        assert_ne!(res.steps[0].certificate.dist_post, lhs_post);
    }
}
