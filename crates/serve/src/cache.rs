//! The optimization cache: a bounded LRU from canonical request keys to
//! pre-rendered response bodies.
//!
//! Saturation-based extraction is a pure function of `(canonicalized
//! pipeline, MachineParams, options)`, so the cache stores the fully
//! rendered `result` JSON object behind an [`Arc`] — a hit costs one
//! hash lookup and an `Arc` clone, never a re-render, and the bytes a
//! hit returns are the very bytes the cold path produced. Eviction is
//! least-recently-used over a fixed capacity; hit/miss/eviction counts
//! are exposed for the `stats` op and the load-generator gates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The LRU bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    map: HashMap<String, (Arc<String>, u64)>,
    /// Monotone recency clock; the entry with the smallest stamp is the
    /// LRU victim. Wraps after 2^64 touches — never in practice.
    tick: u64,
}

/// A thread-safe bounded LRU cache of rendered response bodies.
pub struct Cache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Cache {
    /// An empty cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Cache {
        Cache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `key`, computing the value with `f` on a miss.
    ///
    /// The compute runs *outside* the lock so a batch of distinct misses
    /// saturates the worker pool instead of serializing on the cache.
    /// Two threads racing on the same key both compute; the loser's value
    /// is discarded (the function is pure, so the bytes are identical
    /// either way and callers cannot observe the race).
    pub fn get_or_insert_with(&self, key: &str, f: impl FnOnce() -> String) -> Arc<String> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((value, stamp)) = inner.map.get_mut(key) {
                *stamp = tick;
                let value = Arc::clone(value);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return value;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(f());
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((existing, stamp)) = inner.map.get_mut(key) {
            // Lost a race on the same key: keep the resident entry.
            *stamp = tick;
            return Arc::clone(existing);
        }
        if inner.map.len() >= self.capacity {
            // O(capacity) victim scan — misses cost milliseconds of
            // saturation, so a linear pass over ≤ capacity entries is
            // noise; no intrusive list needed.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner
            .map
            .insert(key.to_string(), (Arc::clone(&value), tick));
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_allocation() {
        let cache = Cache::new(4);
        let a = cache.get_or_insert_with("k", || "v".to_string());
        let b = cache.get_or_insert_with("k", || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = Cache::new(2);
        cache.get_or_insert_with("a", || "1".into());
        cache.get_or_insert_with("b", || "2".into());
        cache.get_or_insert_with("a", || unreachable!()); // touch a: b is now LRU
        cache.get_or_insert_with("c", || "3".into()); // evicts b
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        cache.get_or_insert_with("a", || unreachable!("a stayed resident"));
        let mut recomputed = false;
        cache.get_or_insert_with("b", || {
            recomputed = true;
            "2".into()
        });
        assert!(recomputed, "b was evicted and recomputes");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let cache = Cache::new(0);
        cache.get_or_insert_with("a", || "1".into());
        cache.get_or_insert_with("a", || unreachable!("even capacity 0 holds one entry"));
    }
}
