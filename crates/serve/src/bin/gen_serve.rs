//! `gen_serve` — load generator and gate for the serve front end.
//!
//! Two phases, both deterministic in everything but wall-clock time:
//!
//! 1. **In-process gates.** For every hot-set pipeline: one cold
//!    request (full saturation + lint + render), then a burst of hot
//!    requests. Gates, hard (non-zero exit):
//!    * every hot response is byte-identical to its cold response;
//!    * the *minimum* hot-set speedup (cold µs / median hot µs) is
//!      ≥ 10× — the cache must beat cold saturation by an order of
//!      magnitude;
//!    * replaying a mixed request log through fresh services with 1
//!      and 4 dispatch workers yields identical byte streams (batch
//!      composition and `SWEEP_WORKERS` must not leak into results).
//! 2. **TCP load.** A loopback server plus `SERVE_CLIENTS` closed-loop
//!    client threads issuing `SERVE_REQS` requests: `SERVE_SKEW`% drawn
//!    from the `SERVE_HOT`-sized hot set, the rest cache-cold (distinct
//!    machine shapes). Records sustained req/s, p50/p99 latency, and
//!    the cache hit rate into `results/BENCH_serve.json`; also checks
//!    a TCP response byte-matches the in-process service.
//!
//! Knobs: `SERVE_REQS` (default 2000), `SERVE_CLIENTS` (4),
//! `SERVE_HOT` (8), `SERVE_SKEW` (90), `SERVE_SEED`, `SERVE_HOT_REPS`
//! (200). `COLLOPT_SERVE_FLOOR` — when set (req/s), exit non-zero if
//! sustained throughput falls below it.
//!
//! Run with `cargo run --release -p collopt-serve --bin gen_serve`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use collopt_bench::harness::{env_floor, env_u64, env_usize};
use collopt_bench::sweep_driver::par_map_with;
use collopt_machine::{Json, Rng};
use collopt_serve::{Server, ServerConfig, Service, DEFAULT_CACHE_CAPACITY};

/// Representative pipelines a compiler workload would resubmit: the
/// examples corpus plus the paper's running examples.
const HOT_POOL: &[&str] = &[
    "map f ; scan(mul) ; reduce(add) ; map g ; bcast",
    "scan(add) ; reduce(add)",
    "scan(mul) ; reduce(add)",
    "bcast ; scan(add) ; scan(add) ; reduce(max)",
    "scatter ; map work ; gather",
    "allreduce(add) ; bcast",
    "map prep ; reduce(add) ; map post",
    "scan(max) ; reduce(min)",
];

fn optimize_line(id: u64, pipeline: &str, p: usize) -> String {
    format!("{{\"id\":{id},\"pipeline\":\"{pipeline}\",\"p\":{p}}}")
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let reqs = env_u64("SERVE_REQS", 2000);
    let clients = env_usize("SERVE_CLIENTS", 4).max(1);
    let hot_n = env_usize("SERVE_HOT", HOT_POOL.len()).clamp(1, HOT_POOL.len());
    let skew = env_u64("SERVE_SKEW", 90).min(100);
    let seed = env_u64("SERVE_SEED", 0x5E12E);
    let hot_reps = env_usize("SERVE_HOT_REPS", 200).max(1);
    let hot_set = &HOT_POOL[..hot_n];

    println!("# gen_serve: reqs={reqs} clients={clients} hot={hot_n} skew={skew}% seed={seed:#x}");

    // ---- Phase 1: in-process cache gates -------------------------------
    let service = Service::new(DEFAULT_CACHE_CAPACITY);
    let mut hot_rows = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut identical = true;
    for (i, pipeline) in hot_set.iter().enumerate() {
        let line = optimize_line(i as u64, pipeline, 64);
        let t0 = Instant::now();
        let cold = service.handle_line(&line);
        let cold_us = t0.elapsed().as_secs_f64() * 1e6;
        let mut hot_us: Vec<f64> = Vec::with_capacity(hot_reps);
        let mut last = None;
        for _ in 0..hot_reps {
            let t = Instant::now();
            let hot = service.handle_line(&line);
            hot_us.push(t.elapsed().as_secs_f64() * 1e6);
            last = Some(hot.text);
        }
        hot_us.sort_by(|a, b| a.total_cmp(b));
        let hot_med = hot_us[hot_us.len() / 2];
        let speedup = cold_us / hot_med.max(1e-3);
        min_speedup = min_speedup.min(speedup);
        if last.as_deref() != Some(cold.text.as_str()) {
            identical = false;
            eprintln!("FAIL: hot response differs from cold for '{pipeline}'");
        }
        println!(
            "# hot[{i}] cold {cold_us:8.1}us  hot(med) {hot_med:7.2}us  \
             speedup {speedup:8.1}x  {pipeline}"
        );
        hot_rows.push(format!(
            "    {{\"pipeline\": \"{pipeline}\", \"cold_us\": {cold_us:.1}, \
             \"hot_med_us\": {hot_med:.2}, \"speedup\": {speedup:.1}}}"
        ));
    }

    // Determinism: one mixed log, replayed on fresh services with
    // different worker counts, must produce identical byte streams.
    let mut log: Vec<String> = Vec::new();
    let mut rng = Rng::new(seed ^ 0xD15);
    for id in 0..64u64 {
        let pipeline = HOT_POOL[rng.below(HOT_POOL.len() as u64) as usize];
        let p = [8usize, 64, 64, 256][rng.below(4) as usize];
        log.push(optimize_line(id, pipeline, p));
    }
    let run_log = |workers: usize| -> Vec<String> {
        let fresh = Service::new(DEFAULT_CACHE_CAPACITY);
        par_map_with(log.clone(), workers, |l| fresh.handle_line(&l).text)
    };
    let workers_invariant = run_log(1) == run_log(4);
    if !workers_invariant {
        eprintln!("FAIL: responses depend on the dispatch worker count");
    }
    println!(
        "# determinism: 1-worker and 4-worker replays {}",
        if workers_invariant {
            "byte-identical"
        } else {
            "DIFFER"
        }
    );

    // ---- Phase 2: TCP load ---------------------------------------------
    let tcp_service = Arc::new(Service::new(DEFAULT_CACHE_CAPACITY));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&tcp_service),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || server.run());

    // One TCP response must byte-match the in-process service (same
    // line, fresh local service so both are cold paths).
    let probe = optimize_line(7777, HOT_POOL[0], 64);
    let via_tcp = collopt_serve::submit(addr, &probe).expect("probe response");
    let local = Service::new(4).handle_line(&probe).text;
    let tcp_matches_inprocess = via_tcp == local;
    if !tcp_matches_inprocess {
        eprintln!("FAIL: TCP response differs from the in-process service");
    }

    let per_client = (reqs as usize).div_ceil(clients);
    let t_load = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let hot: Vec<String> = hot_set.iter().map(|s| s.to_string()).collect();
        handles.push(thread::spawn(move || -> Vec<u64> {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
            let mut reader = BufReader::new(stream);
            let mut rng = Rng::new(seed.wrapping_add(c as u64 * 0x9E37));
            let mut latencies = Vec::with_capacity(per_client);
            let mut response = String::new();
            for i in 0..per_client {
                let id = (c * per_client + i) as u64;
                let line = if rng.below(100) < skew {
                    optimize_line(id, &hot[rng.below(hot.len() as u64) as usize], 64)
                } else {
                    // Cache-cold: a distinct machine shape per request.
                    let p = 3 + (id as usize % 1000) * 2 + c;
                    optimize_line(id, "scan(add) ; reduce(add)", p)
                };
                let t = Instant::now();
                writeln!(writer, "{line}").expect("send");
                writer.flush().expect("flush");
                response.clear();
                reader.read_line(&mut response).expect("recv");
                latencies.push(t.elapsed().as_nanos() as u64);
                assert!(
                    response.contains("\"ok\":true"),
                    "request failed: {response}"
                );
            }
            latencies
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall_s = t_load.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let total = latencies.len();
    let req_per_s = total as f64 / wall_s;
    let p50_us = percentile(&latencies, 0.50) as f64 / 1e3;
    let p99_us = percentile(&latencies, 0.99) as f64 / 1e3;

    let stats_line = collopt_serve::submit(addr, "{\"id\":0,\"op\":\"stats\"}").expect("stats");
    let stats = Json::parse(&stats_line).expect("stats JSON");
    let cache = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache stats");
    let hits = cache.get("hits").and_then(|x| x.as_f64()).unwrap_or(0.0);
    let misses = cache.get("misses").and_then(|x| x.as_f64()).unwrap_or(0.0);
    let hit_rate = cache
        .get("hit_rate")
        .and_then(|x| x.as_f64())
        .unwrap_or(0.0);

    let bye = collopt_serve::submit(addr, "{\"id\":0,\"op\":\"shutdown\"}").expect("shutdown");
    assert!(bye.contains("bye"), "unexpected shutdown reply: {bye}");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    println!(
        "# load: {total} reqs in {wall_s:.2}s = {req_per_s:.0} req/s, \
         p50 {p50_us:.0}us p99 {p99_us:.0}us, hit rate {:.1}%",
        hit_rate * 100.0
    );

    // ---- Artifact -------------------------------------------------------
    std::fs::create_dir_all("results").expect("mkdir results");
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"generated_by\": \"gen_serve\",\n  \
         \"config\": {{\"reqs\": {reqs}, \"clients\": {clients}, \"hot_set\": {hot_n}, \
         \"skew_percent\": {skew}, \"seed\": {seed}}},\n  \
         \"hot_set\": [\n{}\n  ],\n  \
         \"min_speedup\": {min_speedup:.1},\n  \"speedup_floor\": 10.0,\n  \
         \"identity\": {{\"cold_hot_identical\": {identical}, \
         \"workers_invariant\": {workers_invariant}, \
         \"tcp_matches_inprocess\": {tcp_matches_inprocess}}},\n  \
         \"load\": {{\"requests\": {total}, \"wall_s\": {wall_s:.3}, \
         \"req_per_s\": {req_per_s:.1}, \"p50_us\": {p50_us:.1}, \"p99_us\": {p99_us:.1}, \
         \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
         \"hit_rate\": {hit_rate:.4}}}}}\n}}\n",
        hot_rows.join(",\n")
    );
    std::fs::write("results/BENCH_serve.json", json).expect("write results/BENCH_serve.json");
    println!("# wrote results/BENCH_serve.json");

    // ---- Gates ----------------------------------------------------------
    let mut failed = !identical || !workers_invariant || !tcp_matches_inprocess;
    if min_speedup < 10.0 {
        eprintln!("FAIL: min cache-hit speedup {min_speedup:.1}x below the 10x floor");
        failed = true;
    }
    // The hot-set mix must actually hit: with skew% hot requests the
    // rate should comfortably clear half the skew.
    let expected = skew as f64 / 100.0 * 0.5;
    if hit_rate < expected {
        eprintln!(
            "FAIL: cache hit rate {:.1}% below sanity floor {:.1}%",
            hit_rate * 100.0,
            expected * 100.0
        );
        failed = true;
    }
    if let Some(floor) = env_floor("COLLOPT_SERVE_FLOOR") {
        if req_per_s < floor {
            eprintln!("FAIL: {req_per_s:.0} req/s below floor {floor:.0} req/s");
            failed = true;
        } else {
            println!("# throughput floor {floor:.0} req/s satisfied ({req_per_s:.0} req/s)");
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("# all serve gates passed (min speedup {min_speedup:.1}x)");
}
