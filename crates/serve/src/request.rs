//! The JSON-lines request protocol.
//!
//! One request per line, one response per line, over any byte stream
//! (the server speaks it over TCP; `gen_serve` also drives it
//! in-process). A request is a JSON object:
//!
//! ```json
//! {"id": 7, "op": "optimize", "pipeline": "scan(mul) ; reduce(add)",
//!  "p": 64, "ts": 200, "tw": 2, "m": 32,
//!  "options": {"all_ranks": false, "lint": true,
//!              "simulate": false, "engine": "des"}}
//! ```
//!
//! `op` defaults to `"optimize"`; `"ping"`, `"stats"` and `"shutdown"`
//! are control operations. Machine parameters default to the CLI's
//! (`p=64, ts=200, tw=2, m=32`). The `id` is echoed verbatim in the
//! response and is the caller's correlation handle — it never enters
//! the cache key.
//!
//! Responses are `{"id":…,"ok":true,"result":…}` or
//! `{"id":…,"ok":false,"error":{"code":…,"message":…}}` with error
//! codes `bad_json` (the line is not a JSON object), `bad_request`
//! (a field is missing, mistyped, or out of range) and `parse_error`
//! (the pipeline spec does not parse; the message carries the caret
//! diagnostic).

use collopt_machine::{ExecEngine, Json};

/// Default processor count, matching `collopt`'s `--p`.
pub const DEFAULT_P: usize = 64;
/// Default start-up time, matching `--ts`.
pub const DEFAULT_TS: f64 = 200.0;
/// Default per-word transfer time, matching `--tw`.
pub const DEFAULT_TW: f64 = 2.0;
/// Default block size, matching `--m`.
pub const DEFAULT_M: f64 = 32.0;

/// A fully validated optimize request — everything that determines the
/// response body (and therefore the cache key).
#[derive(Debug, Clone)]
pub struct OptimizeRequest {
    /// The pipeline source text.
    pub pipeline: String,
    /// Processor count.
    pub p: usize,
    /// Message start-up time.
    pub ts: f64,
    /// Per-word transfer time.
    pub tw: f64,
    /// Block size in words.
    pub m: f64,
    /// Restrict to rules preserving every rank's value (`--all-ranks`).
    pub all_ranks: bool,
    /// Attach the linter's diagnostics to the response.
    pub lint: bool,
    /// Run both pipelines on the simulated machine and attach makespans.
    pub simulate: bool,
    /// Engine for `simulate` (DES by default: single-threaded and
    /// memory-bound, so huge `p` is fine).
    pub engine: ExecEngine,
}

/// The operation a request asks for.
#[derive(Debug, Clone)]
pub enum Op {
    /// Optimize a pipeline (the default).
    Optimize(OptimizeRequest),
    /// Liveness probe.
    Ping,
    /// Cache/throughput counters.
    Stats,
    /// Drain in-flight requests and stop the server.
    Shutdown,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim in the response (`null` when absent).
    pub id: Json,
    /// What to do.
    pub op: Op,
}

/// Machine-readable error category, the `error.code` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a JSON object.
    BadJson,
    /// A field is missing, mistyped, or out of range.
    BadRequest,
    /// The pipeline spec does not parse.
    ParseError,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ParseError => "parse_error",
        }
    }
}

/// Why a request line was refused.
#[derive(Debug, Clone)]
pub struct RequestError {
    /// The echoed id (null when the line didn't even parse).
    pub id: Json,
    /// Category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Render a success response line (no trailing newline). `body` must be
/// a rendered JSON value; it is spliced in verbatim, which is what lets
/// cache hits reuse the cold path's bytes without re-rendering.
pub fn ok_response(id: &Json, body: &str) -> String {
    format!("{{\"id\":{},\"ok\":true,\"result\":{body}}}", id.render())
}

/// Render an error response line (no trailing newline).
pub fn error_response(err: &RequestError) -> String {
    let doc = Json::Obj(vec![
        ("id".into(), err.id.clone()),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::Str(err.code.as_str().into())),
                ("message".into(), Json::Str(err.message.clone())),
            ]),
        ),
    ]);
    doc.render()
}

fn bad(id: &Json, code: ErrorCode, message: impl Into<String>) -> RequestError {
    RequestError {
        id: id.clone(),
        code,
        message: message.into(),
    }
}

fn get_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("'{key}' must be a boolean")),
    }
}

fn get_f64(obj: &Json, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("'{key}' must be a finite number")),
    }
}

/// Parse and validate one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let null = Json::Null;
    let doc = Json::parse(line.trim())
        .map_err(|e| bad(&null, ErrorCode::BadJson, format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad(
            &null,
            ErrorCode::BadJson,
            "request must be a JSON object",
        ));
    }
    let id = doc.get("id").cloned().unwrap_or(Json::Null);

    let op = match doc.get("op") {
        None | Some(Json::Null) => "optimize",
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err(bad(&id, ErrorCode::BadRequest, "'op' must be a string")),
    };
    match op {
        "ping" => return Ok(Request { id, op: Op::Ping }),
        "stats" => return Ok(Request { id, op: Op::Stats }),
        "shutdown" => {
            return Ok(Request {
                id,
                op: Op::Shutdown,
            })
        }
        "optimize" => {}
        other => {
            return Err(bad(
                &id,
                ErrorCode::BadRequest,
                format!("unknown op '{other}' (expected optimize, ping, stats, shutdown)"),
            ))
        }
    }

    let pipeline = match doc.get("pipeline") {
        Some(Json::Str(s)) => s.clone(),
        Some(_) => {
            return Err(bad(
                &id,
                ErrorCode::BadRequest,
                "'pipeline' must be a string",
            ))
        }
        None => return Err(bad(&id, ErrorCode::BadRequest, "missing 'pipeline'")),
    };

    let p = get_f64(&doc, "p", DEFAULT_P as f64).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    if !(1.0..=16_777_216.0).contains(&p) || p.fract() != 0.0 {
        return Err(bad(
            &id,
            ErrorCode::BadRequest,
            "'p' must be an integer in 1..=16777216",
        ));
    }
    let ts = get_f64(&doc, "ts", DEFAULT_TS).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    let tw = get_f64(&doc, "tw", DEFAULT_TW).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    if ts < 0.0 || tw < 0.0 {
        return Err(bad(
            &id,
            ErrorCode::BadRequest,
            "'ts' and 'tw' must be non-negative",
        ));
    }
    let m = get_f64(&doc, "m", DEFAULT_M).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    if !(0.0..=1e9).contains(&m) {
        return Err(bad(&id, ErrorCode::BadRequest, "'m' must be in 0..=1e9"));
    }

    let options = doc.get("options").cloned().unwrap_or(Json::Obj(vec![]));
    if !matches!(options, Json::Obj(_)) {
        return Err(bad(
            &id,
            ErrorCode::BadRequest,
            "'options' must be an object",
        ));
    }
    let all_ranks =
        get_bool(&options, "all_ranks", false).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    let lint = get_bool(&options, "lint", true).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    let simulate =
        get_bool(&options, "simulate", false).map_err(|m| bad(&id, ErrorCode::BadRequest, m))?;
    let engine = match options.get("engine") {
        None | Some(Json::Null) => ExecEngine::Des,
        Some(Json::Str(s)) => s
            .parse()
            .map_err(|e: String| bad(&id, ErrorCode::BadRequest, e))?,
        Some(_) => return Err(bad(&id, ErrorCode::BadRequest, "'engine' must be a string")),
    };
    if simulate {
        if let Some(cap) = engine.max_p().filter(|&cap| p as usize > cap) {
            return Err(bad(
                &id,
                ErrorCode::BadRequest,
                format!(
                    "p={p} exceeds the {} engine's {cap}-rank ceiling; use engine 'des'",
                    engine.name()
                ),
            ));
        }
    }

    Ok(Request {
        id,
        op: Op::Optimize(OptimizeRequest {
            pipeline,
            p: p as usize,
            ts,
            tw,
            m,
            all_ranks,
            lint,
            simulate,
            engine,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_cli() {
        let req = parse_request(r#"{"pipeline":"scan(add) ; reduce(add)"}"#).unwrap();
        let Op::Optimize(opt) = req.op else {
            panic!("optimize is the default op")
        };
        assert_eq!(opt.p, DEFAULT_P);
        assert_eq!(opt.ts, DEFAULT_TS);
        assert_eq!(opt.tw, DEFAULT_TW);
        assert_eq!(opt.m, DEFAULT_M);
        assert!(!opt.all_ranks);
        assert!(opt.lint);
        assert!(!opt.simulate);
        assert_eq!(opt.engine, ExecEngine::Des);
        assert_eq!(req.id, Json::Null);
    }

    #[test]
    fn error_codes_cover_the_three_failure_classes() {
        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadJson);
        let e = parse_request("[1,2]").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadJson);
        let e = parse_request(r#"{"id":3,"op":"fly"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert_eq!(e.id, Json::Num(3.0));
        let e = parse_request(r#"{"op":"optimize"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = parse_request(r#"{"pipeline":"map f","p":-1}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = parse_request(r#"{"pipeline":"map f","options":{"engine":"warp"}}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn thread_engines_refuse_oversized_machines_only_when_simulating() {
        let line =
            r#"{"pipeline":"map f","p":100000,"options":{"engine":"pooled","simulate":true}}"#;
        let e = parse_request(line).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("des"));
        // Without simulation the engine is irrelevant, so huge p is fine.
        let line = r#"{"pipeline":"map f","p":100000,"options":{"engine":"pooled"}}"#;
        assert!(parse_request(line).is_ok());
    }

    #[test]
    fn responses_render_compactly() {
        assert_eq!(
            ok_response(&Json::Num(1.0), "{\"pong\":true}"),
            r#"{"id":1,"ok":true,"result":{"pong":true}}"#
        );
        let err = RequestError {
            id: Json::Str("a".into()),
            code: ErrorCode::ParseError,
            message: "nope".into(),
        };
        assert_eq!(
            error_response(&err),
            r#"{"id":"a","ok":false,"error":{"code":"parse_error","message":"nope"}}"#
        );
    }
}
