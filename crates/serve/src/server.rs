//! The JSON-lines-over-TCP server and the matching one-shot client.
//!
//! ## Architecture
//!
//! ```text
//! accept loop ──► reader thread per connection ──► job queue (mpsc)
//!                                                      │
//!                                  dispatcher thread ◄─┘
//!                        drain queue into a batch, then
//!                        par_map_with(batch, SWEEP_WORKERS) over
//!                        Service::handle_line, reply in batch order
//! ```
//!
//! A single dispatcher owns the receive side of the queue: it blocks
//! for the first job, opportunistically drains up to
//! [`ServerConfig::batch_limit`] more, and runs the whole batch
//! through the bench crate's deterministic worker pool
//! ([`par_map_with`]). Because [`Service::handle_line`] is a pure
//! function of the line, batch composition and worker count can only
//! change *latency*, never bytes. Replies are written in batch order
//! by the dispatcher alone, so each connection sees its responses in
//! the order it sent requests (the queue is FIFO per sender).
//!
//! Batches of size one — the common case under low concurrency — run
//! inline on the long-lived dispatcher thread, where the machine
//! crate's thread-local per-`p` engine cache persists across requests:
//! repeated machine shapes reuse their rank pool and mesh instead of
//! rebuilding them. Larger batches trade that for parallelism.
//!
//! ## Graceful shutdown
//!
//! A `shutdown` op answers `{"bye":true}`, then: the stop flag is set,
//! every registered connection's read half is closed (readers see EOF
//! and hang up), and a self-connection wakes the blocking accept loop.
//! The mpsc channel delivers already-queued jobs before reporting
//! disconnection, so every request enqueued before the shutdown is
//! processed and answered — nothing in flight is dropped.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use collopt_bench::sweep_driver::{default_workers, par_map_with};

use crate::service::{Reply, Service};

/// Tunables for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads for batch dispatch; defaults to `SWEEP_WORKERS`
    /// or the CPU count (see [`default_workers`]).
    pub workers: usize,
    /// Most jobs drained into one batch.
    pub batch_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: default_workers(),
            batch_limit: 64,
        }
    }
}

/// One queued request: the line and where to write the response.
struct Job {
    line: String,
    out: Arc<Mutex<BufWriter<TcpStream>>>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<Service>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            config,
        })
    }

    /// The bound address — read it before [`run`](Server::run) to know
    /// the ephemeral port.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request arrives; drains in-flight
    /// requests before returning.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let (job_tx, job_rx) = mpsc::channel::<Job>();

        let dispatcher = {
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let config = self.config.clone();
            thread::spawn(move || dispatch_loop(job_rx, service, config, stop, conns, addr))
        };

        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if stop.load(Ordering::SeqCst) {
                break; // the shutdown wake-up connection
            }
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            conns.lock().unwrap().push(read_half);
            let out = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
            let tx = job_tx.clone();
            thread::spawn(move || read_loop(stream, out, tx));
        }
        drop(job_tx);
        let _ = dispatcher.join();
        Ok(())
    }
}

/// Per-connection reader: one job per non-empty line, until EOF.
fn read_loop(stream: TcpStream, out: Arc<Mutex<BufWriter<TcpStream>>>, tx: Sender<Job>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let job = Job {
                    line: trimmed.to_string(),
                    out: Arc::clone(&out),
                };
                if tx.send(job).is_err() {
                    break;
                }
            }
        }
    }
}

fn dispatch_loop(
    rx: Receiver<Job>,
    service: Arc<Service>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    addr: SocketAddr,
) {
    // Runs until every Sender is gone *and* the queue is drained — mpsc
    // delivers all buffered jobs before reporting disconnection, which
    // is exactly the no-dropped-in-flight-requests guarantee.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < config.batch_limit.max(1) {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let lines: Vec<String> = batch.iter().map(|j| j.line.clone()).collect();
        let replies: Vec<Reply> =
            par_map_with(lines, config.workers, |line| service.handle_line(&line));
        let mut shutdown = false;
        for (job, reply) in batch.iter().zip(&replies) {
            shutdown |= reply.shutdown;
            let mut out = job.out.lock().unwrap();
            // A hung-up client is its own problem; keep serving others.
            let _ = writeln!(out, "{}", reply.text);
            let _ = out.flush();
        }
        if shutdown && !stop.swap(true, Ordering::SeqCst) {
            // Close every read half so readers hang up and release their
            // queue senders, then poke the accept loop awake.
            for conn in conns.lock().unwrap().iter() {
                let _ = conn.shutdown(Shutdown::Read);
            }
            let _ = TcpStream::connect(addr);
        }
    }
}

/// One-shot client: connect, send one request line, read one response
/// line. The transport behind `collopt submit`.
pub fn submit(addr: impl ToSocketAddrs, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    writeln!(writer, "{}", line.trim())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}
