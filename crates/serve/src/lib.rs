#![forbid(unsafe_code)]
//! # collopt-serve — optimization as a service
//!
//! The amortizing front end over the rewrite calculus: a long-running,
//! dependency-free JSON-lines-over-TCP server that accepts
//! `(pipeline spec, MachineParams, options)` requests and returns the
//! saturation-optimal program with certificates, lint diagnostics, and
//! predicted (optionally simulated) costs.
//!
//! Saturation-based extraction is an expensive, *pure*, deterministic
//! function — exactly the shape that caching and batching turn into a
//! high-throughput service. The three performance layers:
//!
//! * [`cache`] — a bounded LRU keyed by the *canonicalized* pipeline
//!   plus machine parameters and options; hits return the cold path's
//!   rendered bytes behind an `Arc`, zero-copy.
//! * [`service`] — canonicalization ([`collopt_core::rules::enabling`]'s
//!   replayable normalization), cache-key derivation, and the cold
//!   path (saturate → lint → simulate → render through the shared
//!   [`collopt_machine::Json`] writer).
//! * [`server`] — the TCP front: per-connection readers feed a FIFO
//!   queue; a dispatcher drains batches into the bench crate's
//!   deterministic worker pool and answers in order, with graceful
//!   drain-then-stop shutdown.
//!
//! `gen_serve` (this crate's bin) is the load generator that gates the
//! whole stack: cache hits ≥10× faster than cold saturation and
//! byte-identical to it, sustained req/s and tail latency recorded in
//! `results/BENCH_serve.json`. See DESIGN.md §13.

pub mod cache;
pub mod request;
pub mod server;
pub mod service;

pub use cache::{Cache, CacheStats};
pub use request::{
    parse_request, ErrorCode, Op, OptimizeRequest, Request, RequestError, DEFAULT_M, DEFAULT_P,
    DEFAULT_TS, DEFAULT_TW,
};
pub use server::{submit, Server, ServerConfig};
pub use service::{cache_key, canonicalize, Reply, Service, DEFAULT_CACHE_CAPACITY};
