//! Request processing: canonicalize, consult the cache, optimize,
//! render.
//!
//! [`Service::handle_line`] is a *pure function of the request line*
//! (stats aside): the same line always produces the same response
//! bytes, regardless of batch composition, worker count, or cache
//! state. That invariant is what makes both caching and batched
//! dispatch safe, and the integration tests + `gen_serve` gate it.
//!
//! ## Cache key derivation
//!
//! The pipeline is parsed and then *canonicalized* through
//! [`enabling::normalize`] — the same replayable enabling-transformation
//! fixpoint the rewriter itself applies (map fusion, bcast/map
//! commutation, gather;scatter elimination). Specs that differ only in
//! whitespace or spelling parse to the same term; specs that differ by
//! normalization order reach the same fixpoint; both land on the same
//! key. The key appends every field that changes the response —
//! machine parameters (floats by IEEE bit pattern, so `2` and `2.0`
//! and `-0.0`-vs-`0.0` cannot alias) and the option flags. The request
//! `id` is deliberately *not* part of the key: it is spliced around
//! the cached body at reply time.
//!
//! The response body is computed from the canonical program only — the
//! raw source never appears in it — so every spec in an equivalence
//! class shares one cache entry *and* one byte-exact body.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use collopt_analysis::{lint_program, LintConfig};
use collopt_core::exec::{execute_with, ExecConfig};
use collopt_core::parser::parse_pipeline;
use collopt_core::report::optimize_result_json;
use collopt_core::rewrite::Rewriter;
use collopt_core::rules::enabling;
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_cost::MachineParams;
use collopt_machine::{ClockParams, Json};

use crate::cache::{Cache, CacheStats};
use crate::request::{
    error_response, ok_response, parse_request, ErrorCode, Op, OptimizeRequest, Request,
    RequestError,
};

/// Default LRU bound: ~1k distinct (pipeline, machine, options) points.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// One response line plus the shutdown signal for the server loop.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The rendered response (no trailing newline).
    pub text: String,
    /// True when the request was a `shutdown` op.
    pub shutdown: bool,
}

/// The optimization service: cache + counters. Shared across the
/// server's dispatch pool behind an [`Arc`]; all methods take `&self`.
pub struct Service {
    cache: Cache,
    requests: AtomicU64,
}

/// Canonicalize a pipeline spec: parse it and run the enabling
/// normalization to its fixpoint. Returns the canonical program and its
/// rendering (the cache-key prefix). The rendering may not re-parse —
/// fused map labels contain `;` — which is why everything downstream
/// works on the [`Program`], never on its string.
pub fn canonicalize(pipeline: &str) -> Result<(Program, String), String> {
    let prog = parse_pipeline(pipeline).map_err(|e| e.render(pipeline))?;
    let (canonical, _log) = enabling::normalize(&prog);
    let rendered = canonical.to_string();
    Ok((canonical, rendered))
}

/// The full cache key for an optimize request. Public so the
/// key-equality tests can pin the canonicalization guarantees.
pub fn cache_key(req: &OptimizeRequest) -> Result<String, String> {
    let (_, rendered) = canonicalize(&req.pipeline)?;
    Ok(key_for(&rendered, req))
}

fn key_for(canonical: &str, req: &OptimizeRequest) -> String {
    format!(
        "{canonical}|p={}|ts={:016x}|tw={:016x}|m={:016x}|ranks={}|lint={}|sim={}|engine={}",
        req.p,
        req.ts.to_bits(),
        req.tw.to_bits(),
        req.m.to_bits(),
        req.all_ranks,
        req.lint,
        req.simulate,
        req.engine.name(),
    )
}

/// Deterministic synthetic input for simulation: `m` words per rank,
/// small positive ints (safe for every parser operator; floats coerce
/// from ints). Mirrors the `collopt --profile` input generator.
fn synthetic_inputs(p: usize, m: f64) -> Vec<Value> {
    let words = m.clamp(1.0, 1e6) as usize;
    (0..p)
        .map(|r| Value::int_list((0..words).map(|j| ((r * 7 + j) % 5 + 1) as i64)))
        .collect()
}

impl Service {
    /// A service with the given cache capacity.
    pub fn new(cache_capacity: usize) -> Service {
        Service {
            cache: Cache::new(cache_capacity),
            requests: AtomicU64::new(0),
        }
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Total request lines handled (including errors and control ops).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Handle one request line and render the response. Never panics on
    /// malformed input — bad lines become error responses.
    pub fn handle_line(&self, line: &str) -> Reply {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                return Reply {
                    text: error_response(&e),
                    shutdown: false,
                }
            }
        };
        let Request { id, op } = req;
        match op {
            Op::Ping => Reply {
                text: ok_response(&id, "{\"pong\":true}"),
                shutdown: false,
            },
            Op::Stats => Reply {
                text: ok_response(&id, &self.stats_body()),
                shutdown: false,
            },
            Op::Shutdown => Reply {
                text: ok_response(&id, "{\"bye\":true}"),
                shutdown: true,
            },
            Op::Optimize(opt) => match self.optimize_body(&opt) {
                Ok(body) => Reply {
                    text: ok_response(&id, &body),
                    shutdown: false,
                },
                Err(message) => Reply {
                    text: error_response(&RequestError {
                        id,
                        code: ErrorCode::ParseError,
                        message,
                    }),
                    shutdown: false,
                },
            },
        }
    }

    /// The `result` body for an optimize request, from the cache when
    /// possible. `Err` carries the pipeline parse diagnostic.
    pub fn optimize_body(&self, req: &OptimizeRequest) -> Result<Arc<String>, String> {
        let (canonical, rendered) = canonicalize(&req.pipeline)?;
        let key = key_for(&rendered, req);
        Ok(self
            .cache
            .get_or_insert_with(&key, || render_body(&canonical, req)))
    }

    fn stats_body(&self) -> String {
        let s = self.cache.stats();
        Json::Obj(vec![
            ("requests".into(), Json::Num(self.requests() as f64)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(s.hits as f64)),
                    ("misses".into(), Json::Num(s.misses as f64)),
                    ("evictions".into(), Json::Num(s.evictions as f64)),
                    ("entries".into(), Json::Num(s.entries as f64)),
                    ("capacity".into(), Json::Num(s.capacity as f64)),
                    ("hit_rate".into(), Json::Num(s.hit_rate())),
                ]),
            ),
        ])
        .render()
    }
}

/// The cold path: saturate, lint, simulate, render. Pure — called at
/// most once per cache key (modulo benign same-key races).
fn render_body(canonical: &Program, req: &OptimizeRequest) -> String {
    let params = MachineParams::new(req.p, req.ts, req.tw);
    let rewriter = Rewriter::cost_guided(params, req.m).allow_rank0_rules(!req.all_ranks);
    let result = rewriter.optimize_optimal(canonical, &params, req.m);

    let mut doc = optimize_result_json(canonical, &result, &params, req.m);
    let lint = if req.lint {
        let cfg = LintConfig {
            params,
            block: req.m,
            ..LintConfig::default()
        };
        let report = lint_program(canonical, None, &cfg);
        Json::parse(&report.render_json()).expect("lint JSON round-trips")
    } else {
        Json::Null
    };
    let simulation = if req.simulate {
        let inputs = synthetic_inputs(req.p, req.m);
        let clock = ClockParams::new(req.ts, req.tw);
        let config = ExecConfig {
            engine: Some(req.engine),
            ..ExecConfig::default()
        };
        let original = execute_with(canonical, &inputs, clock, config);
        let optimized = execute_with(&result.program, &inputs, clock, config);
        Json::Obj(vec![
            ("engine".into(), Json::Str(req.engine.name().into())),
            ("original_makespan".into(), Json::Num(original.makespan)),
            ("optimized_makespan".into(), Json::Num(optimized.makespan)),
        ])
    } else {
        Json::Null
    };
    let Json::Obj(ref mut fields) = doc else {
        unreachable!("optimize_result_json returns an object")
    };
    fields.push(("lint".into(), lint));
    fields.push(("simulation".into(), simulation));
    doc.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt_req(pipeline: &str) -> OptimizeRequest {
        OptimizeRequest {
            pipeline: pipeline.into(),
            p: 64,
            ts: 200.0,
            tw: 2.0,
            m: 32.0,
            all_ranks: false,
            lint: true,
            simulate: false,
            engine: collopt_machine::ExecEngine::Des,
        }
    }

    #[test]
    fn hot_responses_are_byte_identical_to_cold() {
        let service = Service::new(16);
        let line = r#"{"id":1,"pipeline":"map f ; scan(mul) ; reduce(add) ; map g ; bcast"}"#;
        let cold = service.handle_line(line);
        let hot = service.handle_line(line);
        assert_eq!(cold.text, hot.text);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn ids_differ_but_share_one_cache_entry() {
        let service = Service::new(16);
        let a = service.handle_line(r#"{"id":1,"pipeline":"scan(add) ; reduce(add)"}"#);
        let b = service.handle_line(r#"{"id":2,"pipeline":"scan(add) ; reduce(add)"}"#);
        assert_ne!(a.text, b.text);
        assert!(a.text.starts_with("{\"id\":1,"));
        assert!(b.text.starts_with("{\"id\":2,"));
        // Same body after the id.
        assert_eq!(
            a.text.split_once(',').unwrap().1,
            b.text.split_once(',').unwrap().1
        );
        assert_eq!(service.cache_stats().misses, 1);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn parse_errors_carry_the_caret_diagnostic() {
        let service = Service::new(16);
        let reply = service.handle_line(r#"{"id":9,"pipeline":"scan(add) ;; reduce(add)"}"#);
        assert!(reply.text.contains("\"ok\":false"));
        assert!(reply.text.contains("parse_error"));
        assert!(reply.text.starts_with("{\"id\":9,"));
    }

    #[test]
    fn simulation_attaches_makespans() {
        let service = Service::new(16);
        let line =
            r#"{"pipeline":"scan(add) ; reduce(add)","p":8,"m":4,"options":{"simulate":true}}"#;
        let reply = service.handle_line(line);
        let doc = Json::parse(&reply.text).unwrap();
        let sim = doc.get("result").and_then(|r| r.get("simulation")).unwrap();
        assert_eq!(sim.get("engine").and_then(|e| e.as_str()), Some("des"));
        assert!(
            sim.get("original_makespan")
                .and_then(|x| x.as_f64())
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn lint_can_be_disabled() {
        let service = Service::new(16);
        let on = service.handle_line(r#"{"pipeline":"gather ; scatter ; scan(add)"}"#);
        let off = service
            .handle_line(r#"{"pipeline":"gather ; scatter ; scan(add)","options":{"lint":false}}"#);
        let on_doc = Json::parse(&on.text).unwrap();
        let off_doc = Json::parse(&off.text).unwrap();
        assert!(matches!(
            on_doc.get("result").and_then(|r| r.get("lint")),
            Some(Json::Obj(_))
        ));
        assert_eq!(
            off_doc.get("result").and_then(|r| r.get("lint")),
            Some(&Json::Null)
        );
        // Different option sets are different cache entries.
        assert_eq!(service.cache_stats().misses, 2);
    }

    #[test]
    fn cache_key_ignores_id_but_not_machine_params() {
        let base = cache_key(&opt_req("scan(add) ; reduce(add)")).unwrap();
        let same = cache_key(&opt_req("  scan( add )   ;   reduce( add )  ")).unwrap();
        assert_eq!(base, same);
        let mut other = opt_req("scan(add) ; reduce(add)");
        other.p = 128;
        assert_ne!(base, cache_key(&other).unwrap());
    }
}
