//! Canonicalization hardening: specs that differ only in whitespace,
//! spelling, or normalization order must produce identical cache keys.
//!
//! The cache key is the canonical program rendering plus the machine
//! and option fields ([`collopt_serve::cache_key`]); everything here
//! pins the *canonical rendering* half over the `examples/pipelines/`
//! corpus and hand-built equivalence pairs.

use collopt_machine::ExecEngine;
use collopt_serve::{cache_key, canonicalize, OptimizeRequest};

fn req(pipeline: &str) -> OptimizeRequest {
    OptimizeRequest {
        pipeline: pipeline.into(),
        p: 64,
        ts: 200.0,
        tw: 2.0,
        m: 32.0,
        all_ranks: false,
        lint: true,
        simulate: false,
        engine: ExecEngine::Des,
    }
}

fn key(pipeline: &str) -> String {
    cache_key(&req(pipeline)).unwrap_or_else(|e| panic!("'{pipeline}' must canonicalize: {e}"))
}

/// Every `.pipeline` file in the corpus.
fn corpus() -> Vec<(String, String)> {
    let root = format!("{}/../../examples/pipelines", env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for sub in ["clean", "lints"] {
        let dir = format!("{root}/{sub}");
        let mut entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("missing corpus dir {dir}: {e}"))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "pipeline"))
            .collect();
        entries.sort();
        for path in entries {
            let src = std::fs::read_to_string(&path).unwrap().trim().to_string();
            out.push((path.display().to_string(), src));
        }
    }
    assert!(out.len() >= 8, "corpus shrank: {}", out.len());
    out
}

#[test]
fn whitespace_variants_share_a_key_across_the_corpus() {
    for (path, src) in corpus() {
        let base = key(&src);
        // Inflate separators and pad the ends; the grammar treats all
        // whitespace runs alike, so the parsed term is unchanged.
        let spaced = format!("   {}   ", src.replace(';', "  ;\t "));
        assert_eq!(base, key(&spaced), "whitespace changed the key for {path}");
        let collapsed = src.replace(" ; ", ";");
        assert_eq!(
            base,
            key(&collapsed),
            "separator style changed the key for {path}"
        );
    }
}

#[test]
fn canonical_rendering_is_a_fixpoint_across_the_corpus() {
    for (path, src) in corpus() {
        let (canonical, rendered) = canonicalize(&src).unwrap();
        // Canonicalizing may fuse map labels (`map f;g`) or eliminate
        // everything (`gather ; scatter` → the empty program `id`),
        // neither of which re-parses — so round-trip through the
        // *rendering* only where it stays inside the grammar.
        if let Ok((twice, rendered_twice)) = canonicalize(&rendered) {
            assert_eq!(
                rendered, rendered_twice,
                "canonicalization is not idempotent for {path}"
            );
            assert_eq!(
                canonical.to_string(),
                twice.to_string(),
                "re-parsed canonical program differs for {path}"
            );
        }
        // Idempotence on the term itself always holds.
        let (again, _) = collopt_core::rules::enabling::normalize(&canonical);
        assert_eq!(
            again.to_string(),
            canonical.to_string(),
            "normalize is not a fixpoint for {path}"
        );
    }
}

#[test]
fn normalization_order_variants_share_a_key() {
    // bcast/map commutation: both spellings reach `map f ; bcast ; …`.
    assert_eq!(
        key("bcast ; map f ; reduce(add)"),
        key("map f ; bcast ; reduce(add)")
    );
    // gather;scatter elimination, applied once or twice over.
    assert_eq!(key("gather ; scatter ; scan(add)"), key("scan(add)"));
    assert_eq!(
        key("gather ; scatter ; gather ; scatter ; scan(add)"),
        key("scan(add)")
    );
    // Interleaved: eliminating the round-trip exposes the map pair,
    // which fuses — equivalent to writing the fused pipeline directly.
    assert_eq!(
        key("map f ; gather ; scatter ; map g ; reduce(add)"),
        key("map f ; map g ; reduce(add)")
    );
}

#[test]
fn distinct_pipelines_and_machines_get_distinct_keys() {
    assert_ne!(
        key("scan(add) ; reduce(add)"),
        key("scan(mul) ; reduce(add)")
    );
    let base = req("scan(add) ; reduce(add)");
    let base_key = cache_key(&base).unwrap();
    for (label, tweak) in [
        ("p", {
            let mut r = base.clone();
            r.p = 128;
            r
        }),
        ("ts", {
            let mut r = base.clone();
            r.ts = 100.0;
            r
        }),
        ("m", {
            let mut r = base.clone();
            r.m = 8.0;
            r
        }),
        ("all_ranks", {
            let mut r = base.clone();
            r.all_ranks = true;
            r
        }),
        ("lint", {
            let mut r = base.clone();
            r.lint = false;
            r
        }),
        ("simulate", {
            let mut r = base.clone();
            r.simulate = true;
            r
        }),
    ] {
        assert_ne!(
            base_key,
            cache_key(&tweak).unwrap(),
            "option '{label}' must be part of the cache key"
        );
    }
}

#[test]
fn float_params_key_by_bit_pattern() {
    // `2` and `2.0` parse to the same f64 → same key; a genuinely
    // different value → different key.
    let mut a = req("scan(add) ; reduce(add)");
    a.tw = 2.0;
    let mut b = a.clone();
    b.tw = 2.0f64;
    assert_eq!(cache_key(&a).unwrap(), cache_key(&b).unwrap());
    b.tw = 2.0000001;
    assert_ne!(cache_key(&a).unwrap(), cache_key(&b).unwrap());
}
