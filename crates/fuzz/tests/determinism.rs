//! Campaign determinism pins.
//!
//! The fuzzer's value rests on reproducibility: a failure line must
//! replay years later, and `SWEEP_WORKERS` (or the machine's core count)
//! must never change what a campaign reports. These tests pin both.

use collopt_fuzz::{
    generate_case, run_campaign, run_case, CampaignConfig, CaseSpec, CoverageLedger, GenConfig,
};

#[test]
fn campaign_is_identical_across_worker_counts() {
    let cfg = |workers| CampaignConfig {
        seed: 500,
        iters: 60,
        gen: GenConfig::default(),
        workers: Some(workers),
    };
    let serial = run_campaign(&cfg(1));
    let parallel = run_campaign(&cfg(3));
    let wide = run_campaign(&cfg(16));

    let lines = |r: &collopt_fuzz::CampaignResult| {
        r.failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    };
    assert_eq!(lines(&serial), lines(&parallel));
    assert_eq!(lines(&serial), lines(&wide));
    assert_eq!(serial.ledger.to_json(), parallel.ledger.to_json());
    assert_eq!(serial.ledger.to_json(), wide.ledger.to_json());
}

#[test]
fn generation_is_a_pure_function_of_the_seed() {
    let cfg = GenConfig::default();
    for seed in 0..150 {
        let a = generate_case(seed, &cfg).render();
        let b = generate_case(seed, &cfg).render();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn replay_from_spec_string_matches_replay_from_seed() {
    // A failure line carries only (seed, spec); replaying the parsed spec
    // must exercise the oracles identically to regenerating from seed.
    let cfg = GenConfig::default();
    for seed in 200..240 {
        let case = generate_case(seed, &cfg);
        let reparsed = CaseSpec::parse(&case.render()).expect("spec parses");

        let mut ledger_a = CoverageLedger::new();
        let mut ledger_b = CoverageLedger::new();
        let failures_a: Vec<String> = run_case(&case, &mut ledger_a)
            .iter()
            .map(|f| f.to_string())
            .collect();
        let failures_b: Vec<String> = run_case(&reparsed, &mut ledger_b)
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert_eq!(failures_a, failures_b, "seed {seed}");
        assert_eq!(ledger_a.to_json(), ledger_b.to_json(), "seed {seed}");
    }
}
