#![forbid(unsafe_code)]
//! Coverage-guided differential fuzzing of the whole collopt stack.
//!
//! The paper's central guarantee — rule-rewritten pipelines are
//! observationally equal to their sources on any machine — is checked
//! here on *generated* pipelines rather than hand-written ones. A seeded
//! [`generator`](gen) draws arbitrary compositions over the full grammar
//! (bcast/scan/reduce/fused forms/PolyEval) with random lookup-table
//! operators whose declared laws may be *deliberately false*; five
//! differential [`oracles`](oracle) then cross-examine the stack:
//!
//! 1. optimized vs. unoptimized execution (bit-equal outputs),
//! 2. Legacy vs. Pooled vs. Des engines (bit-equal everything),
//! 3. auditor / audited rewriter / certifier / linter unanimity on
//!    planted lies and withheld laws, and
//! 4. equality-saturation extraction vs. the brute-force optimality
//!    oracle (bit-equal program and cost, never above greedy) on every
//!    pipeline of ≤ 6 stages, and
//! 5. the static schedule verifier vs. the collective registry's ground
//!    truth (shipped lowerings accepted, planted bugs rejected with
//!    their expected lint code, at the case's `(p, m)` point).
//!
//! Failures are [`shrunk`](mod@shrink) to a local minimum and
//! [`pinned`](corpus) into `tests/corpus/` as self-contained spec
//! strings; a [`CoverageLedger`](ledger) fails any campaign in which one
//! of the 11 Table-1 rules never fired. Everything is deterministic in
//! `(seed, iters)` — including across `SWEEP_WORKERS` settings, because
//! per-case results are folded in seed order, not completion order.

pub mod corpus;
pub mod gen;
pub mod ledger;
pub mod oracle;
pub mod shrink;

pub use corpus::{load_corpus, parse_case_file, pin, CorpusCase};
pub use gen::{case_mode, generate_case, CaseDomain, CaseMode, CaseSpec, GenConfig, TableSpec};
pub use ledger::CoverageLedger;
pub use oracle::{run_case, FuzzFailure, OracleKind};
pub use shrink::shrink;

use collopt_bench::sweep_driver::{par_map, par_map_with};

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base seed; case `i` uses `seed.wrapping_add(i)`, so consecutive
    /// seeds sweep the generator's mode schedule (see [`gen::case_mode`]).
    pub seed: u64,
    /// Number of cases to generate and check.
    pub iters: u64,
    /// Generator shape limits.
    pub gen: GenConfig,
    /// Worker override; `None` follows `SWEEP_WORKERS` /
    /// [`collopt_bench::sweep_driver::default_workers`].
    pub workers: Option<usize>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0110,
            iters: 500,
            gen: GenConfig::default(),
            workers: None,
        }
    }
}

/// A finished campaign: every oracle violation plus the merged coverage.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// All violations, in seed order.
    pub failures: Vec<FuzzFailure>,
    /// Merged exercise counters.
    pub ledger: CoverageLedger,
}

impl CampaignResult {
    /// A campaign passes when no oracle tripped *and* every Table-1 rule
    /// fired at least once.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.ledger.missing_rules().is_empty()
    }
}

/// Run `iters` cases in parallel. Deterministic in `(seed, iters, gen)`:
/// each case folds into a private ledger and the per-seed results are
/// merged in seed order afterwards, so the worker count never changes
/// the outcome.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let seeds: Vec<u64> = (0..cfg.iters).map(|i| cfg.seed.wrapping_add(i)).collect();
    let gen_cfg = cfg.gen.clone();
    let one = move |seed: u64| -> (Vec<FuzzFailure>, CoverageLedger) {
        let case = generate_case(seed, &gen_cfg);
        let mut ledger = CoverageLedger::new();
        let failures = run_case(&case, &mut ledger);
        (failures, ledger)
    };
    let per_case = match cfg.workers {
        Some(workers) => par_map_with(seeds, workers, one),
        None => par_map(seeds, one),
    };
    let mut result = CampaignResult {
        failures: Vec::new(),
        ledger: CoverageLedger::new(),
    };
    for (failures, ledger) in per_case {
        result.failures.extend(failures);
        result.ledger.merge(&ledger);
    }
    result
}

/// Shrink every campaign failure (capped) against a reproduce-the-same-
/// oracle predicate, returning `(original, shrunk)` pairs in input order.
pub fn shrink_failures(failures: &[FuzzFailure], cap: usize) -> Vec<(FuzzFailure, CaseSpec)> {
    failures
        .iter()
        .take(cap)
        .filter_map(|failure| {
            let case = CaseSpec::parse(&failure.spec).ok()?;
            let oracle = failure.oracle;
            let reproduces = move |candidate: &CaseSpec| {
                let mut ledger = CoverageLedger::new();
                run_case(candidate, &mut ledger)
                    .iter()
                    .any(|f| f.oracle == oracle)
            };
            let shrunk = shrink(&case, &reproduces);
            Some((failure.clone(), shrunk))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_counts_add_up() {
        let cfg = CampaignConfig {
            seed: 0,
            iters: 40,
            workers: Some(2),
            ..CampaignConfig::default()
        };
        let result = run_campaign(&cfg);
        assert!(
            result.failures.is_empty(),
            "violations: {}",
            result.failures[0]
        );
        assert_eq!(result.ledger.cases, 40);
        assert!(result.ledger.over_claim_cases > 0);
        assert_eq!(result.ledger.lies_caught, result.ledger.over_claim_cases);
        assert!(
            result.ledger.saturation_cases > 0,
            "the optimality oracle never ran"
        );
        assert!(
            result.ledger.static_checks > 0,
            "the static-check oracle never ran"
        );
        assert!(
            result.ledger.static_rejects > 0,
            "no planted lowering was statically rejected"
        );
    }
}
