//! Campaign coverage accounting.
//!
//! A [`CoverageLedger`] records which Table-1 rules fired, which stage
//! kinds executed, which fault kinds were injected, and which engines and
//! domains ran during a campaign. The campaign driver fails the run when
//! any of the 11 rules never fired — a fuzzer that silently stops
//! exercising a rewrite is worse than no fuzzer, because it keeps
//! reporting green.

use std::collections::BTreeMap;

use collopt_core::rules::Rule;

/// Per-campaign exercise counters. All maps are `BTreeMap` so summaries
/// and JSON renderings are deterministic.
#[derive(Debug, Clone, Default)]
pub struct CoverageLedger {
    /// Cases generated.
    pub cases: u64,
    /// Cases with honest declarations.
    pub honest: u64,
    /// Cases planting at least one over-claim (a lying declaration).
    pub over_claim_cases: u64,
    /// Cases planting an under-claim (a withheld true law).
    pub under_claim_cases: u64,
    /// Planted over-claim cases where all defense layers caught the lie.
    pub lies_caught: u64,
    /// Cases short enough (≤ 6 stages) for the saturation-vs-brute-force
    /// optimality oracle to run.
    pub saturation_cases: u64,
    /// Static schedule verifications run (shipped + planted lowerings,
    /// over every case's `(p, m)` point).
    pub static_checks: u64,
    /// Planted-bug lowerings the static verifier rejected with the
    /// expected lint code.
    pub static_rejects: u64,
    /// Rewrite-rule applications observed, by rule name. Initialized with
    /// every Table-1 rule at zero so absences are visible.
    pub rules: BTreeMap<&'static str, u64>,
    /// Stage kinds executed (e.g. `scan`, `comcast`, `reduce_balanced`).
    pub stages: BTreeMap<String, u64>,
    /// Fault kinds injected: `none`, `delay`, `lossy`, `crash`.
    pub faults: BTreeMap<&'static str, u64>,
    /// Engines exercised by oracle 1 (oracle 2 always runs all three).
    pub engines: BTreeMap<&'static str, u64>,
    /// Value domains exercised.
    pub domains: BTreeMap<&'static str, u64>,
}

impl CoverageLedger {
    /// A ledger with every rule counter present (at zero).
    pub fn new() -> CoverageLedger {
        let mut ledger = CoverageLedger::default();
        for rule in Rule::ALL {
            ledger.rules.insert(rule.name(), 0);
        }
        ledger
    }

    /// Record one rule application.
    pub fn record_rule(&mut self, rule: Rule) {
        *self.rules.entry(rule.name()).or_insert(0) += 1;
    }

    /// Record one executed stage kind.
    pub fn record_stage(&mut self, kind: String) {
        *self.stages.entry(kind).or_insert(0) += 1;
    }

    /// Fold another ledger into this one (order-independent).
    pub fn merge(&mut self, other: &CoverageLedger) {
        self.cases += other.cases;
        self.honest += other.honest;
        self.over_claim_cases += other.over_claim_cases;
        self.under_claim_cases += other.under_claim_cases;
        self.lies_caught += other.lies_caught;
        self.saturation_cases += other.saturation_cases;
        self.static_checks += other.static_checks;
        self.static_rejects += other.static_rejects;
        for (k, v) in &other.rules {
            *self.rules.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.stages {
            *self.stages.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.faults {
            *self.faults.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.engines {
            *self.engines.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.domains {
            *self.domains.entry(k).or_insert(0) += v;
        }
    }

    /// Table-1 rules that never fired during the campaign.
    pub fn missing_rules(&self) -> Vec<&'static str> {
        Rule::ALL
            .into_iter()
            .map(|r| r.name())
            .filter(|name| self.rules.get(name).copied().unwrap_or(0) == 0)
            .collect()
    }

    /// Number of distinct rules that fired at least once.
    pub fn rules_fired(&self) -> usize {
        self.rules.values().filter(|&&v| v > 0).count()
    }

    /// Render as a JSON object (hand-rolled; the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        fn map_json<K: std::fmt::Display>(m: &BTreeMap<K, u64>) -> String {
            let fields: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("{{{}}}", fields.join(", "))
        }
        format!(
            concat!(
                "{{\n",
                "  \"cases\": {},\n",
                "  \"honest\": {},\n",
                "  \"over_claim_cases\": {},\n",
                "  \"under_claim_cases\": {},\n",
                "  \"lies_caught\": {},\n",
                "  \"saturation_cases\": {},\n",
                "  \"static_checks\": {},\n",
                "  \"static_rejects\": {},\n",
                "  \"rules_fired\": {},\n",
                "  \"rules\": {},\n",
                "  \"stages\": {},\n",
                "  \"faults\": {},\n",
                "  \"engines\": {},\n",
                "  \"domains\": {}\n",
                "}}"
            ),
            self.cases,
            self.honest,
            self.over_claim_cases,
            self.under_claim_cases,
            self.lies_caught,
            self.saturation_cases,
            self.static_checks,
            self.static_rejects,
            self.rules_fired(),
            map_json(&self.rules),
            map_json(&self.stages),
            map_json(&self.faults),
            map_json(&self.engines),
            map_json(&self.domains),
        )
    }

    /// Multi-line human summary for the bin and the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cases={} honest={} over_claims={} under_claims={} lies_caught={} saturation_checked={} static_checks={} static_rejects={}\n",
            self.cases,
            self.honest,
            self.over_claim_cases,
            self.under_claim_cases,
            self.lies_caught,
            self.saturation_cases,
            self.static_checks,
            self.static_rejects
        ));
        out.push_str(&format!("rules fired: {}/11", self.rules_fired()));
        for (name, count) in &self.rules {
            out.push_str(&format!("\n  {name:<14} {count}"));
        }
        let line = |label: &str, m: &BTreeMap<&'static str, u64>| {
            let parts: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("\n{label}: {}", parts.join(" "))
        };
        out.push_str(&line("faults", &self.faults));
        out.push_str(&line("engines", &self.engines));
        out.push_str(&line("domains", &self.domains));
        out.push_str(&format!("\nstage kinds: {}", self.stages.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_ledger_reports_all_rules_missing() {
        let ledger = CoverageLedger::new();
        assert_eq!(ledger.missing_rules().len(), 11);
        assert_eq!(ledger.rules_fired(), 0);
    }

    #[test]
    fn merge_accumulates_and_clears_missing() {
        let mut total = CoverageLedger::new();
        for rule in Rule::ALL {
            let mut part = CoverageLedger::new();
            part.cases = 1;
            part.record_rule(rule);
            total.merge(&part);
        }
        assert_eq!(total.cases, 11);
        assert!(total.missing_rules().is_empty());
        assert_eq!(total.rules_fired(), 11);
    }

    #[test]
    fn json_is_well_formed_enough_to_nest() {
        let ledger = CoverageLedger::new();
        let json = ledger.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rules_fired\": 0"));
    }
}
