//! The five differential oracles.
//!
//! 1. **Rewrite** — a property-verified optimization of the generated
//!    pipeline must leave the mathematical semantics and the simulated
//!    execution outputs bit-identical on every rank (rank 0 only for the
//!    paper's Local rules, and only on pipelines where that comparison
//!    is sound).
//! 2. **Engines** — the Legacy, Pooled and Des execution engines must
//!    produce identical outputs, makespan bits, message/retry counters
//!    and Chrome trace exports for the same program, inputs and fault
//!    plan (identical [`MachineError`]s for unrecoverable plans).
//! 3. **Defense** — the operator auditor, the audited rewriter, the
//!    certificate validator and the linter must be *unanimous* about
//!    planted law lies: a lie caught by one must be caught by all, and an
//!    honest table must pass all four. Under-claims (true-but-undeclared
//!    laws) must likewise surface in both the auditor and the linter.
//! 4. **Saturation** — on every pipeline short enough for the
//!    exponential search (≤ 6 stages), the equality-saturation extraction
//!    behind `optimize_optimal` must bit-match the brute-force optimum's
//!    program and cost, never exceed the greedy cost, and (on honest
//!    tables) carry certificates that revalidate.
//! 5. **StaticCheck** — the static schedule verifier must accept every
//!    shipped lowering at the case's `(p, m)` point and reject every
//!    planted-bug lowering with its expected lint code. Together with
//!    oracle 2 (which runs the shipped lowerings cleanly on all three
//!    engines) and the planted-deadlock drill tests (which pin the
//!    dynamic DES deadlock), this closes the loop: static accept ⟺
//!    clean dynamic run, static reject ⟺ dynamic deadlock.

use std::collections::BTreeSet;
use std::fmt;

use collopt_analysis::audit::{audit_operator, AuditConfig, Domain};
use collopt_analysis::certify::{validate_result, CertificateIssue};
use collopt_analysis::lint::{lint_program, LintConfig};
use collopt_core::exec::{
    execute_faulted, execute_faulted_traced, execute_traced_with, execute_with, ExecConfig,
    TracedExecOutcome,
};
use collopt_core::op::value_close_with;
use collopt_core::rewrite::{program_cost, Rewriter};
use collopt_core::semantics::eval_program;
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_cost::MachineParams;
use collopt_machine::{chrome_trace_json, ClockParams, ExecEngine, MachineError};

use crate::gen::{CaseDomain, CaseSpec, N};
use crate::ledger::CoverageLedger;

/// Float tolerance for output comparison; generated float inputs are
/// dyadic so runs are exact in practice — the tolerance only guards
/// against pathological future operators.
const OUT_RTOL: f64 = 1e-9;

/// Which oracle a failure came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Optimized vs. unoptimized divergence.
    Rewrite,
    /// Cross-engine divergence.
    Engines,
    /// Defense-layer (auditor/rewriter/certifier/linter) disagreement.
    Defense,
    /// Equality-saturation extraction vs. the brute-force optimality
    /// oracle (or vs. the greedy cost floor).
    Saturation,
    /// Static schedule-verifier verdict vs. the registry's ground truth
    /// (shipped lowerings must verify, planted bugs must be rejected
    /// with their expected code).
    StaticCheck,
}

impl OracleKind {
    /// Short tag used in failure lines and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::Rewrite => "rewrite",
            OracleKind::Engines => "engines",
            OracleKind::Defense => "defense",
            OracleKind::Saturation => "saturation",
            OracleKind::StaticCheck => "static",
        }
    }
}

/// One oracle violation, self-contained: the spec string reproduces the
/// case without any other state.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Seed of the generated case.
    pub seed: u64,
    /// Which oracle tripped.
    pub oracle: OracleKind,
    /// `CaseSpec::render()` of the failing case.
    pub spec: String,
    /// What diverged.
    pub what: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} [{}] {} [spec: {}]",
            self.seed,
            self.oracle.label(),
            self.what,
            self.spec
        )
    }
}

/// The shared clock every oracle executes under.
pub fn oracle_clock() -> ClockParams {
    ClockParams::new(100.0, 2.0)
}

/// Run all applicable oracles on one case, recording coverage.
pub fn run_case(case: &CaseSpec, ledger: &mut CoverageLedger) -> Vec<FuzzFailure> {
    let mut failures = Vec::new();
    ledger.cases += 1;
    *ledger.domains.entry(case.domain.label()).or_insert(0) += 1;
    *ledger.engines.entry(engine_name(case.engine)).or_insert(0) += 1;
    *ledger.faults.entry(fault_kind(case)).or_insert(0) += 1;
    for stage in case.program().stages() {
        ledger.record_stage(stage_kind(&stage.describe()));
    }
    let over = case.over_claims();
    let under = case.under_claims();
    if over.is_empty() {
        ledger.honest += 1;
    } else {
        ledger.over_claim_cases += 1;
    }
    if !under.is_empty() {
        ledger.under_claim_cases += 1;
    }

    check_rewrite(case, ledger, &mut failures);
    check_engines(case, &mut failures);
    if case.domain == CaseDomain::Table {
        let before = failures.len();
        check_defenses(case, &mut failures);
        if !over.is_empty() && failures.len() == before {
            ledger.lies_caught += 1;
        }
    }
    check_saturation(case, ledger, &mut failures);
    check_static(case, ledger, &mut failures);
    failures
}

// ---------------------------------------------------------------------
// Oracle 5: static schedule verdicts vs. the registry's ground truth
// ---------------------------------------------------------------------

fn check_static(case: &CaseSpec, ledger: &mut CoverageLedger, failures: &mut Vec<FuzzFailure>) {
    let (p, m) = (case.p, case.m as u64);
    for report in collopt_analysis::schedule::verify_registry(p, m) {
        ledger.static_checks += 1;
        if !report.ok() {
            let findings: Vec<String> = report
                .diagnostics
                .iter()
                .map(|d| format!("{}: {}", d.code, d.message))
                .collect();
            push(
                failures,
                case,
                OracleKind::StaticCheck,
                format!(
                    "shipped lowering {} fails static verification at p={p}, m={m}: {}",
                    report.variant,
                    findings.join("; ")
                ),
            );
        }
    }
    for (report, expected_code) in collopt_analysis::schedule::verify_planted(p, m) {
        ledger.static_checks += 1;
        if report.ok() {
            push(
                failures,
                case,
                OracleKind::StaticCheck,
                format!(
                    "planted lowering {} passes static verification at p={p}, m={m} — the \
                     verifier is blind to its defect",
                    report.variant
                ),
            );
        } else if !report.diagnostics.iter().any(|d| d.code == expected_code) {
            let got: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
            push(
                failures,
                case,
                OracleKind::StaticCheck,
                format!(
                    "planted lowering {} rejected with {:?} instead of {expected_code} at \
                     p={p}, m={m}",
                    report.variant, got
                ),
            );
        } else {
            ledger.static_rejects += 1;
        }
    }
}

fn engine_name(e: ExecEngine) -> &'static str {
    match e {
        ExecEngine::Legacy => "legacy",
        ExecEngine::Pooled => "pooled",
        ExecEngine::Des => "des",
    }
}

/// Fault-kind bucket for the coverage ledger.
fn fault_kind(case: &CaseSpec) -> &'static str {
    match &case.plan {
        None => "none",
        Some(p) if p.crash.is_some() => "crash",
        Some(p) if p.is_lossy() => "lossy",
        Some(_) => "delay",
    }
}

/// Stage-kind bucket: the leading token of [`Stage::describe`]
/// (`"scan(t0)"` → `"scan"`, `"map id"` → `"map"`).
fn stage_kind(describe: &str) -> String {
    describe
        .split([' ', '('])
        .next()
        .unwrap_or(describe)
        .to_string()
}

/// Sample values for property verification: the *entire* table domain for
/// table cases (verification becomes exact), the analyzer's audit pool
/// otherwise.
fn verification_samples(case: &CaseSpec) -> Vec<Value> {
    let cfg = AuditConfig::default();
    match case.domain {
        CaseDomain::Table => (0..N).map(Value::Int).collect(),
        CaseDomain::Int => collopt_analysis::audit::samples_for_domain(Domain::Int, &cfg),
        CaseDomain::Bool => collopt_analysis::audit::samples_for_domain(Domain::Bool, &cfg),
        CaseDomain::Float => collopt_analysis::audit::samples_for_domain(Domain::Float, &cfg),
    }
}

fn values_eq(domain: CaseDomain, a: &Value, b: &Value) -> bool {
    match domain {
        CaseDomain::Float => value_close_with(a, b, OUT_RTOL),
        _ => a == b,
    }
}

fn push(failures: &mut Vec<FuzzFailure>, case: &CaseSpec, oracle: OracleKind, what: String) {
    failures.push(FuzzFailure {
        seed: case.seed,
        oracle,
        spec: case.render(),
        what,
    });
}

// ---------------------------------------------------------------------
// Oracle 1: optimized == unoptimized
// ---------------------------------------------------------------------

fn check_rewrite(case: &CaseSpec, ledger: &mut CoverageLedger, failures: &mut Vec<FuzzFailure>) {
    // The *base* (unfused) pipeline: fused stages carry tuple-typed
    // internal operators that scalar verification samples cannot probe;
    // pre-fused forms are exercised by the engine oracle instead.
    let prog = case.base_program();
    let inputs = case.inputs();
    let samples = verification_samples(case);
    let config = ExecConfig {
        engine: Some(case.engine),
        ..ExecConfig::default()
    };

    // Pass (a): full-rank-preserving rules only — every rank comparable.
    let full = Rewriter::exhaustive()
        .verify_properties(samples.clone())
        .allow_rank0_rules(false)
        .optimize(&prog);
    for step in &full.steps {
        ledger.record_rule(step.rule);
    }
    compare_programs(case, &prog, &full.program, &inputs, config, None, failures);

    // Pass (b): with the Local (rank0-only) rules. Sound to compare only
    // when non-root ranks cannot feed back into rank 0 afterwards.
    let local = Rewriter::exhaustive()
        .verify_properties(samples)
        .optimize(&prog);
    let applied_rank0 = local.steps.iter().any(|s| s.rank0_only);
    for step in &local.steps {
        ledger.record_rule(step.rule);
    }
    if applied_rank0 {
        if case.rank0_comparison_safe() {
            compare_programs(
                case,
                &prog,
                &local.program,
                &inputs,
                config,
                Some(0),
                failures,
            );
        }
    } else if local.program.to_string() != full.program.to_string() {
        push(
            failures,
            case,
            OracleKind::Rewrite,
            format!(
                "rank0 pass applied no rank0-only step yet diverged: `{}` vs `{}`",
                local.program, full.program
            ),
        );
    }
}

/// Compare reference semantics and machine outputs of two programs;
/// `only_rank` restricts the comparison (rank0-only rewrites).
#[allow(clippy::too_many_arguments)]
fn compare_programs(
    case: &CaseSpec,
    original: &Program,
    optimized: &Program,
    inputs: &[Value],
    config: ExecConfig,
    only_rank: Option<usize>,
    failures: &mut Vec<FuzzFailure>,
) {
    let ranks: Vec<usize> = match only_rank {
        Some(r) => vec![r],
        None => (0..case.p).collect(),
    };

    let sem_a = eval_program(original, inputs);
    let sem_b = eval_program(optimized, inputs);
    for &r in &ranks {
        if !values_eq(case.domain, &sem_a[r], &sem_b[r]) {
            push(
                failures,
                case,
                OracleKind::Rewrite,
                format!(
                    "semantics diverge at rank {r}: {:?} vs {:?} (optimized: `{optimized}`)",
                    sem_a[r], sem_b[r]
                ),
            );
            return;
        }
    }

    let clock = oracle_clock();
    let run_a = execute_with(original, inputs, clock, config);
    let run_b = execute_with(optimized, inputs, clock, config);
    for &r in &ranks {
        if !values_eq(case.domain, &run_a.outputs[r], &run_b.outputs[r]) {
            push(
                failures,
                case,
                OracleKind::Rewrite,
                format!(
                    "machine outputs diverge at rank {r}: {:?} vs {:?} (optimized: `{optimized}`)",
                    run_a.outputs[r], run_b.outputs[r]
                ),
            );
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Oracle 2: Legacy == Pooled == Des
// ---------------------------------------------------------------------

fn check_engines(case: &CaseSpec, failures: &mut Vec<FuzzFailure>) {
    let prog = case.program();
    let inputs = case.inputs();
    let clock = oracle_clock();
    let config = |engine| ExecConfig {
        engine: Some(engine),
        profile: true,
        ..ExecConfig::default()
    };
    let engines = [ExecEngine::Legacy, ExecEngine::Pooled, ExecEngine::Des];

    let recoverable = case
        .plan
        .as_ref()
        .is_none_or(collopt_machine::FaultPlan::is_recoverable);
    if recoverable {
        // Completed traced runs: compare every observable bit-for-bit.
        let mut runs: Vec<(ExecEngine, TracedExecOutcome)> = Vec::new();
        for engine in engines {
            let run = match &case.plan {
                None => Ok(execute_traced_with(&prog, &inputs, clock, config(engine))),
                Some(plan) => execute_faulted_traced(&prog, &inputs, clock, config(engine), plan),
            };
            match run {
                Ok(run) => runs.push((engine, run)),
                Err(e) => {
                    push(
                        failures,
                        case,
                        OracleKind::Engines,
                        format!("{} failed a recoverable plan: {e}", engine_name(engine)),
                    );
                    return;
                }
            }
        }
        let (base_engine, base) = &runs[0];
        for (engine, run) in &runs[1..] {
            let tag = format!("{} vs {}", engine_name(*base_engine), engine_name(*engine));
            let a = &base.outcome;
            let b = &run.outcome;
            let mut diverge = |what: &str| {
                push(
                    failures,
                    case,
                    OracleKind::Engines,
                    format!("{tag}: {what} differ"),
                );
            };
            if a.outputs != b.outputs {
                diverge("outputs");
            } else if a.makespan.to_bits() != b.makespan.to_bits() {
                diverge("makespan bits");
            } else if a.total_compute.to_bits() != b.total_compute.to_bits() {
                diverge("compute-time bits");
            } else if a.total_messages != b.total_messages {
                diverge("message counts");
            } else if a.total_retries != b.total_retries {
                diverge("retry counts");
            } else if a.total_retry_time.to_bits() != b.total_retry_time.to_bits() {
                diverge("retry-time bits");
            } else if chrome_trace_json(&[("fuzz", &base.trace)])
                != chrome_trace_json(&[("fuzz", &run.trace)])
            {
                diverge("Chrome trace exports");
            }
        }
    } else {
        // Unrecoverable plan: engines must agree on the error too.
        let plan = case.plan.as_ref().expect("unrecoverable implies a plan");
        let results: Vec<(ExecEngine, Result<_, MachineError>)> = engines
            .map(|e| (e, execute_faulted(&prog, &inputs, clock, config(e), plan)))
            .into_iter()
            .collect();
        let (base_engine, base) = &results[0];
        for (engine, outcome) in &results[1..] {
            let tag = format!("{} vs {}", engine_name(*base_engine), engine_name(*engine));
            match (base, outcome) {
                (Ok(a), Ok(b)) => {
                    if a.outputs != b.outputs {
                        push(
                            failures,
                            case,
                            OracleKind::Engines,
                            format!("{tag}: outputs differ"),
                        );
                    } else if a.makespan.to_bits() != b.makespan.to_bits() {
                        push(
                            failures,
                            case,
                            OracleKind::Engines,
                            format!("{tag}: makespan bits differ"),
                        );
                    }
                }
                (Err(a), Err(b)) => {
                    if a != b {
                        push(
                            failures,
                            case,
                            OracleKind::Engines,
                            format!("{tag}: errors differ ({a} vs {b})"),
                        );
                    }
                }
                (a, b) => push(
                    failures,
                    case,
                    OracleKind::Engines,
                    format!(
                        "{tag}: disagree on success ({} vs {})",
                        if a.is_ok() { "ok" } else { "err" },
                        if b.is_ok() { "ok" } else { "err" }
                    ),
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Oracle 3: defense-layer unanimity
// ---------------------------------------------------------------------

fn check_defenses(case: &CaseSpec, failures: &mut Vec<FuzzFailure>) {
    // Analyzed on the *base* (unfused) pipeline: fused stages hide their
    // operators behind closures, which would blind the linter to tables
    // the brute-force expectation still counts.
    let prog = case.base_program();
    let cfg = AuditConfig::default();
    let full_domain: Vec<Value> = (0..N).map(Value::Int).collect();

    let expected_over: BTreeSet<String> = case.over_claims().into_iter().map(|c| c.law).collect();
    let expected_under: BTreeSet<String> = case.under_claims().into_iter().map(|c| c.law).collect();

    // Leg 1: the standalone auditor must find exactly the planted claim
    // gaps — set equality in both directions, no sampling slack (the
    // audit pool covers every residue class of the wrapped tables).
    let binops: Vec<_> = case
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| t.binop(i))
        .collect();
    let mut audit_over = BTreeSet::new();
    let mut audit_under = BTreeSet::new();
    for op in &binops {
        let audit = audit_operator(op, Domain::Int, &binops, &cfg);
        audit_over.extend(audit.over_claims.into_iter().map(|c| c.law));
        audit_under.extend(audit.under_claims.into_iter().map(|c| c.law));
    }
    if audit_over != expected_over {
        push(
            failures,
            case,
            OracleKind::Defense,
            format!("auditor over-claims {audit_over:?} != planted {expected_over:?}"),
        );
    }
    if audit_under != expected_under {
        push(
            failures,
            case,
            OracleKind::Defense,
            format!("auditor under-claims {audit_under:?} != planted {expected_under:?}"),
        );
    }

    // Leg 2: trusting vs audited rewriter + certificate validator.
    let trusting = Rewriter::exhaustive().optimize(&prog);
    let audited = Rewriter::exhaustive()
        .audited(full_domain.clone())
        .optimize(&prog);
    let trusting_issues = validate_result(&trusting, &full_domain, &cfg);
    let audited_issues = validate_result(&audited, &full_domain, &cfg);

    if !audited_issues.is_empty() {
        push(
            failures,
            case,
            OracleKind::Defense,
            format!(
                "audited rewriter produced a refutable certificate: {:?}",
                audited_issues.first()
            ),
        );
    }
    let rejected_laws: BTreeSet<String> =
        audited.rejections.iter().map(|r| r.law.clone()).collect();
    if let Some(bogus) = rejected_laws.difference(&expected_over).next() {
        push(
            failures,
            case,
            OracleKind::Defense,
            format!("audited rewriter rejected a *true* law: {bogus:?}"),
        );
    }

    if expected_over.is_empty() {
        // Honest table: nobody may cry wolf, and auditing must not cost
        // any rewrite the trusting engine found.
        if !audited.rejections.is_empty() {
            push(
                failures,
                case,
                OracleKind::Defense,
                format!(
                    "honest case, yet audited rewriter rejected: {}",
                    audited.rejections[0]
                ),
            );
        }
        if !trusting_issues.is_empty() {
            push(
                failures,
                case,
                OracleKind::Defense,
                format!(
                    "honest case, yet certifier flagged: {:?}",
                    trusting_issues[0]
                ),
            );
        }
        if audited.steps.len() != trusting.steps.len() {
            push(
                failures,
                case,
                OracleKind::Defense,
                format!(
                    "honest case, yet auditing changed the plan: {} vs {} steps",
                    audited.steps.len(),
                    trusting.steps.len()
                ),
            );
        }
    } else {
        // Planted lie: the generator guarantees the highest-priority
        // match needs the lying law, so the trusting engine fused on it —
        // the audited engine must reject it and the validator must refute
        // the trusting result, both naming a planted law.
        if trusting.steps.is_empty() {
            push(
                failures,
                case,
                OracleKind::Defense,
                "planted lie was not load-bearing: trusting engine applied nothing".to_string(),
            );
        }
        if !audited
            .rejections
            .iter()
            .any(|r| expected_over.contains(&r.law))
        {
            push(
                failures,
                case,
                OracleKind::Defense,
                format!(
                    "audited rewriter missed the lie: rejections {:?}, planted {expected_over:?}",
                    audited.rejections
                ),
            );
        }
        let validator_laws: Vec<&String> = trusting_issues
            .iter()
            .filter_map(|i| match i {
                CertificateIssue::LawViolated { law, .. } => Some(law),
                _ => None,
            })
            .collect();
        if !validator_laws.iter().any(|l| expected_over.contains(*l)) {
            push(
                failures,
                case,
                OracleKind::Defense,
                format!(
                    "certificate validator missed the lie: flagged {validator_laws:?}, planted {expected_over:?}"
                ),
            );
        }
    }

    // Leg 3: the linter. COL002 (unsound declaration) iff an over-claim
    // was planted; COL005 (under-declared property) iff one exists.
    let lint_cfg = LintConfig {
        fallback_domain: Some(Domain::Int),
        ..LintConfig::default()
    };
    let report = lint_program(&prog, None, &lint_cfg);
    let has = |code: &str| report.diagnostics.iter().any(|d| d.code == code);
    if has("COL002") == expected_over.is_empty() {
        push(
            failures,
            case,
            OracleKind::Defense,
            format!(
                "linter COL002 {} but planted over-claims are {expected_over:?}",
                if has("COL002") { "fired" } else { "silent" }
            ),
        );
    }
    if has("COL005") == expected_under.is_empty() {
        push(
            failures,
            case,
            OracleKind::Defense,
            format!(
                "linter COL005 {} but under-claims are {expected_under:?}",
                if has("COL005") { "fired" } else { "silent" }
            ),
        );
    }
}

// ---------------------------------------------------------------------
// Oracle 4: saturation == brute-force optimum, ≤ greedy
// ---------------------------------------------------------------------

/// Stage-count ceiling for the brute-force oracle; above it the
/// exponential enumeration dominates the campaign's wall-clock.
const BRUTE_FORCE_MAX_STAGES: usize = 6;

/// Absolute slack for the greedy comparison. All costs come from the
/// same left-fold [`program_cost`], so agreements are bit-exact in
/// practice; the epsilon only guards hypothetical float-fold drift.
const COST_EPS: f64 = 1e-6;

fn check_saturation(case: &CaseSpec, ledger: &mut CoverageLedger, failures: &mut Vec<FuzzFailure>) {
    // The base (unfused) pipeline, like oracle 1: pre-fused stages are
    // reachable from it anyway when they pay off.
    let prog = case.base_program();
    if prog.len() > BRUTE_FORCE_MAX_STAGES {
        return;
    }
    ledger.saturation_cases += 1;
    let params = MachineParams::new(case.p, 100.0, 2.0); // = oracle_clock()
    let m = case.m as f64;
    let rewriter = Rewriter::exhaustive();
    let sat = rewriter.optimize_optimal(&prog, &params, m);
    let brute = rewriter.optimize_brute_force(&prog, &params, m);
    let greedy = Rewriter::cost_guided(params, m).optimize(&prog);

    let sat_cost = program_cost(&sat.program, &params, m);
    let brute_cost = program_cost(&brute.program, &params, m);
    if sat.program.to_string() != brute.program.to_string() {
        push(
            failures,
            case,
            OracleKind::Saturation,
            format!(
                "saturation extracted `{}` (cost {sat_cost}) but the brute-force optimum is `{}` (cost {brute_cost})",
                sat.program, brute.program
            ),
        );
    } else if sat_cost.to_bits() != brute_cost.to_bits() {
        push(
            failures,
            case,
            OracleKind::Saturation,
            format!("same extracted program, different cost bits: {sat_cost} vs {brute_cost}"),
        );
    }
    let greedy_cost = program_cost(&greedy.program, &params, m);
    if sat_cost > greedy_cost + COST_EPS {
        push(
            failures,
            case,
            OracleKind::Saturation,
            format!(
                "saturation cost {sat_cost} exceeds greedy cost {greedy_cost} (`{}` vs `{}`)",
                sat.program, greedy.program
            ),
        );
    }
    // Every step of the extracted plan carries a certificate; on honest
    // tables (where the declared laws genuinely hold on the full domain)
    // each one must revalidate.
    if case.domain == CaseDomain::Table && case.over_claims().is_empty() {
        let full_domain: Vec<Value> = (0..N).map(Value::Int).collect();
        let issues = validate_result(&sat, &full_domain, &AuditConfig::default());
        if let Some(issue) = issues.first() {
            push(
                failures,
                case,
                OracleKind::Saturation,
                format!("extracted plan's certificate failed revalidation: {issue:?}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{case_mode, generate_case, CaseMode, GenConfig};

    #[test]
    fn smoke_campaign_over_first_seeds_is_clean() {
        let cfg = GenConfig::default();
        let mut ledger = CoverageLedger::new();
        let mut failures = Vec::new();
        for seed in 0..60 {
            let case = generate_case(seed, &cfg);
            failures.extend(run_case(&case, &mut ledger));
        }
        assert!(
            failures.is_empty(),
            "oracle violations:\n{}",
            failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(ledger.cases, 60);
    }

    #[test]
    fn every_planted_lie_in_a_seed_window_is_caught() {
        let cfg = GenConfig::default();
        let mut ledger = CoverageLedger::new();
        let mut lies = 0;
        for seed in 0..120 {
            if matches!(case_mode(seed), CaseMode::OverClaim(_)) {
                let case = generate_case(seed, &cfg);
                let failures = run_case(&case, &mut ledger);
                assert!(failures.is_empty(), "seed {seed}: {}", failures[0]);
                lies += 1;
            }
        }
        assert!(lies >= 20);
        assert_eq!(
            ledger.lies_caught, lies,
            "a lie slipped past a defense layer"
        );
    }

    #[test]
    fn rule_coverage_saturates_within_110_consecutive_honest_seeds() {
        let cfg = GenConfig::default();
        let mut ledger = CoverageLedger::new();
        for seed in 0..220 {
            let case = generate_case(seed, &cfg);
            run_case(&case, &mut ledger);
        }
        assert!(
            ledger.missing_rules().is_empty(),
            "rules never fired: {:?}",
            ledger.missing_rules()
        );
    }
}
