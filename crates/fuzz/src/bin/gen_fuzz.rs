//! Differential fuzz campaign driver.
//!
//! Environment knobs:
//!   FUZZ_ITERS    cases to run              (default 500)
//!   FUZZ_SEED     base seed                 (default 0xC0110)
//!   FUZZ_PMAX     largest machine size      (default 9)
//!   FUZZ_M        largest words per block   (default 4)
//!   FUZZ_PIN      0 disables corpus pinning (default 1)
//!   SWEEP_WORKERS worker threads            (default: all cores)
//!
//! Always writes the coverage summary to `results/BENCH_fuzz.json`. On
//! oracle violations: prints a reproducing `seed=.. [oracle] .. [spec: ..]`
//! line per failure (exactly like `gen_chaos`), shrinks each to a local
//! minimum, pins the shrunk cases into `tests/corpus/`, writes
//! `results/fuzz_failures.json`, and exits 1. A campaign in which any of
//! the 11 Table-1 rules never fired also exits 1.

use std::fs;
use std::time::Instant;

use collopt_bench::harness::env_u64;
use collopt_bench::sweep_driver::default_workers;
use collopt_fuzz::{pin, run_campaign, shrink_failures, CampaignConfig, GenConfig};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Cap on how many failures get the (expensive) shrink treatment.
const SHRINK_CAP: usize = 10;

fn main() {
    let iters = env_u64("FUZZ_ITERS", 500);
    let seed = env_u64("FUZZ_SEED", 0xC0110);
    let pmax = env_u64("FUZZ_PMAX", 9).clamp(2, 64) as usize;
    let mmax = env_u64("FUZZ_M", 4).clamp(1, 64) as usize;
    let pin_enabled = env_u64("FUZZ_PIN", 1) != 0;
    let workers = default_workers();

    let cfg = CampaignConfig {
        seed,
        iters,
        gen: GenConfig { pmax, mmax },
        workers: None,
    };

    println!("# collopt differential fuzz campaign");
    println!("# iters={iters} seed={seed} pmax={pmax} mmax={mmax} workers={workers}");
    let start = Instant::now();
    let result = run_campaign(&cfg);
    let wall_ms = start.elapsed().as_millis();
    println!("{}", result.ledger.summary());
    println!("# wall-clock: {wall_ms} ms");

    fs::create_dir_all("results").expect("create results/");
    let missing = result.ledger.missing_rules();
    let bench_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fuzz\",\n",
            "  \"seed\": {},\n",
            "  \"iters\": {},\n",
            "  \"workers\": {},\n",
            "  \"wall_ms\": {},\n",
            "  \"failures\": {},\n",
            "  \"missing_rules\": [{}],\n",
            "  \"passed\": {},\n",
            "  \"coverage\": {}\n",
            "}}\n"
        ),
        seed,
        iters,
        workers,
        wall_ms,
        result.failures.len(),
        missing
            .iter()
            .map(|r| format!("\"{r}\""))
            .collect::<Vec<_>>()
            .join(", "),
        result.passed(),
        result.ledger.to_json(),
    );
    fs::write("results/BENCH_fuzz.json", bench_json).expect("write results/BENCH_fuzz.json");
    println!("# coverage summary written to results/BENCH_fuzz.json");

    if !result.failures.is_empty() {
        eprintln!("FUZZ FAILURES ({}):", result.failures.len());
        for f in &result.failures {
            eprintln!("  [{}] {f}", f.oracle.label());
        }

        eprintln!("# shrinking up to {SHRINK_CAP} failing cases...");
        let shrunk = shrink_failures(&result.failures, SHRINK_CAP);
        let mut failures_json = String::from("[\n");
        for (i, (failure, small)) in shrunk.iter().enumerate() {
            let small_spec = small.render();
            eprintln!("  shrunk seed={}: {small_spec}", failure.seed);
            if pin_enabled {
                let notes = vec![
                    format!("oracle: {}", failure.oracle.label()),
                    format!("what: {}", failure.what),
                    format!("original: {}", failure.spec),
                ];
                match pin(std::path::Path::new("tests/corpus"), small, &notes) {
                    Ok(path) => eprintln!("  pinned to {}", path.display()),
                    Err(e) => eprintln!("  pin failed: {e}"),
                }
            }
            failures_json.push_str(&format!(
                concat!(
                    "  {{\"seed\": {}, \"oracle\": \"{}\", \"what\": \"{}\", ",
                    "\"spec\": \"{}\", \"shrunk\": \"{}\"}}{}\n"
                ),
                failure.seed,
                failure.oracle.label(),
                json_escape(&failure.what),
                json_escape(&failure.spec),
                json_escape(&small_spec),
                if i + 1 < shrunk.len() { "," } else { "" },
            ));
        }
        failures_json.push_str("]\n");
        fs::write("results/fuzz_failures.json", failures_json)
            .expect("write results/fuzz_failures.json");
        eprintln!("# failing specs written to results/fuzz_failures.json");
        std::process::exit(1);
    }

    if !missing.is_empty() {
        eprintln!("COVERAGE GAP: rules never fired: {missing:?}");
        std::process::exit(1);
    }
    println!(
        "# OK: {} cases, {}/11 rules, {} planted lies all caught",
        result.ledger.cases,
        result.ledger.rules_fired(),
        result.ledger.lies_caught
    );
}
