//! The pinned-regression corpus.
//!
//! Every failing case the fuzzer shrinks is written to `tests/corpus/`
//! as a `.case` file: `#`-prefixed comment lines (what failed, when, from
//! which seed) followed by a single [`CaseSpec`] spec-string line. A
//! loader test replays every corpus file through the full oracle battery
//! forever — a regression pinned once never silently un-pins.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::gen::CaseSpec;

/// One corpus entry: its path, leading comments, and the parsed case.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// File the case was loaded from.
    pub path: PathBuf,
    /// Comment lines (without the `#`), e.g. the original failure line.
    pub notes: Vec<String>,
    /// The pinned case.
    pub case: CaseSpec,
}

/// Parse one `.case` file body.
pub fn parse_case_file(text: &str) -> Result<(Vec<String>, CaseSpec), String> {
    let mut notes = Vec::new();
    let mut spec = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            notes.push(rest.trim().to_string());
        } else if spec.is_none() {
            spec = Some(line.to_string());
        } else {
            return Err("multiple spec lines in one case file".to_string());
        }
    }
    let spec = spec.ok_or("no spec line in case file")?;
    Ok((notes, CaseSpec::parse(&spec)?))
}

/// Load every `*.case` file under `dir`, sorted by file name so replay
/// order is stable. A corpus directory that does not exist yet is an
/// empty corpus, not an error.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut cases = Vec::new();
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (notes, case) =
            parse_case_file(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        cases.push(CorpusCase { path, notes, case });
    }
    Ok(cases)
}

/// Stable file name for a case: FNV-1a of its spec string, so pinning the
/// same shrunk case twice overwrites rather than duplicates.
pub fn corpus_file_name(case: &CaseSpec) -> String {
    format!("pinned_{:016x}.case", fnv1a(case.render().as_bytes()))
}

/// Write (or overwrite) `case` into `dir`, creating the directory if
/// needed. Returns the file path.
pub fn pin(dir: &Path, case: &CaseSpec, notes: &[String]) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(corpus_file_name(case));
    let mut body = String::new();
    for note in notes {
        body.push_str("# ");
        body.push_str(note);
        body.push('\n');
    }
    body.push_str(&case.render());
    body.push('\n');
    fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn case_files_round_trip_through_pin_and_load() {
        let dir = std::env::temp_dir().join(format!("collopt-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cfg = GenConfig::default();
        for seed in [1u64, 9, 16] {
            let case = generate_case(seed, &cfg);
            pin(&dir, &case, &[format!("seed {seed} test pin")]).expect("pin");
        }
        let loaded = load_corpus(&dir).expect("load");
        assert_eq!(loaded.len(), 3);
        for entry in &loaded {
            assert!(!entry.notes.is_empty());
            assert!(entry.case.validate().is_ok());
        }
        // Pinning the same case again does not grow the corpus.
        pin(&dir, &loaded[0].case, &["again".to_string()]).expect("re-pin");
        assert_eq!(load_corpus(&dir).expect("reload").len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/nonexistent/collopt-fuzz-nowhere");
        assert!(load_corpus(dir).expect("empty").is_empty());
    }

    #[test]
    fn malformed_case_files_are_rejected() {
        assert!(parse_case_file("# only comments\n").is_err());
        assert!(parse_case_file("not a spec\n").is_err());
        let cfg = GenConfig::default();
        let spec = generate_case(5, &cfg).render();
        let two = format!("{spec}\n{spec}\n");
        assert!(parse_case_file(&two).is_err());
    }
}
