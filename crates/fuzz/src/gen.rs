//! Seeded random case generation over the full pipeline grammar.
//!
//! A [`CaseSpec`] is a *complete, self-contained* description of one fuzz
//! case: machine size, block size, execution engine, value domain, the
//! pipeline (over builtin operators and/or random 4×4 lookup-table
//! operators with their *declared* — possibly lying — algebraic laws), an
//! optional [`FaultPlan`], and an optional pre-applied fusion rule. The
//! spec round-trips through a one-line string ([`CaseSpec::render`] /
//! [`CaseSpec::parse`]), which is what failure reports print and what the
//! pinned-regression corpus stores.
//!
//! Generation is a pure function of the case seed ([`generate_case`]):
//! the low decimal digit picks the *mode* (honest rule-targeted, PolyEval,
//! planted over-claim, planted under-claim) and the next digits cycle the
//! targeted rule, so any window of 110 consecutive seeds provably covers
//! every Table-1 rule with an honest case — the coverage ledger's
//! all-rules-fired gate cannot flake.

use collopt_bench::chaos::{random_plan, ChaosKind};
use collopt_core::op::{lib as ops, BinOp};
use collopt_core::rules::{self, Rule};
use collopt_core::term::{Program, Stage};
use collopt_core::value::Value;
use collopt_machine::{ExecEngine, FaultPlan, Rng};

/// Size of the lookup-table operator domain `{0..N-1}`.
pub const N: i64 = 4;

/// Name of the `idx`-th table operator in a case (`t0`, `t1`, ...).
pub fn table_name(idx: usize) -> String {
    format!("t{idx}")
}

/// A random binary operation on `{0..3}` as a 16-entry lookup table, plus
/// its *declared* laws. `BinOp::new` always declares associativity, so an
/// associativity over-claim is expressed by a non-associative table; the
/// optional declarations below carry the commutativity/distributivity
/// claims. Declarations are independent of the table's brute-forced truth
/// — that gap is exactly what oracle 3 checks the analyzer stack against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Row-major `op(a, b) = cells[a * N + b]`, values in `0..N`.
    pub cells: [i64; 16],
    /// Whether the built [`BinOp`] declares `.commutative()`.
    pub declare_commutative: bool,
    /// Whether it declares `.distributes_over_op(table_name(j))`.
    pub declare_distributes_over: Option<usize>,
}

impl TableSpec {
    /// Apply the table on the canonical domain.
    pub fn apply(&self, a: i64, b: i64) -> i64 {
        self.cells[(a * N + b) as usize]
    }

    /// Exhaustive associativity check on the full domain.
    pub fn is_associative(&self) -> bool {
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    if self.apply(self.apply(a, b), c) != self.apply(a, self.apply(b, c)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Exhaustive commutativity check on the full domain.
    pub fn is_commutative(&self) -> bool {
        for a in 0..N {
            for b in 0..N {
                if self.apply(a, b) != self.apply(b, a) {
                    return false;
                }
            }
        }
        true
    }

    /// Exhaustive two-sided distributivity check on the full domain.
    pub fn distributes_over(&self, other: &TableSpec) -> bool {
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    let l = self.apply(a, other.apply(b, c));
                    let r = other.apply(self.apply(a, b), self.apply(a, c));
                    let l2 = self.apply(other.apply(b, c), a);
                    let r2 = other.apply(self.apply(b, a), self.apply(c, a));
                    if l != r || l2 != r2 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Build the executable [`BinOp`] carrying the *declared* laws. The
    /// closure wraps arbitrary integers into the domain (`rem_euclid`),
    /// which keeps every algebraic law on ℤ exactly equivalent to the
    /// brute-forced law on `{0..3}` — so the analyzer's `Domain::Int`
    /// audit and this module's exhaustive truth tables must agree.
    pub fn binop(&self, idx: usize) -> BinOp {
        let t = self.cells;
        let mut op = BinOp::new(table_name(idx), move |a, b| {
            let i = a.as_int().rem_euclid(N);
            let j = b.as_int().rem_euclid(N);
            Value::Int(t[(i * N + j) as usize])
        });
        if self.declare_commutative {
            op = op.commutative();
        }
        if let Some(j) = self.declare_distributes_over {
            op = op.distributes_over_op(&table_name(j));
        }
        op
    }

    /// Spec-string form: `t<idx>:<16 cells>:<flags>` with flags `c`
    /// (commutative declared), `dJ` (distributes over `tJ` declared), or
    /// `-` for no optional declarations.
    pub fn encode(&self, idx: usize) -> String {
        let cells: String = self.cells.iter().map(|c| c.to_string()).collect();
        let mut flags = String::new();
        if self.declare_commutative {
            flags.push('c');
        }
        if let Some(j) = self.declare_distributes_over {
            flags.push('d');
            flags.push_str(&j.to_string());
        }
        if flags.is_empty() {
            flags.push('-');
        }
        format!("t{idx}:{cells}:{flags}")
    }

    /// Inverse of [`TableSpec::encode`]; returns `(index, spec)`.
    pub fn decode(s: &str) -> Result<(usize, TableSpec), String> {
        let mut parts = s.split(':');
        let name = parts.next().ok_or("empty table spec")?;
        let idx: usize = name
            .strip_prefix('t')
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| format!("bad table name {name:?}"))?;
        let cells_str = parts.next().ok_or("missing table cells")?;
        if cells_str.len() != 16 {
            return Err(format!("expected 16 cells, got {}", cells_str.len()));
        }
        let mut cells = [0i64; 16];
        for (i, ch) in cells_str.chars().enumerate() {
            let v = ch.to_digit(10).ok_or_else(|| format!("bad cell {ch:?}"))? as i64;
            if v >= N {
                return Err(format!("cell {v} out of domain 0..{N}"));
            }
            cells[i] = v;
        }
        let flags = parts.next().ok_or("missing table flags")?;
        if parts.next().is_some() {
            return Err(format!("trailing garbage in table spec {s:?}"));
        }
        let mut spec = TableSpec {
            cells,
            declare_commutative: false,
            declare_distributes_over: None,
        };
        if flags != "-" {
            let mut it = flags.chars().peekable();
            while let Some(ch) = it.next() {
                match ch {
                    'c' => spec.declare_commutative = true,
                    'd' => {
                        let j = it
                            .next()
                            .and_then(|d| d.to_digit(10))
                            .ok_or("flag d needs a table index")?;
                        spec.declare_distributes_over = Some(j as usize);
                    }
                    other => return Err(format!("unknown table flag {other:?}")),
                }
            }
        }
        Ok((idx, spec))
    }
}

/// One algebraic law claim about a table operator, in the same phrasing
/// [`collopt_core::op::RequiredLaw::describe`] and the analyzer use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawClaim {
    /// Index of the table the claim is about.
    pub table: usize,
    /// Human law description, e.g. `"commutativity of t0"`.
    pub law: String,
}

/// The value domain a case's pipeline computes over. One domain per case
/// keeps every stage's operators and inputs type-consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseDomain {
    /// Random 4×4 lookup tables on `{0..3}` (the lie-capable domain).
    Table,
    /// Builtin integer operators (`add`/`mul`/`max`/`min`).
    Int,
    /// Builtin boolean operators (`and`/`or`).
    Bool,
    /// Builtin float operators (`fadd`/`fmul`), dyadic inputs.
    Float,
}

impl CaseDomain {
    /// Spec-string token.
    pub fn label(&self) -> &'static str {
        match self {
            CaseDomain::Table => "table",
            CaseDomain::Int => "int",
            CaseDomain::Bool => "bool",
            CaseDomain::Float => "float",
        }
    }

    /// Inverse of [`CaseDomain::label`].
    pub fn parse(s: &str) -> Result<CaseDomain, String> {
        match s {
            "table" => Ok(CaseDomain::Table),
            "int" => Ok(CaseDomain::Int),
            "bool" => Ok(CaseDomain::Bool),
            "float" => Ok(CaseDomain::Float),
            other => Err(format!("unknown domain {other:?}")),
        }
    }
}

/// Reference to an operator: a case-local table or a builtin by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpRef {
    /// `tables[i]` of the owning case.
    Table(usize),
    /// A library operator (`add`, `mul`, `max`, `min`, `and`, `or`,
    /// `fadd`, `fmul`).
    Builtin(&'static str),
}

impl OpRef {
    fn encode(&self) -> String {
        match self {
            OpRef::Table(i) => table_name(*i),
            OpRef::Builtin(name) => (*name).to_string(),
        }
    }

    fn decode(s: &str) -> Result<OpRef, String> {
        if let Some(d) = s.strip_prefix('t') {
            if let Ok(i) = d.parse::<usize>() {
                return Ok(OpRef::Table(i));
            }
        }
        builtin_op(s).map(|_| OpRef::Builtin(intern_builtin(s)))
    }
}

fn intern_builtin(name: &str) -> &'static str {
    match name {
        "add" => "add",
        "mul" => "mul",
        "max" => "max",
        "min" => "min",
        "and" => "and",
        "or" => "or",
        "fadd" => "fadd",
        "fmul" => "fmul",
        other => panic!("not a fuzzable builtin: {other}"),
    }
}

/// Build a builtin operator by name.
pub fn builtin_op(name: &str) -> Result<BinOp, String> {
    match name {
        "add" => Ok(ops::add()),
        "mul" => Ok(ops::mul()),
        "max" => Ok(ops::max()),
        "min" => Ok(ops::min()),
        "and" => Ok(ops::and()),
        "or" => Ok(ops::or()),
        "fadd" => Ok(ops::fadd()),
        "fmul" => Ok(ops::fmul()),
        other => Err(format!("unknown operator {other:?}")),
    }
}

/// One pipeline stage in spec form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageSpec {
    /// `bcast`.
    Bcast,
    /// `gather` (rank 0 collects a list of every rank's value).
    Gather,
    /// `scatter` (rank 0's list is redistributed; the generator only
    /// emits it directly after a gather/allgather).
    Scatter,
    /// `allgather`.
    AllGather,
    /// `map id` — the identity local stage.
    MapId,
    /// `map# mul_coeff` — the PolyEval coefficient stage; per-rank dyadic
    /// coefficients derived from the case seed.
    CoeffMul,
    /// `scan(op)`.
    Scan(OpRef),
    /// `reduce(op)`.
    Reduce(OpRef),
    /// `allreduce(op)`.
    AllReduce(OpRef),
}

impl StageSpec {
    fn encode(&self) -> String {
        match self {
            StageSpec::Bcast => "bcast".to_string(),
            StageSpec::Gather => "gather".to_string(),
            StageSpec::Scatter => "scatter".to_string(),
            StageSpec::AllGather => "allgather".to_string(),
            StageSpec::MapId => "map".to_string(),
            StageSpec::CoeffMul => "coeff".to_string(),
            StageSpec::Scan(op) => format!("scan({})", op.encode()),
            StageSpec::Reduce(op) => format!("reduce({})", op.encode()),
            StageSpec::AllReduce(op) => format!("allreduce({})", op.encode()),
        }
    }

    fn decode(s: &str) -> Result<StageSpec, String> {
        let s = s.trim();
        match s {
            "bcast" => return Ok(StageSpec::Bcast),
            "gather" => return Ok(StageSpec::Gather),
            "scatter" => return Ok(StageSpec::Scatter),
            "allgather" => return Ok(StageSpec::AllGather),
            "map" => return Ok(StageSpec::MapId),
            "coeff" => return Ok(StageSpec::CoeffMul),
            _ => {}
        }
        for (prefix, build) in [
            ("scan(", StageSpec::Scan as fn(OpRef) -> StageSpec),
            ("reduce(", StageSpec::Reduce as fn(OpRef) -> StageSpec),
            ("allreduce(", StageSpec::AllReduce as fn(OpRef) -> StageSpec),
        ] {
            if let Some(rest) = s.strip_prefix(prefix) {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("missing ')' in {s:?}"))?;
                return Ok(build(OpRef::decode(inner)?));
            }
        }
        Err(format!("unknown stage {s:?}"))
    }

    /// The operator referenced by this stage, if any.
    pub fn op_ref(&self) -> Option<&OpRef> {
        match self {
            StageSpec::Scan(op) | StageSpec::Reduce(op) | StageSpec::AllReduce(op) => Some(op),
            _ => None,
        }
    }
}

/// A complete fuzz case. See the module docs for the spec-string format.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Case seed: inputs, PolyEval coefficients and the generation of
    /// every other field derive from it.
    pub seed: u64,
    /// Machine size.
    pub p: usize,
    /// Words per rank block (`m == 1` means scalar values).
    pub m: usize,
    /// Engine oracle 1 executes on (oracle 2 always runs all three).
    pub engine: ExecEngine,
    /// Value domain.
    pub domain: CaseDomain,
    /// The pipeline.
    pub stages: Vec<StageSpec>,
    /// Table operators referenced by the pipeline.
    pub tables: Vec<TableSpec>,
    /// Fault plan for the engine oracle (`None` = clean run).
    pub plan: Option<FaultPlan>,
    /// A rule pre-applied at a stage index, so the case *starts* from a
    /// fused form (exercises Comcast/balanced/IterLocal stages).
    pub fuse: Option<(Rule, usize)>,
}

fn engine_token(e: ExecEngine) -> &'static str {
    match e {
        ExecEngine::Legacy => "legacy",
        ExecEngine::Pooled => "pooled",
        ExecEngine::Des => "des",
    }
}

fn rule_by_name(name: &str) -> Result<Rule, String> {
    Rule::ALL
        .into_iter()
        .find(|r| r.name() == name)
        .ok_or_else(|| format!("unknown rule {name:?}"))
}

impl CaseSpec {
    /// Serialize to the one-line reproducible spec string.
    pub fn render(&self) -> String {
        let prog = self
            .stages
            .iter()
            .map(StageSpec::encode)
            .collect::<Vec<_>>()
            .join(" ; ");
        let tables = if self.tables.is_empty() {
            "-".to_string()
        } else {
            self.tables
                .iter()
                .enumerate()
                .map(|(i, t)| t.encode(i))
                .collect::<Vec<_>>()
                .join(";")
        };
        let plan = match &self.plan {
            None => "none".to_string(),
            Some(p) => p.describe(),
        };
        let fuse = match &self.fuse {
            None => "none".to_string(),
            Some((rule, at)) => format!("{}@{at}", rule.name()),
        };
        format!(
            "v1|seed={}|p={}|m={}|engine={}|domain={}|prog={}|tables={}|plan={}|fuse={}",
            self.seed,
            self.p,
            self.m,
            engine_token(self.engine),
            self.domain.label(),
            prog,
            tables,
            plan,
            fuse
        )
    }

    /// Parse a spec string produced by [`CaseSpec::render`]; validates
    /// structural invariants so every parsed spec builds a runnable case.
    pub fn parse(s: &str) -> Result<CaseSpec, String> {
        let mut fields = s.trim().split('|');
        if fields.next() != Some("v1") {
            return Err("spec must start with 'v1|'".to_string());
        }
        let mut seed = None;
        let mut p = None;
        let mut m = None;
        let mut engine = None;
        let mut domain = None;
        let mut stages: Option<Vec<StageSpec>> = None;
        let mut tables: Option<Vec<TableSpec>> = None;
        let mut plan = None;
        let mut fuse = None;
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "seed" => seed = Some(value.parse().map_err(|_| "bad seed")?),
                "p" => p = Some(value.parse().map_err(|_| "bad p")?),
                "m" => m = Some(value.parse().map_err(|_| "bad m")?),
                "engine" => engine = Some(value.parse::<ExecEngine>().map_err(|e| e.to_string())?),
                "domain" => domain = Some(CaseDomain::parse(value)?),
                "prog" => {
                    stages = Some(
                        value
                            .split(';')
                            .map(StageSpec::decode)
                            .collect::<Result<_, _>>()?,
                    )
                }
                "tables" => {
                    let mut ts = Vec::new();
                    if value != "-" {
                        for (want, part) in value.split(';').enumerate() {
                            let (idx, t) = TableSpec::decode(part)?;
                            if idx != want {
                                return Err(format!("table {idx} out of order"));
                            }
                            ts.push(t);
                        }
                    }
                    tables = Some(ts);
                }
                "plan" => {
                    plan = Some(if value == "none" {
                        None
                    } else {
                        Some(FaultPlan::parse(value)?)
                    })
                }
                "fuse" => {
                    fuse = Some(if value == "none" {
                        None
                    } else {
                        let (name, at) = value
                            .rsplit_once('@')
                            .ok_or("fuse must be RULE@index or none")?;
                        Some((
                            rule_by_name(name)?,
                            at.parse().map_err(|_| "bad fuse index")?,
                        ))
                    })
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let case = CaseSpec {
            seed: seed.ok_or("missing seed")?,
            p: p.ok_or("missing p")?,
            m: m.ok_or("missing m")?,
            engine: engine.ok_or("missing engine")?,
            domain: domain.ok_or("missing domain")?,
            stages: stages.ok_or("missing prog")?,
            tables: tables.ok_or("missing tables")?,
            plan: plan.ok_or("missing plan")?,
            fuse: fuse.ok_or("missing fuse")?,
        };
        case.validate()?;
        Ok(case)
    }

    /// Structural validity: table references in range, scatter only right
    /// after a gather/allgather, plan ranks inside the machine, and a
    /// `fuse` annotation that actually matches.
    pub fn validate(&self) -> Result<(), String> {
        if self.p < 2 {
            return Err("p must be at least 2".to_string());
        }
        if self.m < 1 {
            return Err("m must be at least 1".to_string());
        }
        if self.stages.is_empty() {
            return Err("empty pipeline".to_string());
        }
        for (i, st) in self.stages.iter().enumerate() {
            if let Some(OpRef::Table(t)) = st.op_ref() {
                if *t >= self.tables.len() {
                    return Err(format!("stage {i} references missing table t{t}"));
                }
            }
            if matches!(st, StageSpec::Scatter)
                && !matches!(
                    i.checked_sub(1).map(|j| &self.stages[j]),
                    Some(StageSpec::Gather) | Some(StageSpec::AllGather)
                )
            {
                return Err(format!("scatter at stage {i} without a preceding gather"));
            }
        }
        for t in &self.tables {
            if let Some(j) = t.declare_distributes_over {
                if j >= self.tables.len() {
                    return Err(format!("distributivity declaration over missing t{j}"));
                }
            }
        }
        // Every table must be referenced: the analyzers only see operators
        // that occur in the pipeline, so an orphan table would make the
        // defense oracle's brute-forced claim sets diverge from theirs.
        for i in 0..self.tables.len() {
            let used = self
                .stages
                .iter()
                .any(|s| s.op_ref() == Some(&OpRef::Table(i)));
            if !used {
                return Err(format!("table t{i} is never referenced by a stage"));
            }
        }
        if let Some(plan) = &self.plan {
            let ranks_ok = plan.compute.iter().all(|s| s.rank < self.p)
                && plan.links.iter().all(|l| l.a < self.p && l.b < self.p)
                && plan
                    .drop_exact
                    .iter()
                    .all(|d| d.from < self.p && d.to < self.p)
                && plan.crash.as_ref().is_none_or(|c| c.rank < self.p);
            if !ranks_ok {
                return Err("fault plan names a rank outside the machine".to_string());
            }
        }
        if let Some((rule, at)) = self.fuse {
            let base = self.base_program();
            if at >= base.len() {
                return Err(format!("fuse index {at} out of range"));
            }
            if rules::try_match(rule, &base.stages()[at..]).is_none() {
                return Err(format!("fuse {}@{at} does not match", rule.name()));
            }
        }
        Ok(())
    }

    /// Build the pipeline *without* the `fuse` pre-application.
    pub fn base_program(&self) -> Program {
        let mut prog = Program::new();
        for st in &self.stages {
            prog = match st {
                StageSpec::Bcast => prog.bcast(),
                StageSpec::Gather => prog.gather(),
                StageSpec::Scatter => prog.scatter(),
                StageSpec::AllGather => prog.allgather(),
                StageSpec::MapId => prog.map("id", 0.0, |v| v.clone()),
                StageSpec::CoeffMul => {
                    let coeffs = self.coefficients();
                    prog.map_indexed("mul_coeff", 1.0, move |rank, v| {
                        scale_block(v, coeffs[rank])
                    })
                }
                StageSpec::Scan(op) => prog.scan(self.op(op)),
                StageSpec::Reduce(op) => prog.reduce(self.op(op)),
                StageSpec::AllReduce(op) => prog.allreduce(self.op(op)),
            };
        }
        prog
    }

    /// Build the pipeline, applying the `fuse` annotation when present.
    pub fn program(&self) -> Program {
        let base = self.base_program();
        match self.fuse {
            None => base,
            Some((rule, at)) => {
                let rw = rules::try_match(rule, &base.stages()[at..])
                    .unwrap_or_else(|| panic!("fuse {}@{at} does not match", rule.name()));
                base.splice(at, rules::window_len(rule), rw.stages)
            }
        }
    }

    /// Resolve an operator reference against this case's tables.
    pub fn op(&self, op: &OpRef) -> BinOp {
        match op {
            OpRef::Table(i) => self.tables[*i].binop(*i),
            OpRef::Builtin(name) => builtin_op(name).expect("builtin"),
        }
    }

    /// The PolyEval per-rank coefficients (dyadic, seed-derived).
    pub fn coefficients(&self) -> Vec<f64> {
        let mut rng = Rng::new(self.seed ^ 0xC0EF_C0EF);
        (0..self.p)
            .map(|_| rng.range_i64(-8, 9) as f64 * 0.5)
            .collect()
    }

    /// Deterministic domain-appropriate inputs: `p` blocks of `m` words.
    /// Float inputs are dyadic rationals, so rewrites that reassociate
    /// float arithmetic stay exactly representable at this scale.
    pub fn inputs(&self) -> Vec<Value> {
        let mut rng = Rng::new(self.seed ^ 0x1217_0B10);
        let scalar = |rng: &mut Rng| match self.domain {
            CaseDomain::Table => Value::Int(rng.range_i64(0, N)),
            CaseDomain::Int => Value::Int(rng.range_i64(-2, 3)),
            CaseDomain::Bool => Value::Bool(rng.chance(0.5)),
            CaseDomain::Float => Value::Float(rng.range_i64(-8, 9) as f64 * 0.5),
        };
        (0..self.p)
            .map(|_| {
                if self.m == 1 {
                    scalar(&mut rng)
                } else {
                    Value::list((0..self.m).map(|_| scalar(&mut rng)).collect())
                }
            })
            .collect()
    }

    /// Over-claims: laws *declared* on a table that its exhaustive truth
    /// table refutes. Non-empty exactly for planted-lie cases.
    pub fn over_claims(&self) -> Vec<LawClaim> {
        let mut out = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            if !t.is_associative() {
                out.push(LawClaim {
                    table: i,
                    law: format!("associativity of {}", table_name(i)),
                });
            }
            if t.declare_commutative && !t.is_commutative() {
                out.push(LawClaim {
                    table: i,
                    law: format!("commutativity of {}", table_name(i)),
                });
            }
            if let Some(j) = t.declare_distributes_over {
                if !t.distributes_over(&self.tables[j]) {
                    out.push(LawClaim {
                        table: i,
                        law: format!("{} distributes over {}", table_name(i), table_name(j)),
                    });
                }
            }
        }
        out
    }

    /// Under-claims: laws that *hold* exhaustively but are not declared —
    /// commutativity, and distributivity over every case table *including
    /// the operator itself* (the analyzer probes self-distributivity too,
    /// e.g. idempotent lattice ops distribute over themselves).
    pub fn under_claims(&self) -> Vec<LawClaim> {
        let mut out = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            if t.is_commutative() && !t.declare_commutative {
                out.push(LawClaim {
                    table: i,
                    law: format!("commutativity of {}", table_name(i)),
                });
            }
            for (j, u) in self.tables.iter().enumerate() {
                if t.declare_distributes_over != Some(j) && t.distributes_over(u) {
                    out.push(LawClaim {
                        table: i,
                        law: format!("{} distributes over {}", table_name(i), table_name(j)),
                    });
                }
            }
        }
        out
    }

    /// Whether comparing only rank 0 after an optimization that applied
    /// rank0-only rules is sound for this pipeline: every reducing stage
    /// (the only windows the Local rules can consume) must be followed by
    /// rank-local stages only, so non-root garbage can never flow back
    /// into rank 0's value. Judged on the base (unfused) pipeline, which
    /// is what the rewrite oracle optimizes.
    pub fn rank0_comparison_safe(&self) -> bool {
        let prog = self.base_program();
        let stages = prog.stages();
        for (i, s) in stages.iter().enumerate() {
            let reducing = matches!(
                s,
                Stage::Reduce(_)
                    | Stage::ReduceBalanced { all: false, .. }
                    | Stage::IterLocal { all: false, .. }
            );
            if reducing
                && stages[i + 1..]
                    .iter()
                    .any(|t| !matches!(t, Stage::Map { .. } | Stage::MapIndexed { .. }))
            {
                return false;
            }
        }
        true
    }
}

/// Multiply every scalar in a (possibly nested) block by `k`.
fn scale_block(v: &Value, k: f64) -> Value {
    match v {
        Value::List(items) => Value::list(items.iter().map(|x| scale_block(x, k)).collect()),
        scalar => Value::Float(scalar.as_float() * k),
    }
}

/// Knobs for [`generate_case`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Largest machine size drawn (inclusive).
    pub pmax: usize,
    /// Largest words-per-block drawn (inclusive).
    pub mmax: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { pmax: 9, mmax: 4 }
    }
}

/// What a seed's case plants, decoded from the seed itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseMode {
    /// Honest declarations; pipeline embeds the LHS of a specific rule.
    HonestRule(Rule),
    /// The paper's Section-5 PolyEval pipeline (floats, honest).
    PolyEval,
    /// A deliberately false declaration of the given kind.
    OverClaim(LieKind),
    /// A true-but-undeclared commutativity.
    UnderClaim,
}

/// Which law an over-claim case lies about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LieKind {
    /// Non-associative table (associativity is always declared).
    Associativity,
    /// `.commutative()` on a non-commutative table.
    Commutativity,
    /// `.distributes_over_op(..)` that exhaustively fails.
    Distributivity,
}

/// Decode the mode a seed generates — the low digit cycles modes and the
/// next digits cycle rules/lie kinds, so consecutive seed ranges cover
/// everything deterministically (see module docs).
pub fn case_mode(seed: u64) -> CaseMode {
    match seed % 10 {
        0..=4 => CaseMode::HonestRule(Rule::ALL[((seed / 10) % 11) as usize]),
        5 => CaseMode::PolyEval,
        6..=8 => CaseMode::OverClaim(match (seed / 10) % 3 {
            0 => LieKind::Associativity,
            1 => LieKind::Commutativity,
            _ => LieKind::Distributivity,
        }),
        _ => CaseMode::UnderClaim,
    }
}

/// Generate the deterministic case for `seed`.
pub fn generate_case(seed: u64, cfg: &GenConfig) -> CaseSpec {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF022_2026);
    let p = rng.range_usize(2, cfg.pmax + 1);
    let m = rng.range_usize(1, cfg.mmax + 1);
    let engine = [ExecEngine::Legacy, ExecEngine::Pooled, ExecEngine::Des][rng.range_usize(0, 3)];
    let plan = random_case_plan(&mut rng, seed, p);

    let mut case = CaseSpec {
        seed,
        p,
        m,
        engine,
        domain: CaseDomain::Table,
        stages: Vec::new(),
        tables: Vec::new(),
        plan,
        fuse: None,
    };

    match case_mode(seed) {
        CaseMode::HonestRule(rule) => fill_honest(&mut case, rule, &mut rng),
        CaseMode::PolyEval => {
            case.domain = CaseDomain::Float;
            case.stages = vec![
                StageSpec::Bcast,
                StageSpec::Scan(OpRef::Builtin("fmul")),
                StageSpec::CoeffMul,
                StageSpec::Reduce(OpRef::Builtin("fadd")),
            ];
        }
        CaseMode::OverClaim(lie) => fill_over_claim(&mut case, lie, &mut rng),
        CaseMode::UnderClaim => fill_under_claim(&mut case, &mut rng),
    }
    debug_assert!(case.validate().is_ok(), "{:?}", case.validate());
    case
}

fn random_case_plan(rng: &mut Rng, seed: u64, p: usize) -> Option<FaultPlan> {
    if rng.chance(0.5) {
        return None;
    }
    let kind = match rng.range_usize(0, 10) {
        0..=4 => ChaosKind::Delay,
        5..=7 => ChaosKind::Lossy,
        _ => ChaosKind::Crash,
    };
    Some(random_plan(seed ^ 0x9A7A, p, kind))
}

/// Draw a random table; ~half are structured mixes of known associative
/// operations so the interesting cases actually occur.
pub fn random_table(rng: &mut Rng) -> TableSpec {
    let mut cells = [0i64; 16];
    if rng.chance(0.5) {
        for cell in cells.iter_mut() {
            *cell = rng.range_i64(0, N);
        }
    } else {
        let k = rng.range_usize(0, 6);
        for a in 0..N {
            for b in 0..N {
                cells[(a * N + b) as usize] = match k {
                    0 => a.min(b),
                    1 => a.max(b),
                    2 => (a + b) % N,
                    3 => (a * b) % N,
                    4 => a, // left projection (associative, non-comm.)
                    _ => 1, // constant (associative)
                };
            }
        }
    }
    TableSpec {
        cells,
        declare_commutative: false,
        declare_distributes_over: None,
    }
}

fn structured(kind: usize) -> TableSpec {
    let mut cells = [0i64; 16];
    for a in 0..N {
        for b in 0..N {
            cells[(a * N + b) as usize] = match kind {
                0 => a.min(b),
                1 => a.max(b),
                2 => (a + b) % N,
                3 => (a * b) % N,
                4 => a,
                _ => (a - b).rem_euclid(N), // non-associative, non-commutative
            };
        }
    }
    TableSpec {
        cells,
        declare_commutative: false,
        declare_distributes_over: None,
    }
}

fn sample_table(rng: &mut Rng, want: impl Fn(&TableSpec) -> bool, fallback: usize) -> TableSpec {
    for _ in 0..100 {
        let t = random_table(rng);
        if want(&t) {
            return t;
        }
    }
    let t = structured(fallback);
    assert!(want(&t), "fallback table does not satisfy the predicate");
    t
}

/// Is `rule` one of the distributivity (`*2`) variants?
fn needs_distributivity(rule: Rule) -> bool {
    matches!(
        rule,
        Rule::Sr2Reduction | Rule::Ss2Scan | Rule::Bss2Comcast | Rule::Bsr2Local
    )
}

/// Is `rule` one of the commutativity variants?
fn needs_commutativity(rule: Rule) -> bool {
    matches!(
        rule,
        Rule::SrReduction | Rule::SsScan | Rule::BssComcast | Rule::BsrLocal
    )
}

fn fill_honest(case: &mut CaseSpec, rule: Rule, rng: &mut Rng) {
    // Domains with exactly-verifiable laws only, so the targeted rule is
    // guaranteed to fire under property verification (coverage gate).
    case.domain = match rng.range_usize(0, 10) {
        0..=4 => CaseDomain::Table,
        5..=7 => CaseDomain::Int,
        _ => CaseDomain::Bool,
    };

    // Pick the window operator(s) honestly for the rule's side condition.
    let (ot, op) = if needs_distributivity(rule) {
        match case.domain {
            CaseDomain::Table => {
                let (t0, t1) = honest_distributive_pair(rng);
                case.tables = vec![t0, t1];
                (OpRef::Table(0), OpRef::Table(1))
            }
            CaseDomain::Int => (OpRef::Builtin("mul"), OpRef::Builtin("add")),
            _ => {
                if rng.chance(0.5) {
                    (OpRef::Builtin("and"), OpRef::Builtin("or"))
                } else {
                    (OpRef::Builtin("or"), OpRef::Builtin("and"))
                }
            }
        }
    } else {
        let need_comm = needs_commutativity(rule);
        let op = match case.domain {
            CaseDomain::Table => {
                let mut t = sample_table(
                    rng,
                    |t| t.is_associative() && (!need_comm || t.is_commutative()),
                    if need_comm { 0 } else { 4 },
                );
                // Honest declarations: exactly the brute-forced truth.
                t.declare_commutative = t.is_commutative();
                case.tables = vec![t];
                OpRef::Table(0)
            }
            CaseDomain::Int => OpRef::Builtin(["add", "max", "min"][rng.range_usize(0, 3)]),
            _ => OpRef::Builtin(if rng.chance(0.5) { "and" } else { "or" }),
        };
        (op.clone(), op)
    };

    // The targeted window sits at position 0 (no prefix, so no other rule
    // can consume it first); SR-family rules draw reduce vs allreduce.
    let tail = |rng: &mut Rng, op: OpRef| {
        if rng.chance(0.5) {
            StageSpec::Reduce(op)
        } else {
            StageSpec::AllReduce(op)
        }
    };
    case.stages = match rule {
        Rule::Sr2Reduction => vec![StageSpec::Scan(ot), tail(rng, op)],
        Rule::SrReduction => vec![StageSpec::Scan(ot), tail(rng, op)],
        Rule::Ss2Scan | Rule::SsScan => vec![StageSpec::Scan(ot), StageSpec::Scan(op)],
        Rule::BsComcast => vec![StageSpec::Bcast, StageSpec::Scan(op)],
        Rule::Bss2Comcast | Rule::BssComcast => {
            vec![StageSpec::Bcast, StageSpec::Scan(ot), StageSpec::Scan(op)]
        }
        Rule::BrLocal => vec![StageSpec::Bcast, StageSpec::Reduce(op)],
        Rule::Bsr2Local | Rule::BsrLocal => {
            vec![StageSpec::Bcast, StageSpec::Scan(ot), StageSpec::Reduce(op)]
        }
        Rule::CrAlllocal => vec![StageSpec::Bcast, StageSpec::AllReduce(op)],
    };

    append_suffix(case, rule, rng);

    // Occasionally pre-apply a matching rule so the case starts from a
    // fused form (Comcast / balanced / IterLocal stages reach oracle 2).
    if rng.chance(0.3) {
        let base = case.base_program();
        let mut matches = Vec::new();
        for at in 0..base.len() {
            for r in Rule::ALL {
                if rules::try_match(r, &base.stages()[at..]).is_some() {
                    matches.push((r, at));
                }
            }
        }
        if !matches.is_empty() {
            case.fuse = Some(matches[rng.range_usize(0, matches.len())]);
        }
    }
}

/// Random extra stages *after* the targeted window. Suffix-only keeps the
/// window at position 0 where the targeted rule matches first; a scan is
/// never appended directly after a BS-Comcast window (it would extend the
/// match into a higher-priority BSS window).
fn append_suffix(case: &mut CaseSpec, rule: Rule, rng: &mut Rng) {
    let extra_op = |case: &CaseSpec, rng: &mut Rng| -> OpRef {
        match case.domain {
            // Reuse a case table (they are associative by construction).
            CaseDomain::Table => OpRef::Table(rng.range_usize(0, case.tables.len())),
            // `mul` excluded: stacked products overflow i64 in long runs.
            CaseDomain::Int => OpRef::Builtin(["add", "max", "min"][rng.range_usize(0, 3)]),
            _ => OpRef::Builtin(if rng.chance(0.5) { "and" } else { "or" }),
        }
    };
    for i in 0..rng.range_usize(0, 4) {
        let roll = rng.range_usize(0, 10);
        let stage = match roll {
            0..=1 => StageSpec::MapId,
            2..=3 => StageSpec::Bcast,
            4..=5 => {
                if i == 0 && rule == Rule::BsComcast {
                    StageSpec::MapId
                } else {
                    StageSpec::Scan(extra_op(case, rng))
                }
            }
            6 => StageSpec::Reduce(extra_op(case, rng)),
            7 => StageSpec::AllReduce(extra_op(case, rng)),
            _ => {
                // Terminal gather forms; nothing may follow a shape change.
                case.stages.push(if rng.chance(0.5) {
                    StageSpec::Gather
                } else {
                    StageSpec::AllGather
                });
                if rng.chance(0.5) {
                    case.stages.push(StageSpec::Scatter);
                }
                return;
            }
        };
        case.stages.push(stage);
    }
}

/// Pick an honest `(⊗, ⊕)` pair with `⊗` distributing over `⊕`: random
/// search first, then a known structured pair.
fn honest_distributive_pair(rng: &mut Rng) -> (TableSpec, TableSpec) {
    for _ in 0..20 {
        let t0 = random_table(rng);
        let t1 = random_table(rng);
        if t0.is_associative() && t1.is_associative() && t0.distributes_over(&t1) {
            return declare_pair(t0, t1);
        }
    }
    let (a, b) = match rng.range_usize(0, 3) {
        0 => (structured(3), structured(2)), // (a*b)%N over (a+b)%N
        1 => (structured(0), structured(1)), // min over max
        _ => (structured(1), structured(0)), // max over min
    };
    declare_pair(a, b)
}

fn declare_pair(mut t0: TableSpec, mut t1: TableSpec) -> (TableSpec, TableSpec) {
    t0.declare_commutative = t0.is_commutative();
    t0.declare_distributes_over = Some(1);
    t1.declare_commutative = t1.is_commutative();
    (t0, t1)
}

fn fill_over_claim(case: &mut CaseSpec, lie: LieKind, rng: &mut Rng) {
    case.domain = CaseDomain::Table;
    match lie {
        LieKind::Associativity => {
            // A non-associative table; `BinOp::new` still (falsely)
            // declares associativity. Use windows whose side condition
            // needs associativity only, so that is the single lie.
            let t = sample_table(rng, |t| !t.is_associative(), 5);
            case.tables = vec![t];
            let op = OpRef::Table(0);
            case.stages = match rng.range_usize(0, 3) {
                0 => vec![StageSpec::Bcast, StageSpec::Scan(op)],
                1 => vec![StageSpec::Bcast, StageSpec::Reduce(op)],
                _ => vec![StageSpec::Bcast, StageSpec::AllReduce(op)],
            };
        }
        LieKind::Commutativity => {
            let mut t = sample_table(rng, |t| t.is_associative() && !t.is_commutative(), 4);
            t.declare_commutative = true; // the lie
            case.tables = vec![t];
            let op = OpRef::Table(0);
            case.stages = match rng.range_usize(0, 4) {
                0 => vec![StageSpec::Scan(op.clone()), StageSpec::Reduce(op)],
                1 => vec![StageSpec::Scan(op.clone()), StageSpec::AllReduce(op)],
                2 => vec![StageSpec::Scan(op.clone()), StageSpec::Scan(op)],
                _ => vec![
                    StageSpec::Bcast,
                    StageSpec::Scan(op.clone()),
                    StageSpec::Reduce(op),
                ],
            };
        }
        LieKind::Distributivity => {
            // Sample the pair jointly: for some ⊕ almost every table
            // distributes, so a fixed fallback ⊗ is only safe for a
            // fixed ⊕ (projection does NOT distribute over mod-N add).
            let mut found = None;
            for _ in 0..100 {
                let t1 = random_table(rng);
                let t0 = random_table(rng);
                if t0.is_associative() && t1.is_associative() && !t0.distributes_over(&t1) {
                    found = Some((t0, t1));
                    break;
                }
            }
            let (mut t0, mut t1) = found.unwrap_or_else(|| (structured(4), structured(2)));
            t0.declare_distributes_over = Some(1); // the lie
            t0.declare_commutative = t0.is_commutative();
            t1.declare_commutative = t1.is_commutative();
            case.tables = vec![t0, t1];
            let (ot, op) = (OpRef::Table(0), OpRef::Table(1));
            case.stages = match rng.range_usize(0, 4) {
                0 => vec![StageSpec::Scan(ot), StageSpec::Reduce(op)],
                1 => vec![StageSpec::Scan(ot), StageSpec::AllReduce(op)],
                2 => vec![StageSpec::Scan(ot), StageSpec::Scan(op)],
                _ => vec![StageSpec::Bcast, StageSpec::Scan(ot), StageSpec::Scan(op)],
            };
        }
    }
}

fn fill_under_claim(case: &mut CaseSpec, rng: &mut Rng) {
    case.domain = CaseDomain::Table;
    // Associative AND commutative, but commutativity left undeclared: the
    // engine must miss the fusion and the auditor/linter must say why.
    let t = sample_table(rng, |t| t.is_associative() && t.is_commutative(), 0);
    case.tables = vec![t];
    let op = OpRef::Table(0);
    case.stages = if rng.chance(0.5) {
        vec![StageSpec::Scan(op.clone()), StageSpec::AllReduce(op)]
    } else {
        vec![StageSpec::Scan(op.clone()), StageSpec::Scan(op)]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_tables_have_expected_algebra() {
        assert!(structured(0).is_associative() && structured(0).is_commutative());
        assert!(structured(4).is_associative() && !structured(4).is_commutative());
        assert!(!structured(5).is_associative() && !structured(5).is_commutative());
        assert!(structured(3).distributes_over(&structured(2)));
        assert!(structured(0).distributes_over(&structured(1)));
        // The distributivity-lie fallback pair must genuinely not
        // distribute: projection over mod-N addition.
        assert!(!structured(4).distributes_over(&structured(2)));
    }

    #[test]
    fn specs_round_trip_through_render_and_parse() {
        let cfg = GenConfig::default();
        for seed in 0..400 {
            let case = generate_case(seed, &cfg);
            let spec = case.render();
            let back =
                CaseSpec::parse(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}\nspec: {spec}"));
            assert_eq!(back.render(), spec, "seed {seed}");
            assert_eq!(back, case, "seed {seed}");
        }
    }

    #[test]
    fn mode_schedule_covers_every_rule_and_lie_kind() {
        let mut rules_seen = std::collections::BTreeSet::new();
        let mut lies_seen = std::collections::BTreeSet::new();
        let mut under = 0;
        for seed in 1000..1110 {
            match case_mode(seed) {
                CaseMode::HonestRule(r) => {
                    rules_seen.insert(r.name());
                }
                CaseMode::OverClaim(k) => {
                    lies_seen.insert(format!("{k:?}"));
                }
                CaseMode::UnderClaim => under += 1,
                CaseMode::PolyEval => {}
            }
        }
        assert_eq!(rules_seen.len(), 11, "{rules_seen:?}");
        assert_eq!(lies_seen.len(), 3, "{lies_seen:?}");
        assert!(under > 0);
    }

    #[test]
    fn over_claim_cases_plant_exactly_the_advertised_lie() {
        let cfg = GenConfig::default();
        let mut seen = 0;
        for seed in 0..400 {
            if let CaseMode::OverClaim(kind) = case_mode(seed) {
                let case = generate_case(seed, &cfg);
                let over = case.over_claims();
                assert!(!over.is_empty(), "seed {seed} planted nothing");
                let expect = match kind {
                    LieKind::Associativity => "associativity",
                    LieKind::Commutativity => "commutativity",
                    LieKind::Distributivity => "distributes over",
                };
                assert!(
                    over.iter().any(|c| c.law.contains(expect)),
                    "seed {seed}: {over:?} lacks {expect}"
                );
                seen += 1;
            }
        }
        assert!(seen >= 50);
    }

    #[test]
    fn under_claim_cases_withhold_a_true_law() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            if case_mode(seed) == CaseMode::UnderClaim {
                let case = generate_case(seed, &cfg);
                assert!(case.over_claims().is_empty());
                assert!(case
                    .under_claims()
                    .iter()
                    .any(|c| c.law.starts_with("commutativity")));
            }
        }
    }

    #[test]
    fn generated_programs_build_and_inputs_fit() {
        let cfg = GenConfig::default();
        for seed in 0..300 {
            let case = generate_case(seed, &cfg);
            let prog = case.program();
            assert!(!prog.is_empty());
            assert_eq!(case.inputs().len(), case.p);
        }
    }

    #[test]
    fn table_laws_survive_integer_wrapping() {
        // The rem_euclid wrapper must make laws on ℤ match the domain
        // truth exactly — spot-check with out-of-domain probe values.
        let t = structured(0); // min: associative + commutative
        let op = t.binop(0);
        let probes: Vec<Value> = [-7i64, -2, 0, 1, 5, 11].map(Value::Int).to_vec();
        assert!(op.check_associative(&probes));
        assert!(op.check_commutative(&probes));
        let bad = structured(5); // (a-b) mod N: neither law
        let op = bad.binop(0);
        assert!(!op.check_associative(&probes));
        assert!(!op.check_commutative(&probes));
    }
}
