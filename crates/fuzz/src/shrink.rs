//! Greedy case minimization.
//!
//! [`shrink`] repeatedly proposes structurally smaller variants of a
//! failing [`CaseSpec`] — drop the fuse annotation, delete a stage, strip
//! the fault plan element by element, lower `p` and `m`, fall back to the
//! Legacy engine, zero table cells, drop orphaned tables — and keeps any
//! variant on which the caller's predicate still fails. Restarting from
//! the first candidate class after every acceptance makes the result a
//! local minimum: no single remaining simplification preserves the
//! failure.

use collopt_machine::{ExecEngine, FaultPlan};

use crate::gen::CaseSpec;

/// Hard cap on accepted shrink steps — a backstop against a pathological
/// predicate, far above what any real case needs.
const MAX_ACCEPTS: usize = 1000;

/// Minimize `case` while `still_fails` holds. The predicate receives
/// structurally *valid* candidates only (see [`CaseSpec::validate`]); the
/// input case is returned unchanged if nothing smaller still fails.
pub fn shrink(case: &CaseSpec, still_fails: &dyn Fn(&CaseSpec) -> bool) -> CaseSpec {
    let mut current = case.clone();
    let mut accepts = 0;
    'restart: while accepts < MAX_ACCEPTS {
        for candidate in candidates(&current) {
            if candidate.validate().is_ok() && still_fails(&candidate) {
                current = candidate;
                accepts += 1;
                continue 'restart;
            }
        }
        break;
    }
    current
}

/// All one-step simplifications of `case`, smallest-impact classes first.
fn candidates(case: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();

    // 1. Drop the pre-applied fusion.
    if case.fuse.is_some() {
        let mut c = case.clone();
        c.fuse = None;
        out.push(c);
    }

    // 2. Remove each stage (dropping any table that loses its last
    //    reference, trailing-first so indices stay stable).
    for i in 0..case.stages.len() {
        let mut c = case.clone();
        c.stages.remove(i);
        c.fuse = None; // stage indices shifted; the fuse no longer applies
        drop_orphan_tables(&mut c);
        out.push(c);
    }

    // 3. Simplify the fault plan: all-at-once, then element-wise.
    if case.plan.is_some() {
        let mut c = case.clone();
        c.plan = None;
        out.push(c);
        out.extend(plan_reductions(case));
    }

    // 4. Shrink the machine and the block.
    if case.p > 2 {
        for p in [2, case.p - 1] {
            let mut c = case.clone();
            c.p = p;
            if let Some(plan) = &mut c.plan {
                clamp_plan(plan, p);
            }
            out.push(c);
            if case.p - 1 == 2 {
                break;
            }
        }
    }
    if case.m > 1 {
        for m in [1, case.m - 1] {
            let mut c = case.clone();
            c.m = m;
            out.push(c);
            if case.m - 1 == 1 {
                break;
            }
        }
    }

    // 5. Canonical engine.
    if case.engine != ExecEngine::Legacy {
        let mut c = case.clone();
        c.engine = ExecEngine::Legacy;
        out.push(c);
    }

    // 6. Zero table cells one at a time (a table of zeros is the
    //    all-absorbing op — maximally boring).
    for (t, table) in case.tables.iter().enumerate() {
        for i in 0..16 {
            if table.cells[i] != 0 {
                let mut c = case.clone();
                c.tables[t].cells[i] = 0;
                out.push(c);
            }
        }
    }

    out
}

/// Remove trailing tables no stage references (leading tables cannot be
/// removed without renumbering every reference, so they stay).
fn drop_orphan_tables(case: &mut CaseSpec) {
    use crate::gen::{OpRef, StageSpec};
    loop {
        let last = case.tables.len().checked_sub(1);
        let Some(last) = last else { return };
        let referenced = case
            .stages
            .iter()
            .any(|s: &StageSpec| s.op_ref() == Some(&OpRef::Table(last)));
        if referenced {
            return;
        }
        case.tables.pop();
        for t in &mut case.tables {
            if t.declare_distributes_over == Some(last) {
                t.declare_distributes_over = None;
            }
        }
    }
}

/// Element-wise fault-plan reductions: drop one straggler, one slow link,
/// the drop model, one exact drop, the crash, in turn.
fn plan_reductions(case: &CaseSpec) -> Vec<CaseSpec> {
    let Some(plan) = &case.plan else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut with_plan = |edit: &dyn Fn(&mut FaultPlan)| {
        let mut c = case.clone();
        let p = c.plan.as_mut().expect("plan present");
        edit(p);
        if p.is_empty() {
            c.plan = None;
        }
        out.push(c);
    };
    for i in 0..plan.compute.len() {
        with_plan(&|p| {
            p.compute.remove(i);
        });
    }
    for i in 0..plan.links.len() {
        with_plan(&|p| {
            p.links.remove(i);
        });
    }
    if plan.drop.is_some() {
        with_plan(&|p| p.drop = None);
    }
    for i in 0..plan.drop_exact.len() {
        with_plan(&|p| {
            p.drop_exact.remove(i);
        });
    }
    if plan.crash.is_some() {
        with_plan(&|p| p.crash = None);
    }
    out
}

/// Drop plan elements that name ranks outside a shrunken machine.
fn clamp_plan(plan: &mut FaultPlan, p: usize) {
    plan.compute.retain(|s| s.rank < p);
    plan.links.retain(|l| l.a < p && l.b < p);
    plan.drop_exact.retain(|d| d.from < p && d.to < p);
    if plan.crash.as_ref().is_some_and(|c| c.rank >= p) {
        plan.crash = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn shrink_is_identity_when_nothing_smaller_fails() {
        let case = generate_case(3, &GenConfig::default());
        let out = shrink(&case, &|_| false);
        assert_eq!(out.render(), case.render());
    }

    #[test]
    fn shrink_reaches_a_small_case_under_a_permissive_predicate() {
        // Predicate: "fails whenever the pipeline still has a scan". The
        // shrinker must strip everything else down to minimal p/m/plan.
        let cfg = GenConfig::default();
        let case = generate_case(40, &cfg); // honest mode, some suffix
        let has_scan = |c: &CaseSpec| {
            c.stages
                .iter()
                .any(|s| matches!(s, crate::gen::StageSpec::Scan(_)))
        };
        if !has_scan(&case) {
            return;
        }
        let out = shrink(&case, &has_scan);
        assert!(has_scan(&out));
        assert_eq!(out.p, 2);
        assert_eq!(out.m, 1);
        assert!(out.plan.is_none());
        assert!(out.fuse.is_none());
        assert_eq!(out.engine, ExecEngine::Legacy);
        assert!(out.stages.len() <= case.stages.len());
        assert!(out.validate().is_ok());
    }

    #[test]
    fn shrunk_cases_always_stay_valid() {
        let cfg = GenConfig::default();
        for seed in 0..40 {
            let case = generate_case(seed, &cfg);
            // Worst-case predicate: accept every valid candidate ever
            // proposed; the result must still round-trip.
            let out = shrink(&case, &|c| c.validate().is_ok());
            assert!(out.validate().is_ok(), "seed {seed}");
            let spec = out.render();
            assert_eq!(
                CaseSpec::parse(&spec).expect("round-trip").render(),
                spec,
                "seed {seed}"
            );
        }
    }
}
