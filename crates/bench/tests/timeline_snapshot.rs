//! `results/timeline.txt` is the committed output of `gen_timeline`.
//! This snapshot pins the ASCII run-time diagrams (Figure 1 / Figure 3)
//! byte for byte, so trace-layer changes (spans, causal links, stage
//! markers) can never silently reshape the rendered figures.

#[test]
fn timeline_report_matches_committed_snapshot() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/timeline.txt");
    let committed = std::fs::read_to_string(path).expect("results/timeline.txt is committed");
    assert_eq!(
        collopt_bench::timeline_report(),
        committed,
        "gen_timeline output drifted from results/timeline.txt; \
         re-run `cargo run -p collopt-bench --bin gen_timeline` and inspect the diff"
    );
}
