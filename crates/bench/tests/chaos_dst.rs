//! Deterministic simulation testing of the fault layer over the Table-1
//! rule programs.
//!
//! Each test sweeps one fault family ([`ChaosKind`]) over 64 seeds. For
//! every seed a machine size and a [`collopt_machine::FaultPlan`] are
//! derived deterministically, and *all eleven* rules run on both sides of
//! the rewrite (LHS and RHS) — so every collective the optimizer can emit
//! is exercised under faults. The oracle ([`collopt_bench::chaos`]):
//!
//! * non-lossy plans reproduce results bit-identically with the makespan
//!   inside the analytic delay envelope;
//! * lossy-but-recoverable plans reproduce results bit-identically with
//!   the overhead accounted exactly by the machine's retry counters;
//! * crash plans surface `MachineError::RankFailed` naming the planned
//!   victim (or complete bit-identically when the ordinal is never
//!   reached) — no hangs, no panics;
//! * every faulted run replays to the bit under the same `(seed, plan)`.
//!
//! Failures print reproducing `(seed, plan)` spec strings — feed them to
//! `collopt --faults "<plan>"` or `FaultPlan::parse`.

use collopt_bench::chaos::{sweep_parallel, ChaosKind};

/// Seeds per family: the issue's floor is 64.
const SEEDS: u64 = 64;
/// Largest machine size the per-seed derivation may pick.
const PMAX: usize = 9;
/// Words per block — small but non-scalar so bandwidth terms participate.
const M: usize = 4;

fn run(kind: ChaosKind) {
    let failures = sweep_parallel(kind, 0..SEEDS, PMAX, M);
    assert!(
        failures.is_empty(),
        "{} {} violations — each line reproduces with `collopt --faults`:\n{}",
        failures.len(),
        kind.label(),
        failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn delay_plans_stretch_time_but_never_results() {
    run(ChaosKind::Delay);
}

#[test]
fn lossy_plans_recover_bit_identically_with_exact_retry_accounting() {
    run(ChaosKind::Lossy);
}

#[test]
fn crash_plans_fail_cleanly_naming_the_victim() {
    run(ChaosKind::Crash);
}
