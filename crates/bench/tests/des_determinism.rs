//! DES determinism under faults (and without them): the discrete-event
//! engine's step order is a pure function of the simulated communication
//! structure, so the same `(seed, FaultPlan)` must produce byte-identical
//! Chrome traces, identical retry counters and identical makespan bits —
//! across repeated runs in one process, and regardless of how many sweep
//! workers drive independent simulations concurrently.

use collopt_bench::chaos::{random_plan, ChaosKind};
use collopt_bench::sweep_driver::par_map_with;
use collopt_bench::{rule_lhs, rule_rhs, varied_input};
use collopt_core::exec::{execute_faulted_traced, ExecConfig};
use collopt_core::rules::Rule;
use collopt_machine::{chrome_trace_json, ClockParams, ExecEngine, FaultPlan};

fn des_config() -> ExecConfig {
    ExecConfig {
        engine: Some(ExecEngine::Des),
        profile: true,
        ..ExecConfig::default()
    }
}

/// Everything observable about one faulted DES run, in comparable form.
fn observe(seed: u64, p: usize, kind: ChaosKind) -> (String, u64, u64, u64) {
    let rule = Rule::ALL[(seed as usize) % Rule::ALL.len()];
    let prog = if seed.is_multiple_of(2) {
        rule_lhs(rule)
    } else {
        rule_rhs(rule)
    };
    let inputs = varied_input(p, 4, seed);
    let plan: FaultPlan = random_plan(seed, p, kind);
    let run = execute_faulted_traced(
        &prog,
        &inputs,
        ClockParams::new(100.0, 2.0),
        des_config(),
        &plan,
    )
    .expect("recoverable plan must complete");
    (
        chrome_trace_json(&[("run", &run.trace)]),
        run.outcome.total_retries,
        run.outcome.total_retry_time.to_bits(),
        run.outcome.makespan.to_bits(),
    )
}

#[test]
fn repeated_des_runs_are_byte_identical() {
    for kind in [ChaosKind::Delay, ChaosKind::Lossy] {
        for seed in [3u64, 17, 40] {
            let p = 4 + (seed as usize) % 5;
            let first = observe(seed, p, kind);
            for round in 1..3 {
                let again = observe(seed, p, kind);
                assert_eq!(
                    first, again,
                    "seed={seed} kind={kind:?} diverged on repeat #{round}"
                );
            }
        }
    }
}

#[test]
fn des_results_do_not_depend_on_sweep_worker_count() {
    // The same batch of faulted simulations, swept serially and with four
    // concurrent workers: every per-job observable must match slot for
    // slot. (Each DES run is single-threaded and self-contained, so
    // worker scheduling has nothing to leak into the simulated clock.)
    let jobs: Vec<(u64, ChaosKind)> = (0..12u64)
        .map(|i| {
            (
                100 + i,
                if i % 2 == 0 {
                    ChaosKind::Delay
                } else {
                    ChaosKind::Lossy
                },
            )
        })
        .collect();
    let run_batch = |workers: usize| {
        par_map_with(jobs.clone(), workers, |(seed, kind)| {
            observe(seed, 5 + (seed as usize) % 4, kind)
        })
    };
    let serial = run_batch(1);
    let parallel = run_batch(4);
    assert_eq!(serial, parallel, "sweep worker count leaked into DES runs");
}

#[test]
fn des_crash_reporting_is_deterministic() {
    // Crash plans that certainly fire (crash after 0 or 1 sends): the
    // surfaced error — or, if a rank crashes after its last send, the
    // completed observables — must be the same, run after run.
    let mut crashed = 0;
    for seed in [5u64, 23, 31, 77] {
        let p = 6;
        let rule = Rule::ALL[(seed as usize) % Rule::ALL.len()];
        let prog = rule_lhs(rule);
        let inputs = varied_input(p, 4, seed);
        let plan = FaultPlan::new(seed).with_crash((seed as usize) % p, seed % 2);
        let outcomes: Vec<_> = (0..3)
            .map(|_| {
                execute_faulted_traced(
                    &prog,
                    &inputs,
                    ClockParams::new(100.0, 2.0),
                    des_config(),
                    &plan,
                )
                .map(|run| {
                    (
                        chrome_trace_json(&[("run", &run.trace)]),
                        run.outcome.makespan.to_bits(),
                    )
                })
            })
            .collect();
        if outcomes[0].is_err() {
            crashed += 1;
        }
        assert_eq!(outcomes[0], outcomes[1], "seed={seed}");
        assert_eq!(outcomes[1], outcomes[2], "seed={seed}");
    }
    assert!(crashed > 0, "no seed exercised the crash path");
}
