//! Large-`p` validation of the cost calculus on the discrete-event
//! engine.
//!
//! The closed forms in `collopt_cost::collectives` are verified against
//! the simulated machine at thread-feasible sizes by the collectives
//! crate. [`ExecEngine::Des`](collopt_machine::ExecEngine) removes the
//! thread ceiling, so here the same formulas are checked at machine
//! sizes the paper's asymptotic claims actually speak to — `p` up to
//! 10⁵ — across the reduction family: the butterfly, Rabenseifner's
//! reduce-scatter + allgather, the ring, and the binomial
//! reduce + broadcast fallback, plus the predicted butterfly/Rabenseifner
//! crossover at `allreduce_crossover_m`.

use collopt_collectives::{
    allreduce_async, allreduce_butterfly_async, allreduce_rabenseifner_async, allreduce_ring_async,
    Combine,
};
use collopt_cost::collectives::{
    allreduce_butterfly_cost, allreduce_rabenseifner_cost, allreduce_reduce_bcast_cost,
    allreduce_ring_cost,
};
use collopt_cost::params::MachineParams;
use collopt_cost::sweep::allreduce_crossover_m;
use collopt_machine::{ClockParams, Machine};

const TS: f64 = 100.0;
const TW: f64 = 2.0;

fn assert_close(tag: &str, measured: f64, predicted: f64, rel_tol: f64) {
    let err = (measured - predicted).abs() / predicted.abs().max(1.0);
    assert!(
        err <= rel_tol,
        "{tag}: measured {measured} vs predicted {predicted} (rel err {err:.2e} > {rel_tol:.0e})"
    );
}

/// Butterfly allreduce on a 2¹⁶-rank machine: every phase costs exactly
/// `ts + m(tw + c)`, so the measured makespan must reproduce eq. 16's
/// closed form to the last bit even at 65 536 ranks.
#[test]
fn butterfly_matches_closed_form_at_p_65536() {
    let p = 1usize << 16;
    let m_words = 4u64;
    let machine = Machine::new(p, ClockParams::new(TS, TW));
    let run = machine.run_des(move |ctx| {
        Box::pin(async move {
            let add = |a: &f64, b: &f64| a + b;
            let op = Combine::new(&add);
            allreduce_butterfly_async(ctx, ctx.rank() as f64, m_words, &op).await
        })
    });
    let expected: f64 = (0..p).map(|r| r as f64).sum();
    assert!(run.results.iter().all(|&v| v == expected), "wrong sum");
    let params = MachineParams::new(p, TS, TW);
    let predicted = allreduce_butterfly_cost(&params, m_words as f64, 1.0);
    assert_close("butterfly p=2^16", run.makespan, predicted, 1e-12);
}

/// Rabenseifner's allreduce at `p = 1024`, `m = 4096` (`p | m`, where
/// the halving/doubling volumes are exact): measured makespan equals
/// `2 log p·ts + m(1−1/p)(2tw + c)`.
#[test]
fn rabenseifner_matches_closed_form_at_p_1024() {
    let p = 1usize << 10;
    let m = 4096usize;
    let machine = Machine::new(p, ClockParams::new(TS, TW));
    let run = machine.run_des(move |ctx| {
        Box::pin(async move {
            let add = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            };
            let op = Combine::new(&add);
            let block = vec![1.0f64; m];
            allreduce_rabenseifner_async(ctx, block, 1, &op).await[0]
        })
    });
    assert!(run.results.iter().all(|&v| v == p as f64), "wrong sum");
    let params = MachineParams::new(p, TS, TW);
    let predicted = allreduce_rabenseifner_cost(&params, m as f64, 1.0);
    assert_close("rabenseifner p=1024", run.makespan, predicted, 1e-9);
}

/// Ring allreduce at `p = 512` with `p | m`: the `2(p−1)` half-duplex
/// steps of `m/p`-word segments match the closed form exactly.
#[test]
fn ring_matches_closed_form_at_p_512() {
    let p = 512usize;
    let m = 4 * p; // p | m: every segment is exactly m/p units
    let machine = Machine::new(p, ClockParams::new(TS, TW));
    let run = machine.run_des(move |ctx| {
        Box::pin(async move {
            let add = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            };
            let op = Combine::new(&add).assume_commutative();
            let block = vec![1.0f64; m];
            allreduce_ring_async(ctx, block, 1, &op).await[0]
        })
    });
    assert!(run.results.iter().all(|&v| v == p as f64), "wrong sum");
    let params = MachineParams::new(p, TS, TW);
    let predicted = allreduce_ring_cost(&params, m as f64, 1.0);
    assert_close("ring p=512", run.makespan, predicted, 1e-9);
}

/// The order-safe fallback (binomial reduce, then binomial broadcast) at
/// `p = 100 000` — a machine size no thread engine can host. The
/// binomial tree on a non-power-of-two `p` has a slightly shorter
/// critical path than the `⌈log₂ p⌉`-phase upper bound the calculus
/// charges, so the tolerance is a few percent rather than bits.
#[test]
fn reduce_bcast_fallback_matches_at_p_100_000() {
    let p = 100_000usize;
    let m_words = 8u64;
    let machine = Machine::new(p, ClockParams::new(TS, TW));
    let run = machine.run_des(move |ctx| {
        Box::pin(async move {
            let add = |a: &u64, b: &u64| a + b;
            let op = Combine::new(&add);
            allreduce_async(ctx, 1u64, m_words, &op).await
        })
    });
    assert!(run.results.iter().all(|&v| v == p as u64), "wrong sum");
    let params = MachineParams::new(p, TS, TW);
    let predicted = allreduce_reduce_bcast_cost(&params, m_words as f64, 1.0);
    assert!(
        run.makespan <= predicted,
        "calculus must upper-bound the machine: {} > {predicted}",
        run.makespan
    );
    assert_close("reduce+bcast p=1e5", run.makespan, predicted, 0.05);
}

/// The butterfly/Rabenseifner crossover predicted by
/// [`allreduce_crossover_m`] is real on the machine: at `p = 256` the
/// measured winner flips exactly as the model says when the block grows
/// across `m*`.
#[test]
fn crossover_prediction_holds_on_the_machine_at_p_256() {
    let p = 256usize;
    let params = MachineParams::new(p, TS, TW);
    let m_star = allreduce_crossover_m(&params, 1.0).expect("crossover exists at p=256");
    // Well below and well above the predicted crossover (the large side
    // chosen as a multiple of p so the segmenting volumes are exact).
    let m_small = (m_star / 4.0).max(1.0).round() as usize;
    let m_large = (4.0 * m_star / p as f64).ceil() as usize * p;

    let measure = |m: usize, use_rabenseifner: bool| -> f64 {
        let machine = Machine::new(p, ClockParams::new(TS, TW));
        machine
            .run_des(move |ctx| {
                Box::pin(async move {
                    let add = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
                        a.iter().zip(b).map(|(x, y)| x + y).collect()
                    };
                    let op = Combine::new(&add);
                    let block = vec![1.0f64; m];
                    if use_rabenseifner {
                        allreduce_rabenseifner_async(ctx, block, 1, &op).await[0]
                    } else {
                        allreduce_butterfly_async(ctx, block, m as u64, &op).await[0]
                    }
                })
            })
            .makespan
    };

    // Small block: start-up bound, the butterfly must win.
    assert!(
        measure(m_small, false) < measure(m_small, true),
        "butterfly should win below m* = {m_star} (m = {m_small})"
    );
    // Large block: bandwidth bound, Rabenseifner must win.
    assert!(
        measure(m_large, true) < measure(m_large, false),
        "rabenseifner should win above m* = {m_star} (m = {m_large})"
    );
}
