//! Differential identity: the pooled and discrete-event execution
//! engines must be *observationally indistinguishable* from the legacy
//! spawn-per-run engine — same outputs, bit-identical makespans, same
//! retry counters, byte-identical Chrome trace exports — across every
//! Table-1 rule, both sides of each rewrite, machine sizes 2..=9, with
//! and without fault plans, and under every collective-lowering variant.
//!
//! This is the license for making [`ExecEngine::Pooled`] the default
//! and for trusting [`ExecEngine::Des`] at machine sizes where the
//! thread engines cannot follow: the simulated clock travels with the
//! data, so neither OS scheduling (threads) nor event ordering (DES)
//! can leak into any observable of a run.

use collopt_bench::chaos::{random_plan, ChaosKind};
use collopt_bench::sweep_driver::par_map;
use collopt_bench::{rule_lhs, rule_rhs, varied_input};
use collopt_core::exec::{
    execute_faulted, execute_faulted_traced, execute_traced_with, ExecConfig, TracedExecOutcome,
};
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_machine::{chrome_trace_json, ClockParams, ExecEngine, FaultPlan};

fn engine_config(engine: ExecEngine) -> ExecConfig {
    ExecConfig {
        engine: Some(engine),
        profile: true,
        ..ExecConfig::default()
    }
}

/// Assert every observable of two runs matches to the bit, including the
/// serialized Chrome trace.
fn assert_identical(tag: &str, legacy: &TracedExecOutcome, pooled: &TracedExecOutcome) {
    assert_eq!(
        legacy.outcome.outputs, pooled.outcome.outputs,
        "{tag}: outputs"
    );
    assert_eq!(
        legacy.outcome.makespan.to_bits(),
        pooled.outcome.makespan.to_bits(),
        "{tag}: makespan {} vs {}",
        legacy.outcome.makespan,
        pooled.outcome.makespan
    );
    assert_eq!(
        legacy.outcome.total_compute.to_bits(),
        pooled.outcome.total_compute.to_bits(),
        "{tag}: compute totals"
    );
    assert_eq!(
        legacy.outcome.total_messages, pooled.outcome.total_messages,
        "{tag}: message counts"
    );
    assert_eq!(
        legacy.outcome.total_retries, pooled.outcome.total_retries,
        "{tag}: retry counters"
    );
    assert_eq!(
        legacy.outcome.total_retry_time.to_bits(),
        pooled.outcome.total_retry_time.to_bits(),
        "{tag}: retry time"
    );
    let a = chrome_trace_json(&[(tag, &legacy.trace)]);
    let b = chrome_trace_json(&[(tag, &pooled.trace)]);
    assert_eq!(a, b, "{tag}: Chrome trace exports differ");
}

fn run_traced(
    prog: &Program,
    inputs: &[Value],
    clock: ClockParams,
    plan: Option<&FaultPlan>,
    engine: ExecEngine,
) -> Result<TracedExecOutcome, collopt_machine::MachineError> {
    match plan {
        None => Ok(execute_traced_with(
            prog,
            inputs,
            clock,
            engine_config(engine),
        )),
        Some(plan) => execute_faulted_traced(prog, inputs, clock, engine_config(engine), plan),
    }
}

#[test]
fn pooled_engine_is_bit_identical_to_legacy_across_rules_sizes_and_plans() {
    // Every p gets an independent battery — fan the sizes across cores.
    par_map((2usize..=9).collect(), |p| {
        let clock = ClockParams::new(100.0, 2.0);
        let seed = 1000 + p as u64;
        let inputs = varied_input(p, 4, seed);
        // Recoverable plans only: traced comparison needs completed runs.
        let plans: Vec<Option<FaultPlan>> = vec![
            None,
            Some(random_plan(seed, p, ChaosKind::Delay)),
            Some(random_plan(seed, p, ChaosKind::Lossy)),
        ];
        for rule in collopt_core::rules::Rule::ALL {
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                for (i, plan) in plans.iter().enumerate() {
                    let tag = format!("{rule} {side} p={p} plan#{i}");
                    let legacy =
                        run_traced(&prog, &inputs, clock, plan.as_ref(), ExecEngine::Legacy)
                            .unwrap_or_else(|e| panic!("{tag} legacy: {e}"));
                    let pooled =
                        run_traced(&prog, &inputs, clock, plan.as_ref(), ExecEngine::Pooled)
                            .unwrap_or_else(|e| panic!("{tag} pooled: {e}"));
                    let des = run_traced(&prog, &inputs, clock, plan.as_ref(), ExecEngine::Des)
                        .unwrap_or_else(|e| panic!("{tag} des: {e}"));
                    assert_identical(&tag, &legacy, &pooled);
                    assert_identical(&format!("{tag} (des)"), &legacy, &des);
                }
            }
        }
    });
}

#[test]
fn engines_agree_on_crash_plan_errors() {
    // A crashed run must surface the *same* MachineError from both
    // engines — pooled teardown must not change failure reporting.
    for p in [2usize, 5, 9] {
        let clock = ClockParams::new(100.0, 2.0);
        let seed = 7 + p as u64;
        let inputs = varied_input(p, 4, seed);
        let plan = random_plan(seed, p, ChaosKind::Crash);
        for rule in collopt_core::rules::Rule::ALL {
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                let tag = format!("{rule} {side} p={p}");
                let legacy = execute_faulted(
                    &prog,
                    &inputs,
                    clock,
                    engine_config(ExecEngine::Legacy),
                    &plan,
                );
                for other in [ExecEngine::Pooled, ExecEngine::Des] {
                    let outcome =
                        execute_faulted(&prog, &inputs, clock, engine_config(other), &plan);
                    match (&legacy, &outcome) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a.outputs, b.outputs, "{tag} vs {}", other.name());
                            assert_eq!(
                                a.makespan.to_bits(),
                                b.makespan.to_bits(),
                                "{tag} vs {}",
                                other.name()
                            );
                        }
                        (Err(a), Err(b)) => {
                            assert_eq!(a, b, "{tag}: {} errors differ", other.name())
                        }
                        (a, b) => panic!(
                            "{tag}: {} disagrees on success: {a:?} vs {b:?}",
                            other.name()
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn generated_pipeline_batch_is_bit_identical_across_engines() {
    // A fixed-seed batch of 64 fuzz-generated pipelines — arbitrary stage
    // compositions, table operators, machine sizes, fault plans, and
    // pre-fused forms — through the same three-engine identity gate the
    // hand-enumerated rule batteries use above. Failures print the
    // case's spec string, replayable via `collopt fuzz --replay`.
    use collopt_fuzz::{generate_case, GenConfig};

    const BASE_SEED: u64 = 0xBA7C_4000;
    par_map((0..64u64).collect(), |i| {
        let case = generate_case(BASE_SEED + i, &GenConfig::default());
        let tag = format!("batch case {} [spec: {}]", BASE_SEED + i, case.render());
        let clock = ClockParams::new(100.0, 2.0);
        let prog = case.program();
        let inputs = case.inputs();
        let plan = case.plan.as_ref();
        if plan.is_none_or(FaultPlan::is_recoverable) {
            let legacy = run_traced(&prog, &inputs, clock, plan, ExecEngine::Legacy)
                .unwrap_or_else(|e| panic!("{tag} legacy: {e}"));
            let pooled = run_traced(&prog, &inputs, clock, plan, ExecEngine::Pooled)
                .unwrap_or_else(|e| panic!("{tag} pooled: {e}"));
            let des = run_traced(&prog, &inputs, clock, plan, ExecEngine::Des)
                .unwrap_or_else(|e| panic!("{tag} des: {e}"));
            assert_identical(&tag, &legacy, &pooled);
            assert_identical(&format!("{tag} (des)"), &legacy, &des);
        } else {
            // Crash plans: runs may abort, so compare Result-level outcomes.
            let plan = plan.unwrap();
            let legacy = execute_faulted(
                &prog,
                &inputs,
                clock,
                engine_config(ExecEngine::Legacy),
                plan,
            );
            for other in [ExecEngine::Pooled, ExecEngine::Des] {
                let outcome = execute_faulted(&prog, &inputs, clock, engine_config(other), plan);
                match (&legacy, &outcome) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.outputs, b.outputs, "{tag} vs {}", other.name());
                        assert_eq!(
                            a.makespan.to_bits(),
                            b.makespan.to_bits(),
                            "{tag} vs {}",
                            other.name()
                        );
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{tag}: {} errors differ", other.name())
                    }
                    (a, b) => panic!(
                        "{tag}: {} disagrees on success: {a:?} vs {b:?}",
                        other.name()
                    ),
                }
            }
        }
    });
}

#[test]
fn engines_agree_under_every_collective_lowering_variant() {
    // The adaptive lowering paths (cost-model-selected broadcast and
    // reduction algorithms) route through different collectives — the
    // engines must agree under each of the four lowering combinations.
    let p = 8;
    let clock = ClockParams::parsytec_like();
    let inputs = varied_input(p, 16, 99);
    for (adaptive_bcast, adaptive_reduction) in
        [(false, false), (true, false), (false, true), (true, true)]
    {
        for rule in collopt_core::rules::Rule::ALL {
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                let tag = format!(
                    "{rule} {side} adaptive_bcast={adaptive_bcast} \
                     adaptive_reduction={adaptive_reduction}"
                );
                let config = |engine| ExecConfig {
                    adaptive_bcast,
                    adaptive_reduction,
                    profile: true,
                    engine: Some(engine),
                };
                let legacy = execute_traced_with(&prog, &inputs, clock, config(ExecEngine::Legacy));
                let pooled = execute_traced_with(&prog, &inputs, clock, config(ExecEngine::Pooled));
                let des = execute_traced_with(&prog, &inputs, clock, config(ExecEngine::Des));
                assert_identical(&tag, &legacy, &pooled);
                assert_identical(&format!("{tag} (des)"), &legacy, &des);
            }
        }
    }
}
