//! Shared harness code for the benchmark suite.
//!
//! Everything the table/figure generator binaries and the Criterion
//! benches have in common lives here: the per-rule LHS/RHS program
//! builders, the three comcast implementations measured in Figures 7–8,
//! and workload generators.
//!
//! The Figures 7–8 workloads run the collectives *directly* on native
//! `Vec<i64>` blocks (no dynamic `Value` layer) so that wall-clock numbers
//! measure the algorithms, not interpretation overhead; the simulated
//! makespans come from the same runs' deterministic clocks.

pub mod chaos;
pub mod harness;
pub mod sweep_driver;

use collopt_collectives::{
    bcast_binomial, comcast_bcast_repeat, comcast_cost_optimal, scan_butterfly, Combine, RepeatOp,
};
use collopt_core::exec::execute_traced;
use collopt_core::op::lib as ops;
use collopt_core::rewrite::Rewriter;
use collopt_core::rules::{try_match, window_len, Rule};
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_machine::{ClockParams, Machine};

/// The paper's Parsytec-like machine constants used for all figure
/// regenerations (latency-dominated network; see DESIGN.md §2).
pub fn figure_clock() -> ClockParams {
    ClockParams::parsytec_like()
}

/// LHS program of each Table-1 rule, with unit-cost base operators.
pub fn rule_lhs(rule: Rule) -> Program {
    match rule {
        Rule::Sr2Reduction => Program::new().scan(ops::mul()).reduce(ops::add()),
        Rule::SrReduction => Program::new().scan(ops::add()).reduce(ops::add()),
        Rule::Ss2Scan => Program::new().scan(ops::mul()).scan(ops::add()),
        Rule::SsScan => Program::new().scan(ops::add()).scan(ops::add()),
        Rule::BsComcast => Program::new().bcast().scan(ops::add()),
        Rule::Bss2Comcast => Program::new().bcast().scan(ops::mul()).scan(ops::add()),
        Rule::BssComcast => Program::new().bcast().scan(ops::add()).scan(ops::add()),
        Rule::BrLocal => Program::new().bcast().reduce(ops::add()),
        Rule::Bsr2Local => Program::new().bcast().scan(ops::mul()).reduce(ops::add()),
        Rule::BsrLocal => Program::new().bcast().scan(ops::add()).reduce(ops::add()),
        Rule::CrAlllocal => Program::new().bcast().allreduce(ops::add()),
    }
}

/// RHS program of each rule (the rule applied at position 0).
pub fn rule_rhs(rule: Rule) -> Program {
    let l = rule_lhs(rule);
    let rw = try_match(rule, l.stages()).expect("rule conditions hold by construction");
    l.splice(0, window_len(rule), rw.stages)
}

/// Identical unit blocks of `m` words on `p` processors — the timing
/// workload (values kept at 1 to avoid overflow in scan(mul)).
pub fn block_input(p: usize, m: usize) -> Vec<Value> {
    (0..p)
        .map(|_| Value::list(vec![Value::Int(1); m]))
        .collect()
}

/// A deterministic pseudo-random block input for correctness-sensitive
/// benches (values small enough for scan(add) over 64 ranks).
pub fn varied_input(p: usize, m: usize, seed: u64) -> Vec<Value> {
    (0..p)
        .map(|i| {
            Value::list(
                (0..m)
                    .map(|j| {
                        let x = (seed ^ (i as u64 * 2654435761) ^ (j as u64 * 40503)) % 17;
                        Value::Int(x as i64 - 8)
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The paper's running Example program (map; scan(×); reduce(+); map;
/// bcast) on scalar blocks — the subject of the Figure 1/3 run-time
/// diagrams.
pub fn example_program() -> Program {
    Program::new()
        .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
        .scan(ops::mul())
        .reduce(ops::add())
        .map("g", 1.0, |v| Value::Int(v.as_int() * 2))
        .bcast()
}

/// Render the Figure 1 / Figure 3 run-time diagrams — the per-processor
/// activity of the Example program before and after rule SR2-Reduction —
/// from real machine traces. This is exactly what the `gen_timeline`
/// binary prints and what `results/timeline.txt` snapshots.
///
/// Legend: `>` send, `<` receive, `x` simultaneous exchange, `*` local
/// computation, `|` barrier. Columns are distinct simulated time points.
pub fn timeline_report() -> String {
    let p = 8;
    let example = example_program();
    let optimized = Rewriter::exhaustive().optimize(&example).program;

    let mut out = String::new();
    let mut makespans = Vec::new();
    for (name, prog) in [
        ("Example (original)", &example),
        ("Example after SR2-Reduction", &optimized),
    ] {
        let inputs: Vec<Value> = (0..p as i64).map(|i| Value::Int(i % 5 + 1)).collect();
        let run = execute_traced(prog, &inputs, ClockParams::parsytec_like());
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(&format!("program : {prog}\n"));
        out.push_str(&format!("makespan: {:.0} simulated units\n", run.makespan));
        out.push_str(&run.trace.ascii_timeline(p));
        out.push('\n');
        makespans.push(run.makespan);
    }
    out.push_str(&format!(
        "time saved by SR2-Reduction (Figure 3's shaded region): {:.0} units ({:.1}%)\n",
        makespans[0] - makespans[1],
        100.0 * (makespans[0] - makespans[1]) / makespans[0]
    ));
    assert!(makespans[1] < makespans[0]);
    out
}

/// Which of the three Figure-7/8 implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComcastImpl {
    /// The unoptimized left-hand side `bcast ; scan(+)`.
    BcastScan,
    /// The cost-optimal successive-doubling comcast (§3.4 alternative).
    CostOptimal,
    /// Broadcast followed by local `repeat` (Figure 6) — the winner.
    BcastRepeat,
}

impl ComcastImpl {
    /// All three curves in the paper's legend order.
    pub const ALL: [ComcastImpl; 3] = [
        ComcastImpl::BcastScan,
        ComcastImpl::CostOptimal,
        ComcastImpl::BcastRepeat,
    ];

    /// Legend label as printed in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ComcastImpl::BcastScan => "bcast;scan",
            ComcastImpl::CostOptimal => "comcast",
            ComcastImpl::BcastRepeat => "bcast;repeat",
        }
    }
}

/// State of the fused BS-Comcast repeat operator on native blocks:
/// `(t, u)` with both components `m` words long.
type PairBlock = (Vec<i64>, Vec<i64>);

fn pair_e(s: &PairBlock) -> PairBlock {
    (s.0.clone(), s.1.iter().map(|u| u + u).collect())
}

fn pair_o(s: &PairBlock) -> PairBlock {
    (
        s.0.iter().zip(&s.1).map(|(t, u)| t + u).collect(),
        s.1.iter().map(|u| u + u).collect(),
    )
}

fn inject(b: &[i64]) -> PairBlock {
    (b.to_vec(), b.to_vec())
}

fn project(s: &PairBlock) -> Vec<i64> {
    s.0.clone()
}

/// Run one of the three implementations of `bcast ; scan(+)` on `p`
/// processors with `m`-word blocks; returns (per-rank results, simulated
/// makespan). The block held by the root is `[1; m]`.
pub fn run_comcast(which: ComcastImpl, p: usize, m: usize, clock: ClockParams) -> (Vec<i64>, f64) {
    let machine = Machine::new(p, clock);
    let words = m as u64;
    let run = machine.run(move |ctx| {
        let seed: Option<Vec<i64>> = (ctx.rank() == 0).then(|| vec![1i64; m]);
        let out: Vec<i64> = match which {
            ComcastImpl::BcastScan => {
                let b = bcast_binomial(ctx, 0, seed, words);
                let add = |a: &Vec<i64>, b: &Vec<i64>| -> Vec<i64> {
                    a.iter().zip(b).map(|(x, y)| x + y).collect()
                };
                scan_butterfly(ctx, b, words, &Combine::new(&add))
            }
            ComcastImpl::CostOptimal => {
                let op = RepeatOp {
                    e: &pair_e,
                    o: &pair_o,
                    ops_e: 1.0,
                    ops_o: 2.0,
                };
                let inj = |b: &Vec<i64>| inject(b);
                comcast_cost_optimal(ctx, 0, seed, words, &inj, &project, &op, 2)
            }
            ComcastImpl::BcastRepeat => {
                let op = RepeatOp {
                    e: &pair_e,
                    o: &pair_o,
                    ops_e: 1.0,
                    ops_o: 2.0,
                };
                let inj = |b: &Vec<i64>| inject(b);
                comcast_bcast_repeat(ctx, 0, seed, words, &inj, &project, &op)
            }
        };
        // Fold to a checksum so the bench can assert correctness cheaply.
        out.first().copied().unwrap_or(0) * 1_000_000 + out.last().copied().unwrap_or(0)
    });
    (run.results, run.makespan)
}

/// Verify all three implementations agree (rank `k` ends with `(k+1)·1`).
pub fn check_comcast_agreement(p: usize, m: usize) {
    let clock = ClockParams::free();
    let expected: Vec<i64> = (0..p as i64)
        .map(|k| (k + 1) * 1_000_000 + (k + 1))
        .collect();
    for which in ComcastImpl::ALL {
        let (got, _) = run_comcast(which, p, m, clock);
        assert_eq!(got, expected, "{} at p={p} m={m}", which.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rules_have_buildable_sides() {
        for rule in Rule::ALL {
            let l = rule_lhs(rule);
            let r = rule_rhs(rule);
            assert!(r.collective_count() < l.collective_count(), "{rule}");
        }
    }

    #[test]
    fn comcast_implementations_agree() {
        for (p, m) in [(2usize, 1usize), (6, 4), (8, 16), (13, 3)] {
            check_comcast_agreement(p, m);
        }
    }

    #[test]
    fn curve_ordering_matches_the_paper() {
        // Figure 7/8: bcast;repeat < bcast;scan < comcast on the
        // latency-dominated preset with nontrivial blocks.
        let (_, t_scan) = run_comcast(ComcastImpl::BcastScan, 16, 256, figure_clock());
        let (_, t_opt) = run_comcast(ComcastImpl::CostOptimal, 16, 256, figure_clock());
        let (_, t_rep) = run_comcast(ComcastImpl::BcastRepeat, 16, 256, figure_clock());
        assert!(t_rep < t_scan, "{t_rep} < {t_scan}");
        assert!(t_scan < t_opt, "{t_scan} < {t_opt}");
    }

    #[test]
    fn varied_input_is_deterministic() {
        assert_eq!(varied_input(4, 8, 42), varied_input(4, 8, 42));
        assert_ne!(varied_input(4, 8, 42), varied_input(4, 8, 43));
    }
}
