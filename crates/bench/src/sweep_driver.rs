//! Run-level parallel sweep driver.
//!
//! Chaos sweeps, profile generation and the heavy property suites all
//! share one shape: a list of *independent* simulation points (seeds,
//! rules, parameter combinations), each of which runs a handful of
//! simulated-machine executions and yields a result that does not depend
//! on any other point. [`par_map`] fans such a list out across host
//! cores while keeping the output **deterministic**: the work list is
//! partitioned by index (point `i`'s result lands in slot `i` no matter
//! which worker ran it), every simulation is internally deterministic
//! (the simulated clock travels with the data), and the collected vector
//! is returned in input order. A parallel sweep therefore produces the
//! byte-identical result of the serial loop it replaces.
//!
//! Worker count comes from [`default_workers`]: the `SWEEP_WORKERS`
//! environment variable when set, else the host's available parallelism.
//! `SWEEP_WORKERS=1` forces the plain serial loop (no threads spawned),
//! which is also used automatically for trivial work lists.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for sweeps: `SWEEP_WORKERS` env override (minimum 1),
/// else the host's available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("SWEEP_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item, fanning out across up to
/// [`default_workers`] host threads; results come back in input order.
pub fn par_map<T, R>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    par_map_with(items, default_workers(), f)
}

/// [`par_map`] with an explicit worker count. `workers = 1` (or a work
/// list of at most one item) degenerates to the serial loop.
pub fn par_map_with<T, R>(items: Vec<T>, workers: usize, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Index-addressed cells: worker-agnostic slot assignment keeps the
    // output order (and therefore every downstream artifact) identical
    // to the serial loop's.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let item = work[i]
                    .lock()
                    .expect("work cell poisoned")
                    .take()
                    .expect("work item taken twice");
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_with(items, 4, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let work = |i: u64| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let items: Vec<u64> = (0..57).collect();
        let serial = par_map_with(items.clone(), 1, work);
        let parallel = par_map_with(items, 5, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item_lists_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(empty, 8, |x| x).is_empty());
        assert_eq!(par_map_with(vec![9], 8, |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map_with((0..16).collect::<Vec<_>>(), 4, |i| {
                if i == 7 {
                    panic!("bad point");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
