//! Deterministic chaos testing of the Table-1 rule programs.
//!
//! The differential oracle behind `tests/chaos_dst.rs` and the
//! `gen_chaos` binary: run every rule's LHS and RHS program twice — once
//! clean, once under a seeded [`FaultPlan`] — and check that the fault
//! layer keeps its contract:
//!
//! * **Delay plans** (stragglers, slow links) may only stretch time.
//!   Results, message counts and compute totals must be *bit-identical*
//!   to the clean run, and the faulty makespan must stay inside the
//!   analytic envelope `clean ≤ faulty ≤ Fmax·clean + Amax·M` where
//!   `Fmax` is the largest inflation factor, `Amax` the largest additive
//!   link delay and `M` the total message count.
//! * **Lossy plans** (dropped messages recovered by retry) must also
//!   reproduce results bit-identically; the extra time is accounted for
//!   *exactly* by the machine's retry-time counter, so the envelope
//!   gains precisely `total_retry_time`.
//! * **Crash plans** must surface a clean [`MachineError::RankFailed`]
//!   naming the crashed rank — never a hang, never a panic — unless the
//!   crash ordinal lies beyond the program's event count, in which case
//!   the run completes bit-identically.
//!
//! Every run is repeated to pin determinism: same `(seed, plan)` → same
//! outcome to the bit. Violations come back as [`ChaosFailure`] records
//! whose `plan` field is the [`FaultPlan::describe`] spec string — paste
//! it into `collopt --faults` to reproduce.

use collopt_core::exec::{execute, execute_faulted, execute_with, ExecConfig, ExecOutcome};
use collopt_core::rules::Rule;
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_machine::{ClockParams, FaultInjector, FaultPlan, MachineError, Rng};

use crate::{rule_lhs, rule_rhs, varied_input};

/// Which family of faults a generated plan draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Stragglers and slow links only — time stretches, nothing is lost.
    Delay,
    /// Message drops recovered by the ack/retry protocol, on top of
    /// delays.
    Lossy,
    /// One rank killed at a pseudo-random event ordinal.
    Crash,
}

impl ChaosKind {
    /// All three families, in sweep order.
    pub const ALL: [ChaosKind; 3] = [ChaosKind::Delay, ChaosKind::Lossy, ChaosKind::Crash];

    /// Short label for reports and file names.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosKind::Delay => "delay",
            ChaosKind::Lossy => "lossy",
            ChaosKind::Crash => "crash",
        }
    }
}

/// One violated invariant, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Sweep seed the plan was generated from.
    pub seed: u64,
    /// `FaultPlan::describe()` spec — feed to `collopt --faults` or
    /// `FaultPlan::parse` to replay.
    pub plan: String,
    /// Rule whose program tripped the invariant.
    pub rule: String,
    /// `"LHS"` or `"RHS"`.
    pub side: &'static str,
    /// Machine size of the failing run.
    pub p: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={} p={} {} {}: {} [plan: {}]",
            self.seed, self.p, self.rule, self.side, self.what, self.plan
        )
    }
}

/// Generate the deterministic fault plan for `(seed, p, kind)`.
///
/// The plan's own RNG seed is folded from the sweep seed so that drop
/// schedules differ between sweep points even when the structural
/// parameters coincide.
pub fn random_plan(seed: u64, p: usize, kind: ChaosKind) -> FaultPlan {
    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ kind.label().len() as u64);
    let mut plan = FaultPlan::new(seed);

    // Every family gets some timing skew: 1–2 stragglers, 0–2 slow links.
    for _ in 0..rng.range_usize(1, 3) {
        let rank = rng.range_usize(0, p);
        let factor = 1.0 + (rng.below(6) + 1) as f64 * 0.5;
        plan = plan.with_straggler(rank, factor);
    }
    for _ in 0..rng.range_usize(0, 3) {
        let a = rng.range_usize(0, p);
        let b = (a + rng.range_usize(1, p)) % p;
        let factor = 1.0 + rng.below(4) as f64 * 0.5;
        let add = rng.below(5) as f64 * 50.0;
        plan = plan.with_slow_link(a, b, factor, add);
    }

    match kind {
        ChaosKind::Delay => plan,
        ChaosKind::Lossy => {
            // Keep the consecutive-drop cap strictly below max_attempts so
            // every message is eventually delivered — these plans must be
            // *recoverable* by construction.
            let prob = 0.05 + rng.unit_f64() * 0.25;
            let burst = 1 + rng.below(2) as u32;
            plan = plan.with_drops(prob, burst).with_retry(burst + 3, 150.0);
            if rng.chance(0.5) {
                let from = rng.range_usize(0, p);
                let to = (from + rng.range_usize(1, p)) % p;
                plan = plan.with_drop_exact(from, to, rng.below(3), 1 + rng.below(2) as u32);
            }
            plan
        }
        ChaosKind::Crash => plan.with_crash(rng.range_usize(0, p), rng.below(40)),
    }
}

/// Clean and faulty runs of one program under one plan.
pub fn run_pair(
    prog: &Program,
    p: usize,
    m: usize,
    seed: u64,
    clock: ClockParams,
    plan: &FaultPlan,
) -> (ExecOutcome, Result<ExecOutcome, MachineError>) {
    run_pair_with(prog, p, m, seed, clock, plan, ExecConfig::default())
}

/// [`run_pair`] with explicit [`ExecConfig`] options — the throughput
/// benchmark uses this to pin runs to a specific execution engine.
#[allow(clippy::too_many_arguments)]
pub fn run_pair_with(
    prog: &Program,
    p: usize,
    m: usize,
    seed: u64,
    clock: ClockParams,
    plan: &FaultPlan,
    config: ExecConfig,
) -> (ExecOutcome, Result<ExecOutcome, MachineError>) {
    let inputs = varied_input(p, m, seed);
    let clean = execute_with(prog, &inputs, clock, config);
    let faulty = execute_faulted(prog, &inputs, clock, config, plan);
    (clean, faulty)
}

/// Makespan slack for float comparison: the envelope arithmetic combines
/// sums the machine performs in a different order.
fn eps(bound: f64) -> f64 {
    bound.abs() * 1e-9 + 1e-6
}

/// Worst-case multiplicative factor and additive delay any single event
/// can suffer under `plan` on a `p`-rank machine. Probes the injector's
/// compounded per-rank compute factor and per-link linear map directly.
/// Depends only on `(plan, p)` — `sweep_seed` computes it once per
/// seed and shares it across the whole rule battery.
pub fn worst_inflation(plan: &FaultPlan, p: usize) -> (f64, f64) {
    let arc = std::sync::Arc::new(plan.clone());
    let mut fmax = 1.0f64;
    let mut amax = 0.0f64;
    for rank in 0..p {
        let inj = FaultInjector::new(arc.clone(), rank, p);
        fmax = fmax.max(inj.compute_factor());
        for to in 0..p {
            if to == rank {
                continue;
            }
            let add = inj.inflate_link(rank, to, 0.0);
            let factor = inj.inflate_link(rank, to, 1.0) - add;
            fmax = fmax.max(factor);
            amax = amax.max(add);
        }
    }
    (fmax, amax)
}

/// Check every invariant of one `(rule, side, seed, plan)` point; returns
/// all violations (empty = pass).
#[allow(clippy::too_many_arguments)]
pub fn check_point(
    rule: Rule,
    side: &'static str,
    prog: &Program,
    p: usize,
    inputs: &[Value],
    seed: u64,
    clock: ClockParams,
    plan: &FaultPlan,
    worst: (f64, f64),
    kind: ChaosKind,
) -> Vec<ChaosFailure> {
    let mut failures = Vec::new();
    let fail = |what: String| ChaosFailure {
        seed,
        plan: plan.describe(),
        rule: rule.to_string(),
        side,
        p,
        what,
    };

    let clean = execute(prog, inputs, clock);
    let faulty = execute_faulted(prog, inputs, clock, ExecConfig::default(), plan);
    // Determinism first: the exact same point must replay to the bit.
    // Only the *faulted* run is repeated — the clean executor exercises
    // the same machinery minus the injector, so rerunning it here bought
    // nothing and cost a third of the whole sweep.
    let again = execute_faulted(prog, inputs, clock, ExecConfig::default(), plan);
    match (&faulty, &again) {
        (Ok(a), Ok(b)) => {
            if a.outputs != b.outputs || a.makespan.to_bits() != b.makespan.to_bits() {
                failures.push(fail(format!(
                    "non-deterministic replay: makespan {} vs {}",
                    a.makespan, b.makespan
                )));
            }
        }
        (Err(a), Err(b)) => {
            if a != b {
                failures.push(fail(format!("non-deterministic failure: {a} vs {b}")));
            }
        }
        _ => failures.push(fail("replay flipped between Ok and Err".into())),
    }

    match faulty {
        Err(e) => {
            let crashed = plan.crash.as_ref().map(|c| c.rank);
            match (kind, crashed) {
                (ChaosKind::Crash, Some(rank)) => {
                    if e != (MachineError::RankFailed { rank }) {
                        failures.push(fail(format!(
                            "expected RankFailed for rank {rank}, got: {e}"
                        )));
                    }
                }
                _ => failures.push(fail(format!("recoverable plan failed the run: {e}"))),
            }
        }
        Ok(faulty) => {
            if faulty.outputs != clean.outputs {
                failures.push(fail("results differ from the fault-free run".into()));
            }
            if faulty.total_messages != clean.total_messages {
                failures.push(fail(format!(
                    "message count changed: {} -> {}",
                    clean.total_messages, faulty.total_messages
                )));
            }
            if faulty.total_compute != clean.total_compute {
                failures.push(fail(format!(
                    "compute total changed: {} -> {}",
                    clean.total_compute, faulty.total_compute
                )));
            }
            if !plan.is_lossy() && faulty.total_retries != 0 {
                failures.push(fail(format!(
                    "non-lossy plan produced {} retries",
                    faulty.total_retries
                )));
            }
            if faulty.total_retries == 0 && faulty.total_retry_time != 0.0 {
                failures.push(fail("retry time without retries".into()));
            }

            // Makespan envelope: delays stretch, never shrink…
            if faulty.makespan < clean.makespan - eps(clean.makespan) {
                failures.push(fail(format!(
                    "faulty makespan {} below clean {}",
                    faulty.makespan, clean.makespan
                )));
            }
            // …and by no more than the analytic worst case plus the
            // machine's exact retry-time accounting. Multiple plan entries
            // on the same rank/link *compound*, so probe the injector's
            // actual linear map `cost -> F·cost + A` per rank and link
            // rather than trusting per-entry maxima.
            let (fmax, amax) = worst;
            let bound = fmax * clean.makespan
                + amax * clean.total_messages as f64
                + faulty.total_retry_time;
            if faulty.makespan > bound + eps(bound) {
                failures.push(fail(format!(
                    "faulty makespan {} exceeds envelope {bound} \
                     (clean {}, Fmax {fmax}, retry time {})",
                    faulty.makespan, clean.makespan, faulty.total_retry_time
                )));
            }
        }
    }
    failures
}

/// Everything [`check_point`] needs for one seed's full rule battery:
/// the machine size and plan are derived deterministically from the seed
/// alone, so seeds partition cleanly across sweep workers.
fn sweep_seed(kind: ChaosKind, seed: u64, pmax: usize, m: usize) -> Vec<ChaosFailure> {
    let clock = ClockParams::new(100.0, 2.0);
    let mut rng = Rng::new(seed);
    let p = rng.range_usize(2, pmax + 1);
    let plan = random_plan(seed, p, kind);
    let worst = worst_inflation(&plan, p);
    let inputs = varied_input(p, m, seed);
    let mut failures = Vec::new();
    for rule in Rule::ALL {
        for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
            failures.extend(check_point(
                rule, side, &prog, p, &inputs, seed, clock, &plan, worst, kind,
            ));
        }
    }
    failures
}

/// Sweep one fault family over `seeds` seeds: for each seed, a machine
/// size `p ∈ 2..=pmax` and plan are derived deterministically, then every
/// Table-1 rule's LHS *and* RHS run through [`check_point`]. Serial; see
/// [`sweep_parallel`] for the multi-core driver (identical output).
pub fn sweep(
    kind: ChaosKind,
    seeds: std::ops::Range<u64>,
    pmax: usize,
    m: usize,
) -> Vec<ChaosFailure> {
    let mut failures = Vec::new();
    for seed in seeds {
        failures.extend(sweep_seed(kind, seed, pmax, m));
    }
    failures
}

/// [`sweep`] fanned out across host cores by the run-level sweep driver:
/// each seed is one independent work item, results are collected in seed
/// order, and every simulation is internally deterministic — so the
/// returned failure list is byte-identical to the serial sweep's.
pub fn sweep_parallel(
    kind: ChaosKind,
    seeds: std::ops::Range<u64>,
    pmax: usize,
    m: usize,
) -> Vec<ChaosFailure> {
    crate::sweep_driver::par_map(seeds.collect(), |seed| sweep_seed(kind, seed, pmax, m))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_in_range() {
        for seed in 0..32 {
            for kind in ChaosKind::ALL {
                let p = 2 + (seed as usize % 8);
                let a = random_plan(seed, p, kind);
                let b = random_plan(seed, p, kind);
                assert_eq!(a.describe(), b.describe(), "seed {seed} {kind:?}");
                for s in &a.compute {
                    assert!(s.rank < p && s.factor >= 1.0);
                }
                for l in &a.links {
                    assert!(l.a < p && l.b < p && l.a != l.b, "{}", a.describe());
                }
                match kind {
                    ChaosKind::Delay => assert!(!a.is_lossy() && a.crash.is_none()),
                    ChaosKind::Lossy => {
                        assert!(a.is_lossy() && a.crash.is_none());
                        // Recoverable by construction: bursts stay below
                        // the retry budget.
                        let dp = a.drop.as_ref().unwrap();
                        assert!(dp.max_consecutive < a.retry.max_attempts);
                    }
                    ChaosKind::Crash => assert!(a.crash.as_ref().unwrap().rank < p),
                }
            }
        }
    }

    #[test]
    fn plans_round_trip_through_their_spec() {
        for seed in [0, 7, 41, 999] {
            for kind in ChaosKind::ALL {
                let plan = random_plan(seed, 6, kind);
                let parsed = FaultPlan::parse(&plan.describe()).expect("spec parses");
                assert_eq!(parsed.describe(), plan.describe());
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        for kind in ChaosKind::ALL {
            let serial = sweep(kind, 0..3, 5, 4);
            let parallel = sweep_parallel(kind, 0..3, 5, 4);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.to_string(), b.to_string());
            }
        }
    }

    #[test]
    fn tiny_sweep_is_clean() {
        for kind in ChaosKind::ALL {
            let failures = sweep(kind, 0..4, 5, 4);
            assert!(
                failures.is_empty(),
                "{}",
                failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
