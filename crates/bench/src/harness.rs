//! A minimal, dependency-free stand-in for the Criterion benchmark
//! harness.
//!
//! The workspace must build and run offline, so the benches cannot pull
//! the real `criterion` crate. This module implements the small API
//! subset the suite uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple timing loop: a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, reporting the median time per iteration (and derived
//! throughput when declared).
//!
//! [`bench_with_input`]: BenchmarkGroup::bench_with_input

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name and an
/// optional parameter string, formatted `function/parameter` like
/// Criterion's.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> BenchmarkId {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Declared per-iteration workload, used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle; owns global configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Close the group (cosmetic; matches Criterion's API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[f64]) {
        let label = format!("{}/{}", self.name, id.render());
        if samples.is_empty() {
            println!("  {label:<48} (no samples)");
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        let extra = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!("  {:>10}/s", format_bytes(bytes as f64 / (median * 1e-9)))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.3e} elem/s", n as f64 / (median * 1e-9))
            }
            None => String::new(),
        };
        println!(
            "  {label:<48} median {:>12}  [{} .. {}]{extra}",
            format_ns(median),
            format_ns(lo),
            format_ns(hi),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_bytes(bytes_per_s: f64) -> String {
    if bytes_per_s < 1e3 {
        format!("{bytes_per_s:.0} B")
    } else if bytes_per_s < 1e6 {
        format!("{:.1} KiB", bytes_per_s / 1024.0)
    } else if bytes_per_s < 1e9 {
        format!("{:.1} MiB", bytes_per_s / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bytes_per_s / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs the timing
/// loop.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples. The per-sample
    /// iteration count adapts so one sample takes at least ~1 ms,
    /// amortizing timer overhead for fast routines.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fill ~1 ms?
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < Duration::from_millis(1) && calib_iters < 1_000_000 {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_sample = calib_iters.max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples
                .push(dt.as_secs_f64() * 1e9 / per_sample as f64);
        }
    }
}

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub use std::hint::black_box;

/// Bundle benchmark functions into a runner, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Read an environment variable as a `u64`, falling back to `default`
/// when the variable is unset or does not parse.
///
/// Every generator binary takes its knobs from the environment
/// (`CHAOS_SEEDS`, `FUZZ_ITERS`, `SERVE_REQS`, …); this family of
/// helpers is the one place the unset/garbage-input policy lives.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// [`env_u64`] for `usize` knobs (budgets, repetition counts, sizes).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// [`env_u64`] for floating-point knobs (throughput floors, skew
/// fractions). Returns `default` rather than panicking on garbage so a
/// mistyped CI variable degrades to report-only instead of masking the
/// bench behind an unrelated crash.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// An optional gate floor: `None` when the variable is unset or empty
/// (report-only mode), `Some(x)` when it parses. A set-but-garbage value
/// panics — a CI gate that silently stops gating is worse than a loud
/// failure.
pub fn env_floor(name: &str) -> Option<f64> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    Some(
        trimmed
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a number, got '{trimmed}'")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_helpers_default_override_and_invalid() {
        // Unique variable names: tests run on parallel threads and the
        // environment is process-global.
        std::env::set_var("COLLOPT_TEST_ENV_U64", "42");
        assert_eq!(env_u64("COLLOPT_TEST_ENV_U64", 7), 42);
        assert_eq!(env_u64("COLLOPT_TEST_ENV_U64_UNSET", 7), 7);
        std::env::set_var("COLLOPT_TEST_ENV_U64_BAD", "not-a-number");
        assert_eq!(env_u64("COLLOPT_TEST_ENV_U64_BAD", 7), 7);

        std::env::set_var("COLLOPT_TEST_ENV_USIZE", " 99 ");
        assert_eq!(env_usize("COLLOPT_TEST_ENV_USIZE", 1), 99);
        assert_eq!(env_usize("COLLOPT_TEST_ENV_USIZE_UNSET", 3), 3);
        std::env::set_var("COLLOPT_TEST_ENV_USIZE_BAD", "-5");
        assert_eq!(env_usize("COLLOPT_TEST_ENV_USIZE_BAD", 3), 3);

        std::env::set_var("COLLOPT_TEST_ENV_F64", "2.5");
        assert_eq!(env_f64("COLLOPT_TEST_ENV_F64", 0.0), 2.5);
        assert_eq!(env_f64("COLLOPT_TEST_ENV_F64_UNSET", 1.5), 1.5);
        std::env::set_var("COLLOPT_TEST_ENV_F64_BAD", "fast");
        assert_eq!(env_f64("COLLOPT_TEST_ENV_F64_BAD", 1.5), 1.5);
    }

    #[test]
    fn env_floor_unset_and_empty_mean_no_gate() {
        assert_eq!(env_floor("COLLOPT_TEST_FLOOR_UNSET"), None);
        std::env::set_var("COLLOPT_TEST_FLOOR_EMPTY", "  ");
        assert_eq!(env_floor("COLLOPT_TEST_FLOOR_EMPTY"), None);
        std::env::set_var("COLLOPT_TEST_FLOOR_SET", "5.5");
        assert_eq!(env_floor("COLLOPT_TEST_FLOOR_SET"), Some(5.5));
    }

    #[test]
    #[should_panic(expected = "must be a number")]
    fn env_floor_garbage_panics() {
        std::env::set_var("COLLOPT_TEST_FLOOR_BAD", "quick");
        env_floor("COLLOPT_TEST_FLOOR_BAD");
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).render(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).render(), "32");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_selftest");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
