//! Equality-saturation scaling benchmark: extraction throughput and
//! e-graph growth on pipeline chains of increasing depth.
//!
//! Two chain families per depth `d` (2..=EGRAPH_DEPTH):
//!
//! * `scan-chain` — `d-1` scans of `add` followed by a `reduce(add)`:
//!   the worst case for ordering, every adjacent pair fuses and the
//!   search must pick which fusions to forgo;
//! * `mixed-chain` — a scan/map/bcast round-robin ending in
//!   `reduce(add)`: exercises the enabling normalizations and the
//!   broadcast rules alongside fusion.
//!
//! Every point saturates under an explicit node budget and the run
//! **gates** on two properties: the e-graph never exceeds its budget,
//! and the extracted program never costs more than the input. A
//! violation writes the failing pipeline specs to
//! `results/egraph_failures.json` and exits non-zero (CI uploads that
//! file as an artifact). Otherwise writes `results/BENCH_egraph.json`
//! with per-depth wall time, e-graph sizes, and saturations/second.
//!
//! Environment:
//!
//! * `EGRAPH_DEPTH` — deepest chain (default 12; nightly CI uses 12,
//!   the PR smoke job 8).
//! * `EGRAPH_BUDGET` — node budget per saturation (default 10000, the
//!   engine default).
//! * `EGRAPH_REPS` — timed repetitions per point (default 5).

use std::time::Instant;

use collopt_bench::harness::env_usize;
use collopt_core::egraph::{saturate_program, SaturateConfig, DEFAULT_NODE_BUDGET};
use collopt_core::op::lib as ops;
use collopt_core::rewrite::{program_cost, Rewriter};
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_cost::MachineParams;

fn scan_chain(depth: usize) -> Program {
    let mut prog = Program::new();
    for _ in 0..depth - 1 {
        prog = prog.scan(ops::add());
    }
    prog.reduce(ops::add())
}

fn mixed_chain(depth: usize) -> Program {
    let mut prog = Program::new();
    for i in 0..depth - 1 {
        prog = match i % 3 {
            0 => prog.scan(ops::add()),
            1 => prog.map(format!("f{i}"), 1.0, |v| Value::Int(v.as_int() + 1)),
            _ => prog.bcast(),
        };
    }
    prog.reduce(ops::add())
}

struct Point {
    family: &'static str,
    depth: usize,
    wall_s: f64,
    saturations_per_sec: f64,
    nodes: usize,
    classes: usize,
    rule_applications: usize,
    budget_exhausted: bool,
    greedy_cost: f64,
    optimal_cost: f64,
}

struct Failure {
    family: &'static str,
    depth: usize,
    program: String,
    reason: String,
}

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    let max_depth = env_usize("EGRAPH_DEPTH", 12);
    let budget = env_usize("EGRAPH_BUDGET", DEFAULT_NODE_BUDGET);
    let reps = env_usize("EGRAPH_REPS", 5).max(1);

    let params = MachineParams::new(64, 100.0, 2.0);
    let m = 8.0;
    let cfg = SaturateConfig::new(params, m).node_budget(budget);

    let mut points = Vec::new();
    let mut failures = Vec::new();

    println!("# e-graph saturation ladder (p=64, ts=100, tw=2, m={m}, budget={budget})");
    for depth in 2..=max_depth {
        for (family, prog) in [
            ("scan-chain", scan_chain(depth)),
            ("mixed-chain", mixed_chain(depth)),
        ] {
            // Warm-up run supplies the stats and the gated properties.
            let outcome = saturate_program(&prog, &cfg);
            let before = program_cost(&prog, &params, m);
            let after = program_cost(&outcome.result.program, &params, m);
            if outcome.stats.nodes > budget {
                failures.push(Failure {
                    family,
                    depth,
                    program: prog.to_string(),
                    reason: format!("{} nodes exceeds budget {budget}", outcome.stats.nodes),
                });
            }
            if after > before + 1e-9 {
                failures.push(Failure {
                    family,
                    depth,
                    program: prog.to_string(),
                    reason: format!("extraction worsened cost {before} -> {after}"),
                });
            }

            let greedy = Rewriter::cost_guided(params, m).optimize(&prog);
            let greedy_cost = program_cost(&greedy.program, &params, m);

            let start = Instant::now();
            for _ in 0..reps {
                let again = saturate_program(&prog, &cfg);
                assert_eq!(
                    again.result.program.to_string(),
                    outcome.result.program.to_string(),
                    "{family} depth {depth}: nondeterministic extraction"
                );
            }
            let wall_s = start.elapsed().as_secs_f64();
            let rate = reps as f64 / wall_s;
            println!(
                "  {family:>11} d={depth:>2}: {:>6} nodes {:>5} classes {:>6} firings \
                 {:>9.1} sat/s  greedy {greedy_cost:>8.0} optimal {after:>8.0}{}",
                outcome.stats.nodes,
                outcome.stats.classes,
                outcome.stats.rule_applications,
                rate,
                if outcome.stats.budget_exhausted {
                    "  (budget hit)"
                } else {
                    ""
                }
            );
            points.push(Point {
                family,
                depth,
                wall_s,
                saturations_per_sec: rate,
                nodes: outcome.stats.nodes,
                classes: outcome.stats.classes,
                rule_applications: outcome.stats.rule_applications,
                budget_exhausted: outcome.stats.budget_exhausted,
                greedy_cost,
                optimal_cost: after,
            });
        }
    }

    if !failures.is_empty() {
        let body: Vec<String> = failures
            .iter()
            .map(|f| {
                format!(
                    r#"    {{
      "family": "{}",
      "depth": {},
      "program": "{}",
      "reason": "{}"
    }}"#,
                    f.family,
                    f.depth,
                    f.program.replace('"', "\\\""),
                    f.reason.replace('"', "\\\"")
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"egraph\",\n  \"failures\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write("results/egraph_failures.json", json)
            .expect("write results/egraph_failures.json");
        for f in &failures {
            eprintln!("FAIL: {} depth {}: {}", f.family, f.depth, f.reason);
        }
        eprintln!("# wrote results/egraph_failures.json");
        std::process::exit(1);
    }

    let body: Vec<String> = points
        .iter()
        .map(|pt| {
            format!(
                r#"    {{
      "family": "{}",
      "depth": {},
      "wall_s": {:.6},
      "saturations_per_sec": {:.1},
      "nodes": {},
      "classes": {},
      "rule_applications": {},
      "budget_exhausted": {},
      "greedy_cost": {:.1},
      "optimal_cost": {:.1}
    }}"#,
                pt.family,
                pt.depth,
                pt.wall_s,
                pt.saturations_per_sec,
                pt.nodes,
                pt.classes,
                pt.rule_applications,
                pt.budget_exhausted,
                pt.greedy_cost,
                pt.optimal_cost
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"egraph\",\n  \"p\": 64,\n  \"ts\": 100.0,\n  \"tw\": 2.0,\n  \
         \"m\": {m:.1},\n  \"node_budget\": {budget},\n  \"reps\": {reps},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write("results/BENCH_egraph.json", json).expect("write results/BENCH_egraph.json");
    println!("# wrote results/BENCH_egraph.json");
}
