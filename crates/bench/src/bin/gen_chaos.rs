//! Chaos sweep driver — the scalable version of `tests/chaos_dst.rs`.
//!
//! Sweeps all three fault families (delay, lossy, crash) over the
//! Table-1 rule programs (LHS and RHS of every rule) and checks the
//! differential oracle of [`collopt_bench::chaos`]. Scale with:
//!
//! * `CHAOS_SEEDS` — seeds per family (default 96; nightly CI uses 256)
//! * `CHAOS_PMAX`  — largest machine size drawn per seed (default 9;
//!   nightly CI uses 16)
//! * `CHAOS_M`     — words per block (default 4)
//!
//! Prints a per-family summary; on violation, every failing case is
//! printed with its reproducing `(seed, plan)` spec — paste the plan into
//! `collopt --faults "<plan>"` to replay — and the full list is written
//! to `results/chaos_failures.json` before exiting non-zero.
//!
//! Run with `cargo run --release -p collopt-bench --bin gen_chaos`.

use collopt_bench::chaos::{sweep_parallel, ChaosFailure, ChaosKind};
use collopt_bench::harness::env_u64;
use collopt_bench::sweep_driver::default_workers;

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn failures_json(failures: &[(ChaosKind, ChaosFailure)]) -> String {
    let mut out = String::from("[\n");
    for (i, (kind, f)) in failures.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"kind\": \"{}\", \"seed\": {}, \"p\": {}, \"rule\": \"{}\", \
             \"side\": \"{}\", \"plan\": \"{}\", \"what\": \"{}\"}}{}\n",
            kind.label(),
            f.seed,
            f.p,
            json_escape(&f.rule),
            f.side,
            json_escape(&f.plan),
            json_escape(&f.what),
            if i + 1 < failures.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let seeds = env_u64("CHAOS_SEEDS", 96);
    let pmax = env_u64("CHAOS_PMAX", 9) as usize;
    let m = env_u64("CHAOS_M", 4) as usize;
    assert!(pmax >= 2, "CHAOS_PMAX must be at least 2");

    let workers = default_workers();
    println!(
        "# chaos sweep: {seeds} seeds/family, p in 2..={pmax}, m={m}, {workers} sweep workers"
    );
    let started = std::time::Instant::now();
    let mut all: Vec<(ChaosKind, ChaosFailure)> = Vec::new();
    for kind in ChaosKind::ALL {
        let failures = sweep_parallel(kind, 0..seeds, pmax, m);
        // 11 rules x 2 sides per seed.
        println!(
            "  {:5}: {} runs, {} violations",
            kind.label(),
            seeds * 22,
            failures.len()
        );
        all.extend(failures.into_iter().map(|f| (kind, f)));
    }

    println!("# wall-clock: {:.2}s", started.elapsed().as_secs_f64());
    if all.is_empty() {
        println!("# all invariants held");
        return;
    }

    eprintln!(
        "# {} violations — each line reproduces with `collopt --faults`:",
        all.len()
    );
    for (kind, f) in &all {
        eprintln!("  [{}] {f}", kind.label());
    }
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/chaos_failures.json", failures_json(&all))
        .expect("write results/chaos_failures.json");
    eprintln!("# wrote results/chaos_failures.json");
    std::process::exit(1);
}
