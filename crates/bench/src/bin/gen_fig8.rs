//! Regenerates Figure 8: run time of the three `bcast;scan`
//! implementations versus block size on 64 processors.
//!
//! Reproduces the paper's qualitative result: all three curves grow
//! linearly in the block size; `bcast;repeat` stays lowest everywhere,
//! and the cost-optimal `comcast` is the most expensive (its auxiliary
//! tuple doubles every message).
//!
//! Run with `cargo run --release -p collopt-bench --bin gen_fig8`.

use collopt_bench::{check_comcast_agreement, figure_clock, run_comcast, ComcastImpl};

fn main() {
    let p = 64usize;
    let blocks = [1usize, 1000, 4000, 8000, 16_000, 24_000, 32_000];

    check_comcast_agreement(p, 16);

    println!("# Figure 8: run time vs block size on {p} processors");
    println!("# simulated time units, parsytec-like preset (ts=200, tw=2)");
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "m", "bcast;scan", "comcast", "bcast;repeat"
    );
    let mut prev: Option<Vec<f64>> = None;
    for &m in &blocks {
        let mut row = Vec::new();
        for which in ComcastImpl::ALL {
            let (_, t) = run_comcast(which, p, m, figure_clock());
            row.push(t);
        }
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>14.0}",
            m, row[0], row[1], row[2]
        );
        // bcast;repeat is the best implementation at every block size.
        assert!(
            row[2] < row[0] && row[2] < row[1],
            "bcast;repeat lowest at m={m}"
        );
        // The cost-optimal comcast loses to plain bcast;scan once the
        // auxiliary tuple dominates: per phase 2ts + 6m vs ts + 7m, i.e.
        // for m > ts (= 200 in this preset). Below that the extra
        // start-up of bcast;scan dominates instead.
        if m > 200 {
            assert!(
                row[0] < row[1],
                "comcast worst above the m = ts crossover (m={m})"
            );
        } else {
            assert!(
                row[1] < row[0],
                "comcast saves a start-up below the crossover (m={m})"
            );
        }
        if let Some(prev) = prev {
            for (a, b) in prev.iter().zip(&row) {
                assert!(b > a, "all curves grow with block size");
            }
        }
        prev = Some(row);
    }
    println!("# checks passed: bcast;repeat lowest everywhere;");
    println!("# comcast/bcast;scan cross at m = ts = 200 as the cost model predicts");
}
