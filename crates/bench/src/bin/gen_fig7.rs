//! Regenerates Figure 7: run time of the three `bcast;scan`
//! implementations versus processor count at fixed block size 32·10³.
//!
//! The paper measured MPICH on a 64-processor Parsytec; we run the same
//! three algorithms on the simulated machine with the Parsytec-like
//! `ts`/`tw` preset and report simulated time. Absolute values differ
//! from the paper's seconds; the *shape* — `comcast` worst, `bcast;scan`
//! middle, `bcast;repeat` best, all growing with `log p` — is the claim
//! under reproduction.
//!
//! Run with `cargo run --release -p collopt-bench --bin gen_fig7`.

use collopt_bench::{check_comcast_agreement, figure_clock, run_comcast, ComcastImpl};

fn main() {
    let m = 32_000usize;
    let procs = [2usize, 4, 8, 16, 24, 32, 48, 64];

    // Correctness gate before timing.
    check_comcast_agreement(8, 64);

    println!("# Figure 7: run time vs number of processors (block size {m})");
    println!("# simulated time units, parsytec-like preset (ts=200, tw=2)");
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "p", "bcast;scan", "comcast", "bcast;repeat"
    );
    for &p in &procs {
        let mut row = Vec::new();
        for which in ComcastImpl::ALL {
            let (_, t) = run_comcast(which, p, m, figure_clock());
            row.push(t);
        }
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>14.0}",
            p, row[0], row[1], row[2]
        );
        // The paper's orderings must hold at every point with p > 1.
        if p > 1 {
            assert!(
                row[2] < row[0],
                "bcast;repeat must beat bcast;scan at p={p}"
            );
            assert!(
                row[0] < row[1],
                "bcast;scan must beat cost-optimal comcast at p={p}"
            );
        }
    }
    println!("# ordering check passed: comcast > bcast;scan > bcast;repeat for all p");
}
