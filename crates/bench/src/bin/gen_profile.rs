//! Profiles the Table-1 rule programs before and after rewriting, plus
//! the Section-5 polynomial-evaluation case study, on the simulated
//! Parsytec-like machine.
//!
//! For every rule this writes `results/profile_<rule>.json` — a
//! Chrome-trace file with the LHS run as process 0 and the RHS run as
//! process 1, one thread lane per rank — openable at
//! <https://ui.perfetto.dev>. Alongside, it prints a per-stage busy/idle
//! summary and the critical-path attribution of each run.
//!
//! Every trace is cross-validated: the length of the trace-derived
//! critical path must equal the simulated clock's makespan *exactly*,
//! which pins the trace layer to the cost semantics.
//!
//! Run with `cargo run -p collopt-bench --bin gen_profile`.

use std::sync::Arc;

use collopt_bench::sweep_driver::par_map;
use collopt_bench::{block_input, figure_clock, rule_lhs, rule_rhs};
use collopt_core::exec::{execute_traced_with, ExecConfig, TracedExecOutcome};
use collopt_core::op::lib as ops;
use collopt_core::rules::Rule;
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_machine::{chrome_trace_json, ClockParams};

/// Machine size for all profiles.
const P: usize = 8;
/// Block size in words (large enough that bandwidth terms show up).
const M: usize = 64;

fn profiled(prog: &Program, inputs: &[Value], clock: ClockParams) -> TracedExecOutcome {
    let run = execute_traced_with(
        prog,
        inputs,
        clock,
        ExecConfig {
            profile: true,
            ..ExecConfig::default()
        },
    );
    let path = run.critical_path().expect("trace is causally complete");
    assert_eq!(
        path.length(),
        run.outcome.makespan,
        "critical path must reproduce the clock makespan exactly for {prog}"
    );
    run
}

fn summarize(side: &str, prog: &Program, run: &TracedExecOutcome) {
    let report = run.profile_report();
    let path = run.critical_path().expect("validated in profiled()");
    println!(
        "  {side} `{prog}`: makespan {:.0}, utilisation {:.1}%, \
         critical path {} steps / {} messages over {} ranks",
        run.outcome.makespan,
        100.0 * report.utilisation(),
        path.steps.len(),
        path.messages(),
        path.ranks_touched(),
    );
}

fn poly_eval_program(coeffs: Arc<Vec<f64>>) -> Program {
    Program::new()
        .bcast()
        .scan(ops::fmul())
        .map_indexed("mul_coeff", 1.0, move |rank, v| {
            let a = coeffs[rank];
            v.map_block(&|x| Value::Float(a * x.as_float()))
        })
        .reduce(ops::fadd())
}

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    let clock = figure_clock();
    let mut written = 0usize;

    // Profile the rules across host cores (each rule's LHS+RHS pair is an
    // independent simulation), then print and write in rule order so the
    // report and the golden files stay deterministic.
    let profiles = par_map(Rule::ALL.to_vec(), |rule| {
        let lhs = rule_lhs(rule);
        let rhs = rule_rhs(rule);
        let inputs = block_input(P, M);
        let before = profiled(&lhs, &inputs, clock);
        let after = profiled(&rhs, &inputs, clock);
        (rule, lhs, rhs, before, after)
    });
    for (rule, lhs, rhs, before, after) in profiles {
        println!("== {rule} (p={P}, m={M}) ==");
        summarize("LHS", &lhs, &before);
        summarize("RHS", &rhs, &after);

        let lhs_label = format!("{rule} LHS: {lhs}");
        let rhs_label = format!("{rule} RHS: {rhs}");
        let json = chrome_trace_json(&[
            (lhs_label.as_str(), &before.trace),
            (rhs_label.as_str(), &after.trace),
        ]);
        let file = format!("results/profile_{}.json", rule.name().to_lowercase());
        std::fs::write(&file, json).unwrap_or_else(|e| panic!("write {file}: {e}"));
        written += 1;
    }

    // The case study: PolyEval_1 vs the fully rewritten PolyEval_3.
    let coeffs: Arc<Vec<f64>> = Arc::new((0..P).map(|i| (i + 1) as f64).collect());
    let prog = poly_eval_program(coeffs);
    let optimized = collopt_core::rewrite::Rewriter::exhaustive()
        .optimize(&prog)
        .program;
    let ys: Vec<Value> = (0..P)
        .map(|r| {
            Value::list(if r == 0 {
                (0..M)
                    .map(|j| Value::Float(1.0 + j as f64 * 1e-3))
                    .collect()
            } else {
                vec![Value::Float(0.0); M]
            })
        })
        .collect();
    let before = profiled(&prog, &ys, clock);
    let after = profiled(&optimized, &ys, clock);
    println!("== PolyEval (p={P}, {M} points) ==");
    summarize("PolyEval_1", &prog, &before);
    summarize("PolyEval_3", &optimized, &after);
    println!("{}", before.profile_report().render());
    let json = chrome_trace_json(&[
        (format!("PolyEval_1: {prog}").as_str(), &before.trace),
        (format!("PolyEval_3: {optimized}").as_str(), &after.trace),
    ]);
    std::fs::write("results/profile_polyeval.json", json)
        .expect("write results/profile_polyeval.json");
    written += 1;

    println!("# wrote {written} Chrome traces under results/ (open at https://ui.perfetto.dev)");
}
