//! Static schedule-verifier throughput benchmark.
//!
//! Sweeps the full collective registry through the static verifier
//! (`collopt check`'s registry mode) over p ∈ 2..=64 at several block
//! sizes plus a large-p stress point, requiring every shipped lowering
//! to verify clean (no COL008/COL009/COL010 errors) and every
//! planted-bug lowering to be rejected with its expected code. Timing a
//! verifier whose verdicts are wrong would be worthless, so correctness
//! gates the measurement.
//!
//! Writes `results/BENCH_check.json` and prints a summary. Environment:
//!
//! * `CHECK_PMAX` — sweep upper bound for p (default 64).
//! * `CHECK_STRESS_P` — the large-p stress point (default 1024; the
//!   verifier is symbolic, so p is bounded by time, not threads).
//! * `COLLOPT_CHECK_FLOOR` — when set (e.g. `500.0`), exit non-zero
//!   unless the sweep sustains at least that many schedule
//!   verifications per second; unset = report only. CI sets this on the
//!   nightly job, not on PRs.

use std::time::Instant;

use collopt_analysis::schedule::{verify_planted, verify_registry};
use collopt_bench::harness::{env_floor, env_usize};

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    let pmax = env_usize("CHECK_PMAX", 64);
    let stress_p = env_usize("CHECK_STRESS_P", 1024);
    let blocks: [u64; 4] = [1, 32, 97, 4096];

    println!("# registry sweep: p in 2..={pmax}, m in {blocks:?}, plus stress p={stress_p} m=32");
    let mut verifications = 0u64;
    let mut messages = 0u64;
    let mut words = 0u64;
    let mut failures = Vec::new();
    let start = Instant::now();
    for p in 2..=pmax {
        for m in blocks {
            for report in verify_registry(p, m) {
                verifications += 1;
                messages += report.messages;
                words += report.words;
                if !report.ok() {
                    failures.push(format!("{} at p={p} m={m}", report.variant));
                }
            }
            for (report, expected) in verify_planted(p, m) {
                verifications += 1;
                messages += report.messages;
                if !report.diagnostics.iter().any(|d| d.code == expected) {
                    failures.push(format!(
                        "planted {} NOT rejected with {expected} at p={p} m={m}",
                        report.variant
                    ));
                }
            }
        }
    }
    let sweep_s = start.elapsed().as_secs_f64();
    assert!(
        failures.is_empty(),
        "verifier verdicts wrong, refusing to time them: {failures:?}"
    );

    // Large-p stress point: alltoall alone is Θ(p²) symbolic messages
    // here, so this times the abstract executor on a schedule far past
    // the thread engines' rank ceiling.
    let stress_start = Instant::now();
    let stress_reports = verify_registry(stress_p, 32);
    let stress_ok = stress_reports.iter().all(|r| r.ok());
    let stress_messages: u64 = stress_reports.iter().map(|r| r.messages).sum();
    let stress_s = stress_start.elapsed().as_secs_f64();
    assert!(stress_ok, "registry must verify clean at p={stress_p}");

    let per_sec = verifications as f64 / sweep_s;
    let msgs_per_sec = messages as f64 / sweep_s;
    println!(
        "== registry sweep ==\n  {verifications} verifications ({messages} symbolic messages, \
         {words} words) in {sweep_s:.3}s\n  {per_sec:.0} verifications/s, {msgs_per_sec:.0} \
         messages/s",
    );
    println!(
        "== stress point ==\n  p={stress_p}: {} lowerings, {stress_messages} symbolic messages \
         in {stress_s:.3}s",
        stress_reports.len()
    );

    let json = format!(
        r#"{{
  "bench": "check",
  "pmax": {pmax},
  "blocks": [1, 32, 97, 4096],
  "verifications": {verifications},
  "symbolic_messages": {messages},
  "symbolic_words": {words},
  "sweep_s": {sweep_s:.6},
  "verifications_per_sec": {per_sec:.1},
  "messages_per_sec": {msgs_per_sec:.1},
  "all_shipped_verified": true,
  "all_planted_rejected": true,
  "stress_p": {stress_p},
  "stress_lowerings": {},
  "stress_messages": {stress_messages},
  "stress_s": {stress_s:.6}
}}
"#,
        stress_reports.len(),
    );
    std::fs::write("results/BENCH_check.json", json).expect("write results/BENCH_check.json");
    println!("# wrote results/BENCH_check.json");

    if let Some(floor) = env_floor("COLLOPT_CHECK_FLOOR") {
        if per_sec < floor {
            eprintln!("FAIL: {per_sec:.0} verifications/s below floor {floor:.0}");
            std::process::exit(1);
        }
        println!("# check throughput floor {floor:.0}/s satisfied ({per_sec:.0}/s)");
    }
}
