//! Prints crossover tables and recommendation reports for representative
//! machines — the quantitative version of the paper's Section 4
//! discussion of when each rule pays off.
//!
//! Run with `cargo run -p collopt-bench --bin gen_crossovers`.

use collopt_cost::sweep::{recommend, render_crossovers};
use collopt_cost::MachineParams;

fn main() {
    for (name, ts, tw) in [
        ("parsytec-like (latency-bound)", 200.0, 2.0),
        ("low-latency (shared-memory-like)", 4.0, 0.5),
        ("high-bandwidth-cost (serial link)", 50.0, 10.0),
    ] {
        println!("== {name} ==");
        print!("{}", render_crossovers(ts, tw));
        println!();
    }

    println!("== recommendation report: parsytec-like, p = 64, m = 32 ==");
    let params = MachineParams::parsytec_like(64);
    println!(
        "{:<14} {:>9} {:>12} {:>9}",
        "rule", "improves", "saving", "fraction"
    );
    for rec in recommend(&params, 32.0) {
        println!(
            "{:<14} {:>9} {:>12.0} {:>8.1}%",
            rec.rule.name(),
            if rec.improves { "yes" } else { "no" },
            rec.saving,
            100.0 * rec.saving_fraction
        );
    }
}
