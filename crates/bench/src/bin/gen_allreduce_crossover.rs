//! Validates the allreduce cost model against the simulated machine and
//! emits `results/BENCH_allreduce.json`: for every `(p, m)` point of the
//! sweep, the algorithm `allreduce_auto` picked, the analytic makespan
//! of every candidate, the measured makespan, and the relative error —
//! which must stay within 10% (the models are exact when `p | m`; the
//! tolerance covers the ceil'd `log p` on non-powers of two).
//!
//! Run with `cargo run --release -p collopt-bench --bin gen_allreduce_crossover`.

use collopt_collectives::{
    allreduce_auto, allreduce_model_cost, choose_allreduce, AllreduceChoice, Combine,
};
use collopt_cost::sweep::allreduce_crossover_m;
use collopt_cost::MachineParams;
use collopt_machine::{ClockParams, Machine};
use std::sync::Arc;

type Block = Vec<i64>;

const CANDIDATES: [AllreduceChoice; 4] = [
    AllreduceChoice::Butterfly,
    AllreduceChoice::Rabenseifner,
    AllreduceChoice::Ring,
    AllreduceChoice::ReduceBcast,
];

fn measure(p: usize, m: usize, clock: ClockParams) -> f64 {
    let blocks: Arc<Vec<Block>> = Arc::new(
        (0..p)
            .map(|r| (0..m).map(|i| (r * 13 + i % 7) as i64).collect())
            .collect(),
    );
    let machine = Machine::new(p, clock);
    let run = machine.run(move |ctx| {
        let f = |a: &Block, b: &Block| -> Block { a.iter().zip(b).map(|(x, y)| x + y).collect() };
        let op = Combine::new(&f).assume_commutative();
        allreduce_auto(ctx, blocks[ctx.rank()].clone(), 1, &op)
    });
    run.makespan
}

fn main() {
    let clock = ClockParams::parsytec_like();
    let procs = [4usize, 5, 6, 8, 12, 16, 32];
    let mults = [1usize, 16, 64, 256, 2048];

    let mut rows = Vec::new();
    let mut worst: (f64, usize, usize) = (0.0, 0, 0);

    println!(
        "# allreduce algorithm selection: measured vs predicted (ts={}, tw={})",
        clock.ts, clock.tw
    );
    println!(
        "{:<4} {:>7} {:<14} {:>12} {:>12} {:>8}",
        "p", "m", "chosen", "predicted", "measured", "rel_err"
    );
    for &p in &procs {
        for &k in &mults {
            let m = p * k; // p | m keeps the closed forms exact
            let choice = choose_allreduce(p, m as u64, 1.0, true, &clock);
            let predicted = allreduce_model_cost(choice, p, m as u64, 1.0, &clock);
            let measured = measure(p, m, clock);
            let rel_err = (measured - predicted).abs() / predicted.max(1.0);
            if rel_err > worst.0 {
                worst = (rel_err, p, m);
            }
            assert!(
                rel_err <= 0.10,
                "model off by {:.1}% at p={p} m={m} ({})",
                100.0 * rel_err,
                choice.name()
            );
            println!(
                "{:<4} {:>7} {:<14} {:>12.0} {:>12.0} {:>7.2}%",
                p,
                m,
                choice.name(),
                predicted,
                measured,
                100.0 * rel_err
            );
            let models: Vec<String> = CANDIDATES
                .iter()
                .map(|&c| {
                    let cost = allreduce_model_cost(c, p, m as u64, 1.0, &clock);
                    let shown = if cost.is_finite() {
                        format!("{cost:.3}")
                    } else {
                        "null".to_string()
                    };
                    format!("\"{}\": {}", c.name(), shown)
                })
                .collect();
            rows.push(format!(
                "    {{\"p\": {p}, \"m\": {m}, \"chosen\": \"{}\", \"predicted\": {predicted:.3}, \
                 \"measured\": {measured:.3}, \"rel_err\": {rel_err:.5}, \"models\": {{{}}}}}",
                choice.name(),
                models.join(", ")
            ));
        }
    }

    // Analytic butterfly → Rabenseifner crossover block sizes (powers of
    // two only; elsewhere the butterfly is not a candidate).
    let mut crossovers = Vec::new();
    for &p in &procs {
        if !p.is_power_of_two() {
            continue;
        }
        let params = MachineParams::new(p, clock.ts, clock.tw);
        if let Some(mstar) = allreduce_crossover_m(&params, 1.0) {
            println!("# crossover at p={p}: m* = {mstar:.1} words");
            crossovers.push(format!("    {{\"p\": {p}, \"m_star\": {mstar:.3}}}"));
        }
    }
    println!(
        "# worst relative error {:.2}% (p={}, m={}) — within the 10% gate",
        100.0 * worst.0,
        worst.1,
        worst.2
    );

    let json = format!(
        "{{\n  \"machine\": {{\"ts\": {}, \"tw\": {}}},\n  \"ops_per_word\": 1.0,\n  \
         \"worst_rel_err\": {:.5},\n  \"crossovers\": [\n{}\n  ],\n  \"rows\": [\n{}\n  ]\n}}\n",
        clock.ts,
        clock.tw,
        worst.0,
        crossovers.join(",\n"),
        rows.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_allreduce.json", &json)
        .expect("write results/BENCH_allreduce.json");
    println!(
        "# wrote results/BENCH_allreduce.json ({} rows)",
        procs.len() * mults.len()
    );
}
