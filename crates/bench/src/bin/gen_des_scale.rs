//! Discrete-event engine scale benchmark: throughput against the pooled
//! thread engine at thread-feasible sizes, and machine sizes no thread
//! engine can host at all.
//!
//! Three suites:
//!
//! * `identity gate` — before any timing, re-prove on a reduced grid
//!   that a DES run is observationally indistinguishable from a pooled
//!   run (outputs, makespan bits, byte-identical Chrome traces). The
//!   full-strength 528-point version lives in
//!   `tests/engine_identity.rs`.
//! * `single_stage` — the same one-stage allreduce program repeated
//!   under the pooled engine and under DES; simulations per second of
//!   each. The DES engine runs `p` ranks on one thread with no
//!   park/unpark traffic, so it should beat the pool handily at small
//!   `p` — `COLLOPT_DES_FLOOR` turns that expectation into a gate.
//! * `scale ladder` — one allreduce at `p = 10³, 10⁴, 10⁵` (and up to
//!   10⁶ with `DES_SCALE_MAX_P`) under DES, with wall time and
//!   messages/second. The thread engines refuse these sizes with
//!   `CapacityExceeded`, which is also asserted here.
//!
//! Writes `results/BENCH_des.json` and prints a summary. Environment:
//!
//! * `DES_SCALE_REPS` — repetitions for the throughput suite
//!   (default 3000).
//! * `DES_SCALE_MAX_P` — largest ladder size (default 100000).
//! * `COLLOPT_DES_FLOOR` — when set (e.g. `2.0`), exit non-zero unless
//!   DES single-stage sims/sec reaches the floor times the pooled
//!   engine's; unset = report only. CI sets this on the nightly job.

use std::time::Instant;

use collopt_bench::harness::{env_floor, env_usize};
use collopt_bench::{rule_lhs, rule_rhs, varied_input};
use collopt_core::exec::{execute_traced_with, execute_with, ExecConfig};
use collopt_core::op::lib as ops;
use collopt_core::rules::Rule;
use collopt_core::term::Program;
use collopt_machine::{chrome_trace_json, ClockParams, ExecEngine, Machine, MachineError};

fn engine_config(engine: ExecEngine) -> ExecConfig {
    ExecConfig {
        engine: Some(engine),
        ..ExecConfig::default()
    }
}

/// Reduced identity gate: every observable of a DES run must match the
/// pooled run to the bit. Returns the number of compared points.
fn identity_gate() -> usize {
    let clock = ClockParams::new(100.0, 2.0);
    let mut points = 0usize;
    for p in 2..=9usize {
        let inputs = varied_input(p, 4, 900 + p as u64);
        for rule in Rule::ALL {
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                let tag = format!("{rule} {side} p={p}");
                let run = |engine| {
                    let config = ExecConfig {
                        engine: Some(engine),
                        profile: true,
                        ..ExecConfig::default()
                    };
                    execute_traced_with(&prog, &inputs, clock, config)
                };
                let pooled = run(ExecEngine::Pooled);
                let des = run(ExecEngine::Des);
                assert_eq!(pooled.outcome.outputs, des.outcome.outputs, "{tag}");
                assert_eq!(
                    pooled.outcome.makespan.to_bits(),
                    des.outcome.makespan.to_bits(),
                    "{tag}: makespans"
                );
                assert_eq!(
                    chrome_trace_json(&[(tag.as_str(), &pooled.trace)]),
                    chrome_trace_json(&[(tag.as_str(), &des.trace)]),
                    "{tag}: Chrome exports"
                );
                points += 1;
            }
        }
    }
    points
}

/// Time the one-stage allreduce `reps` times under one engine; returns
/// (seconds, simulations run).
fn single_stage(engine: ExecEngine, reps: usize) -> (f64, usize) {
    let prog = Program::new().allreduce(ops::add());
    let inputs = varied_input(8, 4, 42);
    let clock = ClockParams::new(100.0, 2.0);
    // Warm up (the first pooled run pays the pool construction).
    let want = execute_with(&prog, &inputs, clock, engine_config(engine));
    let start = Instant::now();
    for _ in 0..reps {
        let got = execute_with(&prog, &inputs, clock, engine_config(engine));
        assert_eq!(got.makespan.to_bits(), want.makespan.to_bits());
    }
    (start.elapsed().as_secs_f64(), reps)
}

struct ScalePoint {
    p: usize,
    wall_s: f64,
    makespan: f64,
    messages: u64,
    msgs_per_sec: f64,
}

/// One allreduce over the full machine at size `p` under DES.
fn scale_point(p: usize) -> ScalePoint {
    let prog = Program::new().allreduce(ops::add());
    let inputs = varied_input(p, 4, 7);
    let clock = ClockParams::new(100.0, 2.0);
    let start = Instant::now();
    let out = execute_with(&prog, &inputs, clock, engine_config(ExecEngine::Des));
    let wall_s = start.elapsed().as_secs_f64();
    ScalePoint {
        p,
        wall_s,
        makespan: out.makespan,
        messages: out.total_messages,
        msgs_per_sec: out.total_messages as f64 / wall_s,
    }
}

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    let reps = env_usize("DES_SCALE_REPS", 3000);
    let max_p = env_usize("DES_SCALE_MAX_P", 100_000);

    println!("# identity gate: des vs pooled engine");
    let identity_points = identity_gate();
    println!("#   {identity_points} points bit-identical (traces, makespans)");

    println!("# single-stage throughput: p=8 allreduce x{reps}");
    let (pooled_s, pooled_sims) = single_stage(ExecEngine::Pooled, reps);
    let (des_s, des_sims) = single_stage(ExecEngine::Des, reps);
    let pooled_rate = pooled_sims as f64 / pooled_s;
    let des_rate = des_sims as f64 / des_s;
    let speedup = des_rate / pooled_rate;
    println!(
        "  pooled: {pooled_s:>8.3}s for {pooled_sims} sims ({pooled_rate:>9.0} sims/s)\n  \
         des:    {des_s:>8.3}s for {des_sims} sims ({des_rate:>9.0} sims/s)\n  \
         single-stage throughput speedup {speedup:.2}x"
    );

    // The thread engines must refuse huge-p machines with a clean error,
    // not a spawn failure.
    let thread_max_p = ExecEngine::Pooled
        .max_p()
        .expect("thread engines have a rank ceiling");
    let refused = Machine::new(thread_max_p + 1, ClockParams::free())
        .with_engine(ExecEngine::Pooled)
        .try_run(|ctx| ctx.rank())
        .expect_err("over-capacity run must be refused");
    assert!(
        matches!(refused, MachineError::CapacityExceeded { .. }),
        "unexpected refusal: {refused}"
    );
    println!("# thread engines refuse p>{thread_max_p}: {refused}");

    let mut ladder = vec![1_000usize, 10_000, 100_000];
    ladder.retain(|&p| p <= max_p);
    if max_p > 100_000 {
        ladder.push(max_p);
    }
    let mut scale_json = Vec::new();
    println!("# scale ladder (des engine, single allreduce)");
    for &p in &ladder {
        let pt = scale_point(p);
        println!(
            "  p={:>8}: {:>8.3}s wall, makespan {:>12.0}, {:>9} msgs ({:>9.0} msgs/s)",
            pt.p, pt.wall_s, pt.makespan, pt.messages, pt.msgs_per_sec
        );
        scale_json.push(format!(
            r#"    {{
      "p": {},
      "wall_s": {:.6},
      "makespan": {:.1},
      "messages": {},
      "msgs_per_sec": {:.1}
    }}"#,
            pt.p, pt.wall_s, pt.makespan, pt.messages, pt.msgs_per_sec
        ));
    }

    let json = format!(
        r#"{{
  "bench": "des_scale",
  "identity_points": {},
  "identity_bit_identical": true,
  "thread_max_p": {},
  "single_stage": {{
    "p": 8,
    "reps": {},
    "pooled_s": {:.6},
    "pooled_sims_per_sec": {:.1},
    "des_s": {:.6},
    "des_sims_per_sec": {:.1},
    "des_vs_pooled_speedup": {:.3}
  }},
  "scale": [
{}
  ]
}}
"#,
        identity_points,
        thread_max_p,
        reps,
        pooled_s,
        pooled_rate,
        des_s,
        des_rate,
        speedup,
        scale_json.join(",\n"),
    );
    std::fs::write("results/BENCH_des.json", json).expect("write results/BENCH_des.json");
    println!("# wrote results/BENCH_des.json");

    if let Some(floor) = env_floor("COLLOPT_DES_FLOOR") {
        if speedup < floor {
            eprintln!("FAIL: des single-stage throughput {speedup:.2}x below floor {floor:.2}x");
            std::process::exit(1);
        }
        println!("# des throughput floor {floor:.2}x satisfied ({speedup:.2}x)");
    }
}
