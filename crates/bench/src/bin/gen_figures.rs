//! Prints the step-by-step value tables of the paper's Figures 2, 4, 5
//! and 6, regenerated from the actual implementations.
//!
//! Run with `cargo run -p collopt-bench --bin gen_figures`.

use collopt_core::adjust::{pair, quadruple};
use collopt_core::op::lib as ops;
use collopt_core::rules::fused;
use collopt_core::value::Value;
use collopt_machine::topology::{BalancedStep, BalancedTree};

fn tuples(vals: &[Value]) -> String {
    vals.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let input = [2i64, 5, 9, 1, 2, 6];
    println!("input distributed list: {input:?}\n");

    // ---- Figure 2 ----
    println!("== Figure 2: P1 = P2 on [1,2,3,4] ==");
    let xs = [1i64, 2, 3, 4];
    let sum: i64 = xs.iter().sum();
    let prod: i64 = xs.iter().product();
    println!("P1 = allreduce(+)                 -> [{sum}, {sum}, {sum}, {sum}]");
    println!("P2 = map pair; allreduce(op_new); map pi1");
    println!("     after allreduce(op_new)      -> ({sum},{prod}) everywhere");
    println!("     after map pi1                -> [{sum}, {sum}, {sum}, {sum}]\n");

    // ---- Figure 4: balanced reduction ----
    println!("== Figure 4: balanced reduction with op_sr (⊕ = +) ==");
    let (combine, solo) = fused::op_sr(&ops::add());
    let tree = BalancedTree::new(6);
    let mut vals: Vec<Value> = input.iter().map(|&x| pair(&Value::Int(x))).collect();
    println!("leaves : {}", tuples(&vals));
    for (i, level) in tree.schedule().iter().enumerate() {
        for step in level {
            match *step {
                BalancedStep::Combine {
                    left_rep,
                    right_rep,
                    ..
                } => {
                    vals[left_rep] = combine(&vals[left_rep], &vals[right_rep]);
                }
                BalancedStep::Unary { rep, .. } => vals[rep] = solo(&vals[rep]),
            }
        }
        println!("level {}: {}", i + 1, tuples(&vals));
    }
    println!("root value: {}  (paper: (86,200))\n", vals[0]);
    assert_eq!(vals[0].to_string(), "(86,200)");

    // ---- Figure 5: balanced scan ----
    println!("== Figure 5: balanced scan with op_ss (⊕ = +) ==");
    let (combine, solo) = fused::op_ss(&ops::add());
    let mut vals: Vec<Value> = input.iter().map(|&x| quadruple(&Value::Int(x))).collect();
    println!("phase 0: {}", tuples(&vals));
    let p = vals.len();
    for round in 0..3u32 {
        let mut next = vals.clone();
        for r in 0..p {
            match collopt_machine::topology::butterfly_partner(r, round, p) {
                Some(partner) if r < partner => {
                    let (lo, hi) = combine(&vals[r], &vals[partner]);
                    next[r] = lo;
                    next[partner] = hi;
                }
                Some(_) => {}
                None => next[r] = solo(&vals[r]),
            }
        }
        vals = next;
        println!("phase {}: {}", round + 1, tuples(&vals));
    }
    let firsts: Vec<i64> = vals.iter().map(|v| v.proj(0).as_int()).collect();
    println!("first components: {firsts:?}  (paper: [2, 9, 25, 42, 61, 86])\n");
    assert_eq!(firsts, vec![2, 9, 25, 42, 61, 86]);

    // ---- Figure 6: bcast + repeat comcast ----
    println!("== Figure 6: bcast; repeat(e,o) with ⊕ = +, b = 2 ==");
    let (e, o) = fused::bs_eo(&ops::add());
    let b = Value::Int(2);
    for k in 0..6usize {
        let mut s = pair(&b);
        let mut row = vec![s.to_string()];
        for j in 0..3 {
            s = if (k >> j) & 1 == 0 { e(&s) } else { o(&s) };
            row.push(s.to_string());
        }
        println!("proc {k}: {}  -> result {}", row.join(" "), s.proj(0));
    }
    println!("(paper: results [2, 4, 6, 8, 10, 12])");
}
