//! Renders the paper's Section-3 rule boxes from the implementation:
//! for each rule, the matched pattern, the side condition, the rewritten
//! term (produced by actually running the matcher on a canonical window),
//! the fused-operator worked example, and the Table-1 cost line.
//!
//! Run with `cargo run -p collopt-bench --bin gen_rules`.

use collopt_bench::{rule_lhs, rule_rhs};
use collopt_core::adjust::{pair, quadruple};
use collopt_core::op::lib as ops;
use collopt_core::rules::fused;
use collopt_core::value::Value;
use collopt_cost::Rule;

fn main() {
    println!("== The optimization rules, as implemented ==\n");
    for rule in Rule::ALL {
        let est = rule.estimate();
        let algebra = match rule {
            Rule::Sr2Reduction | Rule::Ss2Scan | Rule::Bss2Comcast | Rule::Bsr2Local => {
                "⊗ distributes over ⊕"
            }
            Rule::SrReduction | Rule::SsScan | Rule::BssComcast | Rule::BsrLocal => "⊕ commutative",
            Rule::BsComcast | Rule::BrLocal | Rule::CrAlllocal => "⊕ associative",
        };
        println!("─── {} ───", rule.name());
        println!("  pattern    : {}", rule_lhs(rule));
        println!("  requires   : {algebra}");
        println!("  improves if: {}", rule.condition_str());
        println!("  rewrites to: {}", rule_rhs(rule));
        println!(
            "  cost      : {}  →  {}   (× log p)",
            est.before.render(),
            est.after.render()
        );
        println!();
    }

    println!("== Fused-operator worked examples (⊗ = mul, ⊕ = add) ==\n");

    let sr2 = fused::op_sr2(&ops::mul(), &ops::add());
    let a = pair(&Value::Int(2));
    let b = pair(&Value::Int(3));
    println!(
        "op_sr2((2,2),(3,3))      = {}   (s1+(r1*s2), r1*r2)",
        sr2.apply(&a, &b)
    );

    let (sr, sr_solo) = fused::op_sr(&ops::add());
    let x = Value::Tuple(vec![Value::Int(2), Value::Int(2)]);
    let y = Value::Tuple(vec![Value::Int(5), Value::Int(5)]);
    println!(
        "op_sr((2,2),(5,5))       = {}   (Figure 4's first combine)",
        sr(&x, &y)
    );
    println!(
        "op_sr_solo((9,14))       = {}   (Figure 4's unary node)",
        sr_solo(&sr(&x, &y))
    );

    let (ss, _) = fused::op_ss(&ops::add());
    let (lo, hi) = ss(&quadruple(&Value::Int(2)), &quadruple(&Value::Int(5)));
    println!("op_ss(q(2),q(5))         = {lo} / {hi}   (Figure 5, phase 1, procs 0/1)");

    let (e, o) = fused::bs_eo(&ops::add());
    let s0 = pair(&Value::Int(2));
    println!(
        "BS e/o chain from (2,2)  : e→{} o→{}   (Figure 6's node operations)",
        e(&s0),
        o(&s0)
    );
    println!("\n(each line is computed by the library, not typeset by hand)");
}
