//! Simulation-engine throughput benchmark: legacy spawn-per-run engine
//! and original 4-execution chaos harness vs the persistent rank pool,
//! the lean 3-execution harness and the parallel sweep driver.
//!
//! Two suites are timed:
//!
//! * `engine_microbench` — the same single simulation point repeated
//!   under each engine; isolates the per-run dispatch cost (thread
//!   spawn+join vs park/unpark on the persistent pool).
//! * `chaos_dst` — the headline: the full chaos differential sweep as it
//!   ran before this overhaul (legacy engine, clean+faulty executed
//!   twice per point, serial seed loop) against the current pipeline
//!   (pooled engine, lean harness, seeds fanned out by
//!   `bench::sweep_driver` — on a multi-core host the speedup scales
//!   with `SWEEP_WORKERS` on top of the per-run win).
//!
//! Before any timing, an identity gate re-proves that the pooled engine
//! is observationally indistinguishable from the legacy one — outputs,
//! bit-exact makespans, retry counters and byte-identical Chrome trace
//! exports across all 11 rules, both sides, p 2..=9, with and without
//! fault plans (the full-strength version lives in
//! `tests/engine_identity.rs`). A speedup claimed by a benchmark whose
//! two arms compute different things is worthless; this pins both arms
//! to the same observable behavior first.
//!
//! Writes `results/BENCH_sim_throughput.json` and prints a summary.
//! Environment:
//!
//! * `SIM_THROUGHPUT_SEEDS` — chaos seeds per fault family (default 24).
//! * `BASELINE_GEN_CHAOS` — path to a `gen_chaos` binary built from the
//!   pre-overhaul tree; adds the `chaos_end_to_end` suite (subprocess
//!   wall-clock, median of 5) and makes it the headline. This is the
//!   honest "before": it includes the old deep-copy `Value` payloads
//!   and per-rank fault-plan clones the in-process arm cannot emulate.
//! * `COLLOPT_THROUGHPUT_FLOOR` — when set (e.g. `5.0`), exit non-zero
//!   unless the chaos-suite speedup reaches the floor; unset = report
//!   only. CI sets this on the nightly job, not on PRs.
//! * `SWEEP_WORKERS` — worker count for the parallel arm.

use std::time::Instant;

use collopt_bench::chaos::{
    random_plan, run_pair_with, sweep_parallel, worst_inflation, ChaosKind,
};
use collopt_bench::harness::{env_floor, env_usize};
use collopt_bench::sweep_driver::default_workers;
use collopt_bench::{rule_lhs, rule_rhs, varied_input};
use collopt_core::exec::{execute_traced_with, execute_with, ExecConfig};
use collopt_core::rules::Rule;
use collopt_machine::{chrome_trace_json, ClockParams, ExecEngine, Rng};

fn engine_config(engine: ExecEngine) -> ExecConfig {
    ExecConfig {
        engine: Some(engine),
        ..ExecConfig::default()
    }
}

/// Identity gate: every observable of a pooled run must match the legacy
/// run to the bit. Returns the number of compared points.
fn identity_gate() -> usize {
    let clock = ClockParams::new(100.0, 2.0);
    let mut points = 0usize;
    for p in 2..=9usize {
        let seed = 500 + p as u64;
        let inputs = varied_input(p, 4, seed);
        let plans = [
            None,
            Some(random_plan(seed, p, ChaosKind::Delay)),
            Some(random_plan(seed, p, ChaosKind::Lossy)),
        ];
        for rule in Rule::ALL {
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                for plan in &plans {
                    let tag = format!("{rule} {side} p={p}");
                    let run = |engine| {
                        let config = ExecConfig {
                            engine: Some(engine),
                            profile: true,
                            ..ExecConfig::default()
                        };
                        match plan {
                            None => execute_traced_with(&prog, &inputs, clock, config),
                            Some(pl) => collopt_core::exec::execute_faulted_traced(
                                &prog, &inputs, clock, config, pl,
                            )
                            .unwrap_or_else(|e| panic!("{tag}: recoverable plan failed: {e}")),
                        }
                    };
                    let legacy = run(ExecEngine::Legacy);
                    let pooled = run(ExecEngine::Pooled);
                    assert_eq!(legacy.outcome.outputs, pooled.outcome.outputs, "{tag}");
                    assert_eq!(
                        legacy.outcome.makespan.to_bits(),
                        pooled.outcome.makespan.to_bits(),
                        "{tag}: makespans"
                    );
                    assert_eq!(
                        legacy.outcome.total_retries, pooled.outcome.total_retries,
                        "{tag}: retry counters"
                    );
                    assert_eq!(
                        chrome_trace_json(&[(tag.as_str(), &legacy.trace)]),
                        chrome_trace_json(&[(tag.as_str(), &pooled.trace)]),
                        "{tag}: Chrome exports"
                    );
                    points += 1;
                }
            }
        }
    }
    points
}

/// Time the same simulation point `reps` times under one engine; returns
/// (seconds, simulations run).
fn microbench(engine: ExecEngine, reps: usize) -> (f64, usize) {
    let prog = rule_lhs(Rule::SrReduction);
    let inputs = varied_input(8, 4, 42);
    let clock = ClockParams::new(100.0, 2.0);
    // Warm up (first pooled run pays the one-time pool construction).
    let want = execute_with(&prog, &inputs, clock, engine_config(engine));
    let start = Instant::now();
    for _ in 0..reps {
        let got = execute_with(&prog, &inputs, clock, engine_config(engine));
        assert_eq!(got.makespan.to_bits(), want.makespan.to_bits());
    }
    (start.elapsed().as_secs_f64(), reps)
}

/// The chaos sweep exactly as it ran before this overhaul: legacy
/// engine, serial seed loop, and the original harness shape — the
/// clean/faulty pair executed *twice* per point (the determinism replay
/// re-ran both). Returns (seconds, simulations run).
fn chaos_legacy(seeds: u64, pmax: usize, m: usize) -> (f64, usize) {
    let clock = ClockParams::new(100.0, 2.0);
    let config = engine_config(ExecEngine::Legacy);
    let mut sims = 0usize;
    let start = Instant::now();
    for kind in ChaosKind::ALL {
        for seed in 0..seeds {
            let mut rng = Rng::new(seed);
            let p = rng.range_usize(2, pmax + 1);
            let plan = random_plan(seed, p, kind);
            for rule in Rule::ALL {
                for (_, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                    let (_c1, _f1) = run_pair_with(&prog, p, m, seed, clock, &plan, config);
                    let (_c2, _f2) = run_pair_with(&prog, p, m, seed, clock, &plan, config);
                    // The old harness re-probed the plan's worst-case
                    // inflation at every point (now hoisted per seed).
                    let _ = worst_inflation(&plan, p);
                    sims += 4;
                }
            }
        }
    }
    (start.elapsed().as_secs_f64(), sims)
}

/// The chaos sweep as it runs now: pooled engine, lean 3-execution
/// harness, seeds fanned out across host cores. Returns (seconds,
/// simulations run).
fn chaos_pooled(seeds: u64, pmax: usize, m: usize) -> (f64, usize) {
    let start = Instant::now();
    let mut violations = 0usize;
    for kind in ChaosKind::ALL {
        violations += sweep_parallel(kind, 0..seeds, pmax, m).len();
    }
    assert_eq!(violations, 0, "chaos invariants must hold during timing");
    let sims = 3 * ChaosKind::ALL.len() * seeds as usize * Rule::ALL.len() * 2;
    (start.elapsed().as_secs_f64(), sims)
}

/// End-to-end comparison against the *actual pre-overhaul tree*: when
/// `BASELINE_GEN_CHAOS` points at a `gen_chaos` binary built from the
/// commit before this overhaul, run it and the current `gen_chaos` as
/// subprocesses on the identical sweep and compare wall-clock medians.
/// This is the most honest "before" available — the in-process legacy
/// arm cannot emulate the old deep-copy `Value` payloads or the
/// per-rank fault-plan clones, both of which this overhaul removed.
fn end_to_end(baseline: &std::path::Path, seeds: u64, pmax: usize) -> Option<Suite> {
    let current = std::env::current_exe().ok()?.with_file_name("gen_chaos");
    if !baseline.exists() || !current.exists() {
        eprintln!("# end-to-end suite skipped: missing {baseline:?} or {current:?}");
        return None;
    }
    let median_of_5 = |path: &std::path::Path| -> Option<f64> {
        let mut times = Vec::new();
        for _ in 0..5 {
            let start = Instant::now();
            let status = std::process::Command::new(path)
                .env("CHAOS_SEEDS", seeds.to_string())
                .env("CHAOS_PMAX", pmax.to_string())
                .stdout(std::process::Stdio::null())
                .status()
                .ok()?;
            if !status.success() {
                eprintln!("# end-to-end suite: {path:?} exited with {status}");
                return None;
            }
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        Some(times[2])
    };
    let points = 3 * seeds as usize * Rule::ALL.len() * 2;
    Some(Suite {
        name: "chaos_end_to_end",
        legacy_s: median_of_5(baseline)?,
        legacy_sims: points * 4,
        pooled_s: median_of_5(&current)?,
        pooled_sims: points * 3,
    })
}

struct Suite {
    name: &'static str,
    legacy_s: f64,
    legacy_sims: usize,
    pooled_s: f64,
    pooled_sims: usize,
}

impl Suite {
    fn speedup(&self) -> f64 {
        // Throughput ratio: simulations per second after vs before, so
        // the lean harness's smaller sim count is credited, not hidden.
        (self.pooled_sims as f64 / self.pooled_s) / (self.legacy_sims as f64 / self.legacy_s)
    }
    fn wall_speedup(&self) -> f64 {
        self.legacy_s / self.pooled_s
    }
}

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    let seeds = env_usize("SIM_THROUGHPUT_SEEDS", 24) as u64;
    let (pmax, m) = (9usize, 4usize);
    let workers = default_workers();

    println!("# identity gate: pooled vs legacy engine");
    let identity_points = identity_gate();
    println!("#   {identity_points} points bit-identical (traces, makespans, retries)");

    let reps = env_usize("SIM_THROUGHPUT_REPS", 1500);
    let (micro_legacy_s, micro_reps) = microbench(ExecEngine::Legacy, reps);
    let (micro_pooled_s, _) = microbench(ExecEngine::Pooled, reps);
    let micro = Suite {
        name: "engine_microbench",
        legacy_s: micro_legacy_s,
        legacy_sims: micro_reps,
        pooled_s: micro_pooled_s,
        pooled_sims: micro_reps,
    };

    println!("# chaos sweep: {seeds} seeds/family, p in 2..={pmax}, m={m}, {workers} workers");
    let (legacy_s, legacy_sims) = chaos_legacy(seeds, pmax, m);
    let (pooled_s, pooled_sims) = chaos_pooled(seeds, pmax, m);
    let chaos = Suite {
        name: "chaos_dst",
        legacy_s,
        legacy_sims,
        pooled_s,
        pooled_sims,
    };

    let e2e = std::env::var("BASELINE_GEN_CHAOS")
        .ok()
        .and_then(|path| end_to_end(std::path::Path::new(&path), seeds, pmax));
    let headline = e2e.as_ref().unwrap_or(&chaos);
    let headline_speedup = headline.wall_speedup();
    let headline_name = headline.name;

    let mut suites = vec![&micro, &chaos];
    if let Some(s) = &e2e {
        suites.push(s);
    }
    let mut suites_json = Vec::new();
    for s in suites {
        println!(
            "== {} ==\n  before: {:>8.3}s for {:>5} sims ({:>7.0} sims/s)  [legacy engine]\n  \
             after:  {:>8.3}s for {:>5} sims ({:>7.0} sims/s)  [pooled engine]\n  \
             wall-clock speedup {:.2}x, per-simulation throughput {:.2}x",
            s.name,
            s.legacy_s,
            s.legacy_sims,
            s.legacy_sims as f64 / s.legacy_s,
            s.pooled_s,
            s.pooled_sims,
            s.pooled_sims as f64 / s.pooled_s,
            s.wall_speedup(),
            s.speedup(),
        );
        suites_json.push(format!(
            r#"    {{
      "name": "{}",
      "legacy_s": {:.6},
      "legacy_sims": {},
      "pooled_s": {:.6},
      "pooled_sims": {},
      "legacy_sims_per_sec": {:.1},
      "pooled_sims_per_sec": {:.1},
      "wall_speedup": {:.3},
      "throughput_speedup": {:.3}
    }}"#,
            s.name,
            s.legacy_s,
            s.legacy_sims,
            s.pooled_s,
            s.pooled_sims,
            s.legacy_sims as f64 / s.legacy_s,
            s.pooled_sims as f64 / s.pooled_s,
            s.wall_speedup(),
            s.speedup(),
        ));
    }

    let json = format!(
        r#"{{
  "bench": "sim_throughput",
  "host_cores": {},
  "sweep_workers": {},
  "chaos_seeds_per_family": {},
  "identity_points": {},
  "identity_bit_identical": true,
  "headline_suite": "{}",
  "headline_wall_speedup": {:.3},
  "suites": [
{}
  ]
}}
"#,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        workers,
        seeds,
        identity_points,
        headline_name,
        headline_speedup,
        suites_json.join(",\n"),
    );
    std::fs::write("results/BENCH_sim_throughput.json", json)
        .expect("write results/BENCH_sim_throughput.json");
    println!("# wrote results/BENCH_sim_throughput.json");

    println!("# headline: {headline_name} wall-clock speedup {headline_speedup:.2}x");
    if let Some(floor) = env_floor("COLLOPT_THROUGHPUT_FLOOR") {
        if headline_speedup < floor {
            eprintln!(
                "FAIL: {headline_name} wall-clock speedup {headline_speedup:.2}x \
                 below floor {floor:.2}x"
            );
            std::process::exit(1);
        }
        println!("# throughput floor {floor:.2}x satisfied ({headline_speedup:.2}x)");
    }
}
