//! Regenerates the paper's Table 1 and validates it empirically.
//!
//! Prints (a) the analytic table exactly as the paper lays it out, and
//! (b) an empirical validation grid: for every rule and a sweep of
//! `(ts, tw, m)` points, the measured simulated makespans of both sides
//! and whether the measured improvement agrees with the printed condition.
//!
//! Run with `cargo run --release -p collopt-bench --bin gen_table1`.

use collopt_bench::{block_input, rule_lhs, rule_rhs};
use collopt_core::execute;
use collopt_cost::table1::render_table1;
use collopt_cost::{MachineParams, Rule};
use collopt_machine::ClockParams;

fn main() {
    println!("== Table 1: performance estimates of optimization rules (analytic) ==\n");
    print!("{}", render_table1());

    println!("\n== Empirical validation on the simulated machine (p = 8) ==\n");
    println!(
        "{:<14} {:>5} {:>4} {:>6} {:>12} {:>12} {:>9} {:>10} {:>6}",
        "rule", "ts", "tw", "m", "T_before", "T_after", "saving%", "predicted", "agree"
    );
    let p = 8usize;
    let grid = [
        (200.0, 2.0, 1usize),
        (200.0, 2.0, 32),
        (200.0, 2.0, 1024),
        (20.0, 1.0, 8),
        (20.0, 1.0, 256),
        (4.0, 0.5, 64),
    ];
    let mut disagreements = 0;
    for rule in Rule::ALL {
        for &(ts, tw, m) in &grid {
            let clock = ClockParams::new(ts, tw);
            let input = block_input(p, m);
            let before = execute(&rule_lhs(rule), &input, clock).makespan;
            let after = execute(&rule_rhs(rule), &input, clock).makespan;
            let params = MachineParams::new(p, ts, tw);
            let predicted = rule.estimate().improves(&params, m as f64);
            let measured = after < before;
            let agree = predicted == measured;
            if !agree {
                disagreements += 1;
            }
            println!(
                "{:<14} {:>5} {:>4} {:>6} {:>12.0} {:>12.0} {:>8.1}% {:>10} {:>6}",
                rule.name(),
                ts,
                tw,
                m,
                before,
                after,
                100.0 * (before - after) / before,
                if predicted { "improves" } else { "worse" },
                if agree { "yes" } else { "NO" },
            );
        }
    }
    println!("\ndisagreements between measurement and Table-1 prediction: {disagreements}");
    assert_eq!(
        disagreements, 0,
        "the simulated machine must match the calculus"
    );
}
