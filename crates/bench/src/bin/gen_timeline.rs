//! Renders Figure 1 / Figure 3 style run-time diagrams: the per-processor
//! activity of the Example program before and after rule SR2-Reduction,
//! from real machine traces.
//!
//! Legend: `>` send, `<` receive, `x` simultaneous exchange, `*` local
//! computation, `|` barrier. Columns are distinct simulated time points.
//!
//! Run with `cargo run -p collopt-bench --bin gen_timeline`.

use collopt_core::exec::execute_traced;
use collopt_core::op::lib as ops;
use collopt_core::rewrite::Rewriter;
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_machine::ClockParams;

fn main() {
    let p = 8;
    let example = Program::new()
        .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
        .scan(ops::mul())
        .reduce(ops::add())
        .map("g", 1.0, |v| Value::Int(v.as_int() * 2))
        .bcast();
    let optimized = Rewriter::exhaustive().optimize(&example).program;

    let mut makespans = Vec::new();
    for (name, prog) in [
        ("Example (original)", &example),
        ("Example after SR2-Reduction", &optimized),
    ] {
        let inputs: Vec<Value> = (0..p as i64).map(|i| Value::Int(i % 5 + 1)).collect();
        let run = execute_traced(prog, &inputs, ClockParams::parsytec_like());
        println!("== {name} ==");
        println!("program : {prog}");
        println!("makespan: {:.0} simulated units", run.makespan);
        println!("{}", run.trace.ascii_timeline(p));
        makespans.push(run.makespan);
    }
    println!(
        "time saved by SR2-Reduction (Figure 3's shaded region): {:.0} units ({:.1}%)",
        makespans[0] - makespans[1],
        100.0 * (makespans[0] - makespans[1]) / makespans[0]
    );
    assert!(makespans[1] < makespans[0]);
}
