//! Renders Figure 1 / Figure 3 style run-time diagrams: the per-processor
//! activity of the Example program before and after rule SR2-Reduction,
//! from real machine traces.
//!
//! Legend: `>` send, `<` receive, `x` simultaneous exchange, `*` local
//! computation, `|` barrier. Columns are distinct simulated time points.
//!
//! Run with `cargo run -p collopt-bench --bin gen_timeline`.

fn main() {
    print!("{}", collopt_bench::timeline_report());
}
