//! Figure 7 as a wall-clock benchmark: the three implementations of
//! `bcast ; scan(+)` versus processor count at a fixed block size.
//!
//! The simulated-time series (the paper's axes) comes from
//! `cargo run -p collopt-bench --bin gen_fig7`; this Criterion bench
//! measures the same three algorithms moving real blocks through real
//! threads, so the per-phase structure (2 phases of work per processor
//! doubling) shows up in wall-clock as well.

use collopt_bench::harness::{BenchmarkId, Criterion};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use collopt_bench::{run_comcast, ComcastImpl};
use collopt_machine::ClockParams;

fn bench_fig7(c: &mut Criterion) {
    let m = 4000usize;
    let mut group = c.benchmark_group("fig7_vs_processors");
    group.sample_size(10);
    for p in [2usize, 8, 32] {
        for which in ComcastImpl::ALL {
            group.bench_with_input(
                BenchmarkId::new(which.label(), p),
                &(which, p),
                |b, &(which, p)| {
                    b.iter(|| black_box(run_comcast(which, p, m, ClockParams::parsytec_like())))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
