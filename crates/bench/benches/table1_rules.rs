//! Wall-clock benchmark of every Table-1 rule: the original composition
//! versus the fused right-hand side, executed on the threaded simulated
//! machine (p = 8, m = 64, latency-dominated preset).
//!
//! The *simulated* times are validated exactly elsewhere
//! (`tests/cost_crossvalidation.rs`, `gen_table1`); this bench shows the
//! same win/lose structure in real thread-and-channel wall-clock, where
//! the saved message start-ups correspond to saved channel round-trips.

use collopt_bench::harness::{BenchmarkId, Criterion};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use collopt_bench::{block_input, rule_lhs, rule_rhs};
use collopt_core::execute;
use collopt_cost::Rule;
use collopt_machine::ClockParams;

fn bench_rules(c: &mut Criterion) {
    let p = 8usize;
    let m = 64usize;
    let clock = ClockParams::parsytec_like();
    let input = block_input(p, m);

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for rule in Rule::ALL {
        let lhs = rule_lhs(rule);
        let rhs = rule_rhs(rule);
        group.bench_with_input(BenchmarkId::new("before", rule.name()), &lhs, |b, prog| {
            b.iter(|| black_box(execute(prog, &input, clock).makespan))
        });
        group.bench_with_input(BenchmarkId::new("after", rule.name()), &rhs, |b, prog| {
            b.iter(|| black_box(execute(prog, &input, clock).makespan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
