//! Benchmarks of the bandwidth-optimal reduction family: butterfly vs
//! Rabenseifner's reduce-scatter + allgather vs the ring, plus the
//! cost-model-driven `allreduce_auto` selector, across block sizes that
//! straddle the crossover. The interesting output is the *simulated*
//! makespan (checked in the library tests); what these benches measure
//! is the wall-clock cost of running each algorithm on the simulated
//! machine, so regressions in the simulation substrate show up here.

use collopt_bench::harness::{BenchmarkId, Criterion, Throughput};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;

use collopt_collectives::{
    allreduce_auto, allreduce_butterfly, allreduce_rabenseifner, allreduce_ring, Combine,
};
use collopt_machine::{ClockParams, Ctx, Machine};

type Block = Vec<i64>;

fn inputs(p: usize, m: usize) -> Arc<Vec<Block>> {
    Arc::new(
        (0..p)
            .map(|r| (0..m).map(|i| (r * 31 + i) as i64).collect())
            .collect(),
    )
}

fn run_algorithm(
    p: usize,
    blocks: &Arc<Vec<Block>>,
    algo: impl Fn(&mut Ctx, Block, &Combine<'_, Block>) -> Block + Sync,
) -> f64 {
    let machine = Machine::new(p, ClockParams::parsytec_like());
    let blocks = Arc::clone(blocks);
    let run = machine.run(move |ctx| {
        let f = |a: &Block, b: &Block| -> Block { a.iter().zip(b).map(|(x, y)| x + y).collect() };
        let op = Combine::new(&f).assume_commutative();
        algo(ctx, blocks[ctx.rank()].clone(), &op)
    });
    run.makespan
}

fn bench_allreduce_family(c: &mut Criterion) {
    let p = 16usize;
    let mut group = c.benchmark_group("allreduce_family");
    group.sample_size(10);
    for m in [64usize, 4096] {
        let blocks = inputs(p, m);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("butterfly", m), &m, |b, &m| {
            b.iter(|| {
                black_box(run_algorithm(p, &blocks, |ctx, v, op| {
                    allreduce_butterfly(ctx, v, m as u64, op)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("rabenseifner", m), &m, |b, _| {
            b.iter(|| {
                black_box(run_algorithm(p, &blocks, |ctx, v, op| {
                    allreduce_rabenseifner(ctx, v, 1, op)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("ring", m), &m, |b, _| {
            b.iter(|| {
                black_box(run_algorithm(p, &blocks, |ctx, v, op| {
                    allreduce_ring(ctx, v, 1, op)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("auto", m), &m, |b, _| {
            b.iter(|| {
                black_box(run_algorithm(p, &blocks, |ctx, v, op| {
                    allreduce_auto(ctx, v, 1, op)
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce_family);
criterion_main!(benches);
