//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **broadcast algorithm** — binomial tree vs the naive linear chain;
//! * **comcast implementation** — `bcast;repeat` vs the cost-optimal
//!   successive doubling (the paper's §3.4 observation);
//! * **`op_ss` shared subexpressions** — the paper reduces the operator
//!   from twelve to eight base operations by reusing `uu`/`ttu`; this
//!   bench compares the shared and the naive recomputing variants as pure
//!   scalar kernels;
//! * **rewrite engine** — cost of running `optimize()` itself
//!   (exhaustive vs cost-guided), showing rewriting is cheap relative to
//!   one execution;
//! * **pipelined vs binomial broadcast** — the chain pipeline's
//!   large-block advantage (implementation-level, below the rules);
//! * **flat vs two-level collectives on clusters** — block-placement tie
//!   vs cyclic-placement win.

use collopt_bench::harness::{BenchmarkId, Criterion};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use collopt_bench::{run_comcast, ComcastImpl};
use collopt_collectives::{
    allreduce, allreduce_two_level, bcast_binomial, bcast_linear, bcast_pipelined,
    optimal_segments, Combine,
};
use collopt_core::op::lib as ops;
use collopt_core::rewrite::Rewriter;
use collopt_core::term::Program;
use collopt_cost::MachineParams;
use collopt_machine::{ClockParams, Machine};

fn bench_bcast_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bcast");
    group.sample_size(10);
    let p = 16usize;
    let m = 1024usize;
    group.bench_function(BenchmarkId::new("binomial", p), |b| {
        let machine = Machine::new(p, ClockParams::parsytec_like());
        b.iter(|| {
            machine.run(|ctx| {
                let v = (ctx.rank() == 0).then(|| vec![1u64; m]);
                black_box(bcast_binomial(ctx, 0, v, m as u64).len())
            })
        })
    });
    group.bench_function(BenchmarkId::new("linear", p), |b| {
        let machine = Machine::new(p, ClockParams::parsytec_like());
        b.iter(|| {
            machine.run(|ctx| {
                let v = (ctx.rank() == 0).then(|| vec![1u64; m]);
                black_box(bcast_linear(ctx, 0, v, m as u64).len())
            })
        })
    });
    group.finish();
}

fn bench_comcast_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_comcast");
    group.sample_size(10);
    for which in [ComcastImpl::BcastRepeat, ComcastImpl::CostOptimal] {
        group.bench_function(which.label(), |b| {
            b.iter(|| black_box(run_comcast(which, 16, 1024, ClockParams::parsytec_like())))
        });
    }
    group.finish();
}

/// The `op_ss` kernel with the paper's shared subexpressions (8 ops).
#[inline]
fn op_ss_shared(x: (i64, i64, i64, i64), y: (i64, i64, i64, i64)) -> (i64, i64, i64, i64) {
    let (s2, t1, u1, v1) = (y.0, x.1, x.2, x.3);
    let ttu = t1 + y.1 + u1;
    let uu = u1 + y.2;
    let uuuu = uu + uu;
    let vv = v1 + y.3;
    (s2 + t1 + v1, ttu, uuuu, uu + vv)
}

/// The naive kernel recomputing every subterm from scratch (the paper's
/// "twelve" operations; note that an optimizing compiler may recover part
/// of the sharing via common-subexpression elimination — measuring that
/// recovery is the point of the ablation).
#[inline]
fn op_ss_naive(x: (i64, i64, i64, i64), y: (i64, i64, i64, i64)) -> (i64, i64, i64, i64) {
    (
        y.0 + x.1 + x.3,
        x.1 + y.1 + x.2,
        (x.2 + y.2) + (x.2 + y.2),
        (x.2 + y.2) + (x.3 + y.3),
    )
}

type Quad = (i64, i64, i64, i64);

fn bench_opss_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_opss");
    let data: Vec<(Quad, Quad)> = (0..4096)
        .map(|i| {
            let a = (i, i + 1, i + 2, i + 3);
            let b = (i * 2, i * 3, i * 5, i * 7);
            (a, b)
        })
        .collect();
    group.bench_function("shared_8ops", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &(x, y) in &data {
                acc = acc.wrapping_add(op_ss_shared(x, y).0);
            }
            black_box(acc)
        })
    });
    group.bench_function("naive_12ops", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &(x, y) in &data {
                acc = acc.wrapping_add(op_ss_naive(x, y).0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_rewriter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rewriter");
    let prog = Program::new()
        .map("f", 1.0, |v| v.clone())
        .bcast()
        .scan(ops::mul())
        .scan(ops::add())
        .map("g", 1.0, |v| v.clone())
        .scan(ops::add())
        .allreduce(ops::add());
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(Rewriter::exhaustive().optimize(&prog).steps.len()))
    });
    group.bench_function("cost_guided", |b| {
        let params = MachineParams::parsytec_like(64);
        b.iter(|| {
            black_box(
                Rewriter::cost_guided(params, 32.0)
                    .optimize(&prog)
                    .steps
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_pipelined_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipelined_bcast");
    group.sample_size(10);
    let p = 8usize;
    for mw in [64usize, 16_384] {
        let clock = ClockParams::parsytec_like();
        let segments = optimal_segments(p, mw as u64, clock.ts, clock.tw);
        group.bench_function(BenchmarkId::new("binomial", mw), |b| {
            let machine = Machine::new(p, clock);
            b.iter(|| {
                machine.run(move |ctx| {
                    let v = (ctx.rank() == 0).then(|| vec![1u64; mw]);
                    black_box(bcast_binomial(ctx, 0, v, mw as u64).len())
                })
            })
        });
        group.bench_function(BenchmarkId::new("chain_pipeline", mw), |b| {
            let machine = Machine::new(p, clock);
            b.iter(|| {
                machine.run(move |ctx| {
                    let v = (ctx.rank() == 0).then(|| vec![1u64; mw]);
                    black_box(bcast_pipelined(ctx, 0, v, 1, segments).len())
                })
            })
        });
    }
    group.finish();
}

fn bench_cluster_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cluster");
    group.sample_size(10);
    let p = 12usize;
    let nodes = 3usize;
    let clock = ClockParams::clustered_cyclic(200.0, 2.0, nodes, 2.0, 0.1);
    let add = |a: &i64, b: &i64| a + b;
    group.bench_function("flat_allreduce", |b| {
        let machine = Machine::new(p, clock);
        b.iter(|| {
            machine.run(|ctx| black_box(allreduce(ctx, ctx.rank() as i64, 1, &Combine::new(&add))))
        })
    });
    group.bench_function("two_level_allreduce", |b| {
        let machine = Machine::new(p, clock);
        b.iter(|| {
            machine.run(move |ctx| {
                black_box(allreduce_two_level(
                    ctx,
                    ctx.rank() as i64,
                    1,
                    &Combine::new(&add),
                    &move |r| r % nodes,
                ))
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bcast_algorithms,
    bench_comcast_variants,
    bench_opss_sharing,
    bench_rewriter,
    bench_pipelined_bcast,
    bench_cluster_collectives
);
criterion_main!(benches);
