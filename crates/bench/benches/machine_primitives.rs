//! Micro-benchmarks of the machine substrate itself: point-to-point
//! send/recv, simultaneous exchange, barriers, and machine spin-up cost.
//! These bound what the collective benchmarks can possibly show — a
//! butterfly phase cannot be faster than one exchange.

use collopt_bench::harness::{BenchmarkId, Criterion, Throughput};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use collopt_machine::{ClockParams, Machine};

fn bench_spinup(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_spinup");
    group.sample_size(10);
    for p in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let machine = Machine::new(p, ClockParams::free());
            b.iter(|| black_box(machine.run(|ctx| ctx.rank()).results.len()))
        });
    }
    group.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_pingpong");
    group.sample_size(10);
    for words in [1usize, 1024, 65_536] {
        group.throughput(Throughput::Bytes((words * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &words| {
            let machine = Machine::new(2, ClockParams::free());
            b.iter(|| {
                machine.run(move |ctx| {
                    let payload = vec![1u64; words];
                    for _ in 0..8 {
                        if ctx.rank() == 0 {
                            ctx.send(1, payload.clone(), words as u64);
                            let _: Vec<u64> = ctx.recv(1);
                        } else {
                            let got: Vec<u64> = ctx.recv(0);
                            ctx.send(0, got, words as u64);
                        }
                    }
                    black_box(ctx.time())
                })
            })
        });
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_exchange");
    group.sample_size(10);
    for p in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let machine = Machine::new(p, ClockParams::free());
            b.iter(|| {
                machine.run(|ctx| {
                    let mut acc = ctx.rank() as u64;
                    for round in 0..3u32 {
                        let partner = ctx.rank() ^ (1usize << round);
                        if partner < ctx.size() {
                            acc += ctx.exchange(partner, acc, 4);
                        }
                    }
                    black_box(acc)
                })
            })
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_barrier");
    group.sample_size(10);
    for p in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let machine = Machine::new(p, ClockParams::free());
            b.iter(|| {
                machine.run(|ctx| {
                    for _ in 0..4 {
                        ctx.barrier();
                    }
                    black_box(ctx.time())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spinup,
    bench_pingpong,
    bench_exchange,
    bench_barrier
);
criterion_main!(benches);
