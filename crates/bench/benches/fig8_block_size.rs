//! Figure 8 as a wall-clock benchmark: the three implementations of
//! `bcast ; scan(+)` versus block size at a fixed processor count.
//!
//! The simulated-time series comes from `gen_fig8`; here real blocks of
//! `m` words move through the channels, so the linear-in-`m` growth and
//! the `bcast;repeat` advantage are visible in wall-clock.

use collopt_bench::harness::{BenchmarkId, Criterion, Throughput};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use collopt_bench::{run_comcast, ComcastImpl};
use collopt_machine::ClockParams;

fn bench_fig8(c: &mut Criterion) {
    let p = 16usize;
    let mut group = c.benchmark_group("fig8_vs_block_size");
    group.sample_size(10);
    for m in [16usize, 256, 4096] {
        group.throughput(Throughput::Elements(m as u64));
        for which in ComcastImpl::ALL {
            group.bench_with_input(
                BenchmarkId::new(which.label(), m),
                &(which, m),
                |b, &(which, m)| {
                    b.iter(|| black_box(run_comcast(which, p, m, ClockParams::parsytec_like())))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
