//! The Section-5 case study as a benchmark: `PolyEval_1` (three
//! collectives) versus `PolyEval_3` (BS-Comcast applied), evaluating a
//! degree-`p` polynomial at `m` points.

use collopt_bench::harness::{BenchmarkId, Criterion};
use collopt_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;

use collopt_core::execute;
use collopt_core::op::lib as ops;
use collopt_core::rewrite::Rewriter;
use collopt_core::term::Program;
use collopt_core::value::Value;
use collopt_machine::ClockParams;

fn poly_eval_1(coeffs: Arc<Vec<f64>>) -> Program {
    Program::new()
        .bcast()
        .scan(ops::fmul())
        .map_indexed("mul_coeff", 1.0, move |rank, v| {
            let a = coeffs[rank];
            v.map_block(&|x| Value::Float(a * x.as_float()))
        })
        .reduce(ops::fadd())
}

fn bench_polyeval(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyeval");
    group.sample_size(10);
    for (n, m) in [(8usize, 64usize), (16, 256)] {
        let coeffs: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
        let prog1 = poly_eval_1(Arc::new(coeffs));
        let prog3 = Rewriter::exhaustive().optimize(&prog1).program;
        let mut input = vec![Value::list(vec![Value::Float(0.0); m]); n];
        input[0] = Value::list(
            (0..m)
                .map(|j| Value::Float(0.2 + 0.7 * j as f64 / m as f64))
                .collect(),
        );

        group.bench_with_input(
            BenchmarkId::new("PolyEval_1", format!("n{n}_m{m}")),
            &prog1,
            |b, prog| b.iter(|| black_box(execute(prog, &input, ClockParams::parsytec_like()))),
        );
        group.bench_with_input(
            BenchmarkId::new("PolyEval_3", format!("n{n}_m{m}")),
            &prog3,
            |b, prog| b.iter(|| black_box(execute(prog, &input, ClockParams::parsytec_like()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_polyeval);
criterion_main!(benches);
